"""Concrete fault injection into the six NPB-style kernels.

The statistical campaign reproduces the beam's *rates*; this example
reproduces its *mechanism*: flip one real bit in a kernel's live numpy
data, run the kernel, and compare against the golden output -- the
Control-PC's exact SDC-detection procedure (Section 3.6).

Per benchmark it reports the masking factor (faults that changed
nothing), the SDC fraction, and any outright crashes, and then applies
design implication #3: combining a measured AVF with a raw FIT/bit and
a voltage susceptibility multiplier to estimate a structure's FIT at
scaled voltage.

Run with::

    python examples/fault_injection.py [injections_per_benchmark]
"""

import sys

import numpy as np

from repro import OutcomeKind, make_suite
from repro.injection.avf import scale_avf_fit, structure_fit
from repro.injection.calibration import LevelRateModel
from repro.injection.direct import DirectInjector
from repro.soc.geometry import CacheLevel


def main(injections: int = 60) -> None:
    print(f"Direct injection: {injections} faults per benchmark\n")
    rng = np.random.default_rng(99)
    suite = make_suite(scale=0.5)  # smaller kernels; same code paths

    print(f"{'bench':>6} {'masked':>7} {'SDC':>6} {'crash':>6}  outcome of a real bit flip")
    avf_by_bench = {}
    for name, workload in suite.items():
        injector = DirectInjector(workload)
        counts = injector.campaign(injections, rng)
        total = sum(counts.values())
        masked = counts[OutcomeKind.MASKED] / total
        sdc = counts[OutcomeKind.SDC] / total
        crash = counts.get(OutcomeKind.APP_CRASH, 0) / total
        avf_by_bench[name] = sdc + crash
        print(
            f"{name:>6} {100*masked:6.1f}% {100*sdc:5.1f}% {100*crash:5.1f}%"
        )

    print("\nDesign implication #3: structure FIT at scaled voltage")
    print("(bits x rawFIT/Mbit x AVF x susceptibility multiplier)\n")
    rate_model = LevelRateModel()
    l2_bits = 4 * 256 * 1024 * 8
    raw_fit_per_mbit = 15.0  # static-test reference for 28 nm [83]
    avf = float(np.mean(list(avf_by_bench.values())))
    base_fit = structure_fit(l2_bits, raw_fit_per_mbit, avf)
    print(f"measured mean AVF over the suite: {avf:.3f}")
    for pmd_mv in (980, 930, 920, 790):
        mult = rate_model.rate_per_min(
            CacheLevel.L2, True, pmd_mv, 950
        ) / rate_model.rate_per_min(CacheLevel.L2, True, 980, 950)
        fit = scale_avf_fit(base_fit, mult)
        print(
            f"  L2 cache @ {pmd_mv} mV: susceptibility x{mult:.2f} "
            f"-> estimated {fit:7.1f} FIT"
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 60)
