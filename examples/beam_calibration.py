"""Beam-side walkthrough: flux, halo calibration, and fluence planning.

Reproduces the facility work of Section 3.4 that precedes any DUT data:

1. the center-position flux is too hot for the DUT (boot loops), so the
   board moves into the halo;
2. the halo attenuation is measured with the SRAM "golden board"
   dosimeter -- one center exposure, six halo exposures with physical
   re-insertion between them;
3. with the calibrated flux, plan how much beam time each stopping rule
   (100 events / 1e11 n/cm^2) will need and what NYC-equivalence the
   campaign will reach.

Run with::

    python examples/beam_calibration.py
"""

import numpy as np

from repro.beam import (
    BeamPosition,
    SramDosimeter,
    TnfBeam,
    calibrate_halo,
    nyc_equivalent_years,
)
from repro.beam.fluence import FluenceAccount, acceleration_factor
from repro.constants import SIGNIFICANT_FLUENCE


def main() -> None:
    rng = np.random.default_rng(5)
    beam = TnfBeam(nominal_current_ua=100.0)

    lo, hi = beam.center_flux_range()
    print("=== Step 1: the beam is too hot at the center ===\n")
    print(f"center flux range: {lo:.1e} - {hi:.1e} n/cm2/s (E > 10 MeV)")
    print(
        "at that flux the DUT reboots continuously; the facility cannot "
        "reduce it,\nso the board is raised 5-10 cm into the beam halo.\n"
    )

    print("=== Step 2: dosimeter calibration of the halo position ===\n")
    dosimeter = SramDosimeter()
    calibration = calibrate_halo(
        beam, dosimeter, rng, halo_measurements=6, exposure_s=600.0
    )
    print(
        f"center SEU rate: {calibration.center_rate_per_s:.2f} /s; "
        f"halo rates: "
        + ", ".join(f"{r:.3f}" for r in calibration.halo_rates_per_s)
    )
    print(
        f"halo attenuation: {100 * calibration.attenuation_mean:.2f}% "
        f"+/- {100 * calibration.attenuation_sigma:.2f}% "
        "(paper's ratio: 0.60 +/- 0.02)\n"
    )

    print("=== Step 3: campaign planning at the calibrated flux ===\n")
    state = beam.place_dut(BeamPosition.HALO)
    flux = state.flux_at_dut_per_cm2_s
    print(f"flux at DUT: {flux:.2e} n/cm2/s")
    print(f"acceleration over NYC nature: x{acceleration_factor(flux):.1e}")

    hours_for_fluence = SIGNIFICANT_FLUENCE / flux / 3600.0
    print(
        f"beam time to reach the {SIGNIFICANT_FLUENCE:.0e} n/cm2 "
        f"significance threshold: {hours_for_fluence:.1f} h"
    )

    account = FluenceAccount()
    account.expose(flux, 27.5 * 3600.0)  # a session-1-like shift
    print(
        f"a 27.5 h session accumulates {account.fluence_per_cm2:.2e} n/cm2 "
        f"= {nyc_equivalent_years(account.fluence_per_cm2):.2e} years of NYC"
    )


if __name__ == "__main__":
    main()
