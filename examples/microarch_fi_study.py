"""Microarchitectural fault-injection study (design implication #3).

The paper tells fault-injection researchers to combine its measured
voltage susceptibility multipliers with structure AVFs and raw
technology FIT to estimate application FIT at scaled voltages.  This
example runs that pipeline end to end:

1. size the statistical campaign (Leveugle's formula),
2. inject into each core structure and measure its AVF,
3. fold in the library's calibrated voltage multipliers,
4. report per-structure and chip SDC FIT across the studied voltages.

Run with::

    python examples/microarch_fi_study.py
"""

import numpy as np

from repro.injection.calibration import LevelRateModel
from repro.injection.events import OutcomeKind
from repro.injection.microarch import (
    MicroarchInjector,
    required_injections,
)
from repro.soc.geometry import CacheLevel


def main() -> None:
    injector = MicroarchInjector()
    rng = np.random.default_rng(41)

    n = required_injections(injector.total_bits, margin=0.02)
    print(
        f"statistical campaign size for 2% margin at 95% confidence: "
        f"{n} injections per structure\n"
    )

    print(f"{'structure':>13} {'bits/core':>10} {'measured AVF':>13} {'SDC share':>10}")
    for structure in injector.structures:
        result = injector.run_campaign(structure.name, n, rng)
        sdc_share = result.fraction(OutcomeKind.SDC)
        print(
            f"{structure.name:>13} {structure.bits:>10} "
            f"{result.measured_avf:>12.3f} {sdc_share:>9.3f}"
        )

    print("\nSDC FIT at the studied voltages (core logic, x8 cores):")
    # The L2's PMD-domain multipliers stand in for core-logic
    # susceptibility (same domain, same undervolt).
    rates = LevelRateModel()
    base = rates.rate_per_min(CacheLevel.L2, True, 980, 950)
    multipliers = {
        mv: rates.rate_per_min(CacheLevel.L2, True, mv, 950) / base
        for mv in (980, 930, 920, 790)
    }
    fits = injector.sdc_fit_by_voltage(multipliers)
    for mv, fit in sorted(fits.items(), reverse=True):
        print(
            f"  {mv} mV: multiplier x{multipliers[mv]:4.2f} -> "
            f"core-logic SDC FIT {fit:6.2f}"
        )
    print(
        "\nReading: the unprotected core structures alone produce "
        "SDC FIT of the\nsame order as the paper's nominal-voltage "
        "measurement (2.54) -- consistent\nwith design implication #4: "
        "SDCs come from core logic, not the ECC-guarded SRAM."
    )


if __name__ == "__main__":
    main()
