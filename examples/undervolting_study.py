"""Undervolting study: find the safe Vmin, then weigh power vs reliability.

Reproduces the paper's decision pipeline for a datacenter operator:

1. characterize pfail(V) at both frequencies (Fig. 4) to find the safe
   Vmin and the exploitable guardband;
2. build the power-vs-susceptibility trade-off (Figs. 9-10);
3. apply design implication #2 -- operate slightly *above* Vmin (930 mV
   rather than 920 mV) because the last 10 mV buys ~2 % power for a
   disproportionate SDC-rate explosion.

Run with::

    python examples/undervolting_study.py
"""

from repro import build_tradeoff_series
from repro.harness.vmin import PFAIL_MODELS, VminCharacterizer


def main() -> None:
    print("=== Step 1: offline Vmin characterization (Fig. 4) ===\n")
    vmin = {}
    for freq, model in sorted(PFAIL_MODELS.items(), reverse=True):
        result = VminCharacterizer(model, runs_per_voltage=300).characterize(
            seed=7
        )
        vmin[freq] = result.safe_vmin_mv
        print(
            f"{freq} MHz: safe Vmin = {result.safe_vmin_mv} mV "
            f"(guardband {result.guardband_mv()} mV below nominal)"
        )
        ramp = {
            v: p for v, p in sorted(result.pfail_curve.items(), reverse=True)
            if p > 0
        }
        shown = ", ".join(f"{v} mV: {100*p:.0f}%" for v, p in ramp.items())
        print(f"  failure ramp: {shown}")

    print("\n=== Step 2: power vs susceptibility (Figs. 9-10) ===\n")
    series = build_tradeoff_series()
    header = f"{'setting':>22} {'power':>8} {'upsets/min':>11} {'savings':>8} {'susc.':>7}"
    print(header)
    for p in series.points:
        print(
            f"{p.point.label:>22} {p.power_watts:7.2f}W "
            f"{p.upsets_per_min:11.3f} {p.power_savings_pct:7.1f}% "
            f"{p.susceptibility_increase_pct:6.1f}%"
        )

    print("\n=== Step 3: the operator's decision (design implication #2) ===\n")
    safe = series.by_label("Safe")
    vmin_pt = series.by_label("Vmin")
    extra_savings = vmin_pt.power_savings_pct - safe.power_savings_pct
    extra_susc = (
        vmin_pt.susceptibility_increase_pct
        - safe.susceptibility_increase_pct
    )
    print(
        f"Dropping the last 10 mV (930 -> 920 mV) buys only "
        f"{extra_savings:.1f}% more power savings"
    )
    print(
        f"but raises cache susceptibility a further {extra_susc:.1f}% -- "
        "and (per Fig. 11) multiplies the SDC FIT by ~8x."
    )
    print(
        "\nRecommendation: operate at 930 mV (slightly above the safe "
        f"Vmin of {vmin[2400]} mV), keeping most of the savings with "
        "near-nominal dependability."
    )


if __name__ == "__main__":
    main()
