"""Fleet planning: translate FIT rates into expected failures at scale.

A cloud operator running tens of thousands of servers cares about FIT
arithmetic, not beam physics: given the per-chip FIT rates measured at
each voltage setting, how many SDCs and crashes per year should a fleet
expect, and what does undervolting *really* cost in reliability against
what it saves in energy?

Uses the paper's own Fig. 11 pipeline (events + fluence -> DCS -> FIT)
from a freshly simulated campaign, then scales to fleet size.

Run with::

    python examples/fleet_planning.py [fleet_size]
"""

import sys

from repro import Campaign, CampaignAnalysis, OutcomeKind, PowerModel
from repro.constants import HOURS_PER_YEAR
from repro.core.fit import mttf_hours

FLEET_DEFAULT = 50_000


def failures_per_year(fit: float, fleet: int) -> float:
    """Expected failures per calendar year across *fleet* chips."""
    return fit * fleet * HOURS_PER_YEAR / 1.0e9


def main(fleet: int = FLEET_DEFAULT) -> None:
    print(f"Simulating the beam campaign, then planning a {fleet:,}-chip fleet\n")
    campaign = Campaign(seed=11, time_scale=0.2).run()
    analysis = CampaignAnalysis(campaign)
    power_model = PowerModel.calibrated()

    sessions = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]
    nominal_label = sessions[0]
    nominal_point = campaign.session(nominal_label).plan.point
    nominal_watts = power_model.total_watts(
        nominal_point.pmd_mv, nominal_point.soc_mv, nominal_point.freq_mhz
    )

    print(
        f"{'setting':>10} {'SDC FIT':>9} {'total FIT':>10} "
        f"{'SDCs/yr (fleet)':>16} {'MTTF/chip':>12} {'MW saved':>9}"
    )
    for label in sessions:
        point = campaign.session(label).plan.point
        sdc_fit = analysis.category_fit(label, OutcomeKind.SDC).fit
        total_fit = analysis.total_fit(label).fit
        watts = power_model.total_watts(
            point.pmd_mv, point.soc_mv, point.freq_mhz
        )
        saved_mw = (nominal_watts - watts) * fleet / 1.0e6
        mttf_years = (
            mttf_hours(total_fit) / HOURS_PER_YEAR if total_fit > 0 else float("inf")
        )
        print(
            f"{point.pmd_mv:>8}mV {sdc_fit:9.2f} {total_fit:10.2f} "
            f"{failures_per_year(sdc_fit, fleet):16.1f} "
            f"{mttf_years:10.0f}yr {saved_mw:8.2f}MW"
        )

    print(
        "\nReading: at Vmin the fleet's yearly SDC count grows by an order "
        "of magnitude while the extra megawatts saved over the 'Safe' "
        "setting are marginal -- the quantitative version of design "
        "implication #2."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else FLEET_DEFAULT)
