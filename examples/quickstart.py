"""Quickstart: fly a scaled beam campaign and regenerate the headline results.

Runs the paper's four Table 2 sessions (at 10 % of their beam time so
this finishes in a couple of seconds), then prints the regenerated
Table 2, the failure mix per voltage (Fig. 8), and the headline FIT
multipliers.

Run with::

    python examples/quickstart.py [seed]
"""

import sys

from repro import Campaign, CampaignAnalysis, OutcomeKind


def main(seed: int = 2023) -> None:
    print("Flying the Table 2 campaign at 10% beam time...\n")
    campaign = Campaign(seed=seed, time_scale=0.1).run()
    analysis = CampaignAnalysis(campaign)

    print(analysis.table2().render())

    print("\nFailure mix per session (Fig. 8 view):")
    for label in campaign.labels():
        session = campaign.session(label)
        if session.failure_count == 0:
            print(f"  {label}: no failures observed (short session)")
            continue
        mix = analysis.failure_mix(label)
        pieces = ", ".join(
            f"{kind.value} {pct:5.1f}%" for kind, pct in mix.items()
        )
        print(
            f"  {label} ({session.plan.point.pmd_mv} mV "
            f"@ {session.plan.point.freq_mhz} MHz): {pieces}"
        )

    nominal, vmin = "session1", "session3"
    print("\nHeadline numbers (paper: SDC x16.3, total x6.6 at Vmin):")
    print(
        f"  SDC FIT increase at Vmin:   "
        f"x{analysis.sdc_fit_increase(vmin, nominal):.1f}"
    )
    print(
        f"  Total FIT increase at Vmin: "
        f"x{analysis.total_fit_increase(vmin, nominal):.1f}"
    )
    sdc_fit = analysis.category_fit(vmin, OutcomeKind.SDC)
    print(
        f"  SDC FIT at Vmin: {sdc_fit.fit:.1f} "
        f"[{sdc_fit.interval.lower:.1f}, {sdc_fit.interval.upper:.1f}] "
        f"(95% CI)"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2023)
