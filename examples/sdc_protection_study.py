"""What to do about the 16x SDC FIT: evaluate the countermeasures.

The paper ends with the problem (SDC FIT explodes at Vmin, and the
culprits are unprotected core paths); this example evaluates the
standard answers with the library's own fault injector:

1. **ABFT** -- checksum-carrying matrix kernels: measured coverage vs
   its O(1/n) overhead;
2. **DMR/TMR** -- redundant execution: perfect detection/correction at
   100/200 % overhead (which dwarfs undervolting's ~11 % savings);
3. **selective hardening** -- protect the worst core structures under
   a budget, priced at nominal voltage and at deep undervolt.

Run with::

    python examples/sdc_protection_study.py
"""

import numpy as np

from repro.injection.calibration import LevelRateModel
from repro.injection.microarch import MicroarchInjector
from repro.resilience.abft import overhead_fraction
from repro.resilience.evaluation import (
    abft_matvec_trial,
    measure_detector_coverage,
)
from repro.resilience.redundancy import (
    dmr_run,
    redundancy_energy_overhead,
    tmr_run,
)
from repro.resilience.selective import (
    options_from_microarch,
    select_hardening,
)
from repro.soc.geometry import CacheLevel
from repro.workloads.suite import make_workload


def main() -> None:
    rng = np.random.default_rng(17)

    print("=== 1. ABFT: cheap detection for the numeric kernels ===\n")
    trial = abft_matvec_trial(n=96, seed=1)
    report = measure_detector_coverage(trial, 400, rng)
    print(
        f"  coverage of effective faults: {100 * report.coverage:.1f}% "
        f"({report.detected}/{report.effective_faults})"
    )
    print(
        f"  arithmetic overhead at n=96: "
        f"{100 * overhead_fraction(96):.2f}% (vs 100% for DMR)"
    )

    print("\n=== 2. Redundant execution on a real kernel ===\n")
    workload = make_workload("EP", scale=0.2)

    def corrupt_one(state, replica):
        if replica == 1:
            name = max(state, key=lambda k: state[k].nbytes)
            arr = np.ascontiguousarray(state[name])
            state[name] = arr
            arr.reshape(-1)[: arr.size // 8] *= 0.5

    dmr = dmr_run(workload, fault_hook=corrupt_one)
    tmr = tmr_run(workload, fault_hook=corrupt_one)
    print(f"  DMR detected the faulty replica: {dmr.detected} "
          f"(overhead {100 * redundancy_energy_overhead(2):.0f}%)")
    print(f"  TMR corrected it: {tmr.corrected} "
          f"(overhead {100 * redundancy_energy_overhead(3):.0f}%)")
    print("  -> full redundancy costs ~10x what undervolting saves")

    print("\n=== 3. Selective hardening of the core structures ===\n")
    injector = MicroarchInjector()
    rates = LevelRateModel()
    base = rates.rate_per_min(CacheLevel.L2, True, 980, 950)
    for pmd_mv in (980, 790):
        multiplier = (
            rates.rate_per_min(CacheLevel.L2, True, pmd_mv, 950) / base
        )
        options = options_from_microarch(
            injector, susceptibility_multiplier=multiplier
        )
        budget = sum(o.cost for o in options) * 0.4
        choice = select_hardening(options, budget)
        picks = ", ".join(o.structure for o in choice.selected)
        print(
            f"  @ {pmd_mv} mV (x{multiplier:.2f}): protect [{picks}] "
            f"-> removes {100 * choice.reduction_fraction:.0f}% of core "
            f"SDC FIT at 40% of full-protection cost"
        )


if __name__ == "__main__":
    main()
