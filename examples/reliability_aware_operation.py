"""The operator's playbook: characterize, budget, select, verify.

Chains the library's decision tools into the workflow a datacenter
reliability team would actually run:

1. *characterize* the safe Vmin quickly with the micro-virus battery
   (conservative) and thoroughly with the benchmark sweep;
2. *population-correct* the setting for a fleet of non-identical chips;
3. *select* an operating point under an SDC FIT budget
   (design implication #2 as an optimizer);
4. *verify* that checkpoint/restart overhead does not eat the savings
   (the introduction's open question), across radiation environments.

Run with::

    python examples/reliability_aware_operation.py
"""

import numpy as np

from repro.core.energy import (
    EnergyModel,
    OperatingPointSelector,
    candidates_from_paper_fit,
)
from repro.core.guardband import VminPopulation, per_chip_advantage_mv
from repro.harness.availability import CheckpointModel, undervolting_verdict
from repro.harness.vmin import PFAIL_MODELS, VminCharacterizer
from repro.harness.viruses import (
    battery_safe_vmin_mv,
    characterize_with_viruses,
)
from repro.soc.power import PowerModel


def main() -> None:
    print("=== 1. Characterize: viruses (fast) vs benchmarks (thorough) ===\n")
    model = PFAIL_MODELS[2400]
    virus_results = characterize_with_viruses(model, runs_per_voltage=60)
    for name, result in virus_results.items():
        print(f"  {name:>12}: safe Vmin {result.safe_vmin_mv} mV")
    virus_vmin = battery_safe_vmin_mv(virus_results)
    bench_vmin = VminCharacterizer(model, 300).characterize(seed=4).safe_vmin_mv
    print(f"\n  virus battery Vmin: {virus_vmin} mV (seconds of runtime)")
    print(f"  benchmark-sweep Vmin: {bench_vmin} mV (hours of runtime)")
    print("  -> viruses trade a few mV of margin for ~100x less test time")

    print("\n=== 2. One chip is not the fleet ===\n")
    population = VminPopulation(mean_mv=917.0, sigma_mv=12.0)
    fleet_voltage = population.fleet_safe_voltage_mv(violation_target=1e-4)
    advantage = per_chip_advantage_mv(population)
    rng = np.random.default_rng(2)
    fleet_frac = population.guardband_recovered_fleetwide(1e-4)
    chip_frac = population.guardband_recovered_per_chip(20_000, rng)
    print(f"  fleet-wide safe setting: {fleet_voltage} mV "
          f"(recovers {100*fleet_frac:.0f}% of the guardband)")
    print(f"  per-chip characterization recovers {100*chip_frac:.0f}%, "
          f"i.e. ~{advantage:.0f} mV more undervolt on the average chip")

    print("\n=== 3. Select an operating point under an SDC budget ===\n")
    selector = OperatingPointSelector(
        EnergyModel(power_model=PowerModel.calibrated())
    )
    for budget in (3.0, 10.0, 50.0):
        choice = selector.select(
            candidates_from_paper_fit(),
            sdc_fit_budget=budget,
            preserve_performance=True,
        )
        print(
            f"  SDC budget {budget:5.1f} FIT -> {choice.point.label:>8} "
            f"({choice.point.pmd_mv} mV; SDC FIT {choice.sdc_fit})"
        )

    print("\n=== 4. Does recovery overhead eat the savings? ===\n")
    checkpointing = CheckpointModel(checkpoint_cost_s=30.0, restart_cost_s=120.0)
    for env, label in ((1.0, "NYC ground"), (300.0, "flight altitude"),
                       (1e7, "near-beam")):
        verdict = undervolting_verdict(
            nominal_power_w=20.40,
            nominal_crash_fit=1.49 + 4.29,
            undervolted_power_w=18.15,
            undervolted_crash_fit=0.96 + 2.55,
            checkpointing=checkpointing,
            environment_factor=env,
        )
        print(
            f"  {label:>15}: raw {100*verdict.raw_savings_fraction:.1f}% -> "
            f"net {100*verdict.net_savings_fraction:.1f}% "
            f"({'pays off' if verdict.pays_off else 'DOES NOT pay off'})"
        )
    print(
        "\n  With this chip's measured crash rates (which FALL with "
        "undervolt\n  at fixed clock), undervolting keeps paying in every "
        "environment."
    )


if __name__ == "__main__":
    main()
