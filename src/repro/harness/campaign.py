"""The four-session radiation campaign of Table 2.

Runs every session plan against a fresh chip, collects the results,
and exposes campaign-level views (per-voltage aggregation, consolidated
EDAC statistics) that the analysis layer turns into the paper's tables
and figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SessionError
from ..rng import RngStreams
from ..soc.xgene2 import XGene2
from .session import (
    BeamSession,
    SessionPlan,
    SessionResult,
    TABLE2_SESSION_PLANS,
    scaled_plan,
)


@dataclass
class CampaignResult:
    """All sessions of one campaign, by label."""

    sessions: Dict[str, SessionResult] = field(default_factory=dict)
    sram_bits: int = 0

    def session(self, label: str) -> SessionResult:
        """Look one session up by label."""
        if label not in self.sessions:
            raise SessionError(f"no such session: {label!r}")
        return self.sessions[label]

    def by_pmd_voltage(self) -> Dict[int, SessionResult]:
        """Sessions keyed by their PMD voltage."""
        return {
            result.plan.point.pmd_mv: result
            for result in self.sessions.values()
        }

    def labels(self) -> List[str]:
        """Session labels in insertion (flight) order."""
        return list(self.sessions)


class Campaign:
    """Runs a list of session plans with deterministic seeding.

    Parameters
    ----------
    plans:
        Session plans to fly (defaults to Table 2's four).
    seed:
        Root seed; every stochastic draw of the campaign derives
        from it.
    time_scale:
        Shrinks every session's beam time (1.0 = full length;
        tests and quick demos use much smaller values).
    """

    def __init__(
        self,
        plans: Optional[List[SessionPlan]] = None,
        seed: int = 2023,
        time_scale: float = 1.0,
    ) -> None:
        base_plans = plans if plans is not None else TABLE2_SESSION_PLANS
        if time_scale != 1.0:
            base_plans = [scaled_plan(p, time_scale) for p in base_plans]
        self.plans = base_plans
        self.streams = RngStreams(seed)

    def run(self) -> CampaignResult:
        """Fly every session on a fresh chip; return all results."""
        result = CampaignResult()
        for plan in self.plans:
            chip = XGene2()
            session = BeamSession(plan, self.streams, chip=chip)
            result.sessions[plan.label] = session.run()
            if not result.sram_bits:
                result.sram_bits = chip.sram_data_bits
        return result
