"""The four-session radiation campaign of Table 2.

Runs every session plan against a fresh chip, collects the results,
and exposes campaign-level views (per-voltage aggregation, consolidated
EDAC statistics) that the analysis layer turns into the paper's tables
and figures.

Sessions fan out through the :mod:`repro.engine` execution layer: each
session is one picklable :class:`~repro.engine.WorkUnit` carrying its
plan and the campaign's root seed, so a
:class:`~repro.engine.ParallelExecutor` flies them on separate
processes and still produces output bit-identical to the serial run --
session streams are derived from ``(seed, label)`` alone, never from
cross-session draw order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..engine import ExecutionContext, Executor, SerialExecutor, WorkUnit
from ..errors import SessionError
from ..rng import RngStreams
from ..soc.xgene2 import XGene2
from ..telemetry import MetricsRegistry, NULL_TELEMETRY, stable_config_hash
from .session import (
    BeamSession,
    SessionPlan,
    SessionResult,
    TABLE2_SESSION_PLANS,
    scaled_plan,
)


@dataclass
class CampaignResult:
    """All sessions of one campaign, by label."""

    sessions: Dict[str, SessionResult] = field(default_factory=dict)
    sram_bits: int = 0

    def session(self, label: str) -> SessionResult:
        """Look one session up by label."""
        if label not in self.sessions:
            raise SessionError(f"no such session: {label!r}")
        return self.sessions[label]

    def by_pmd_voltage(self) -> Dict[int, SessionResult]:
        """Sessions keyed by their PMD voltage."""
        return {
            result.plan.point.pmd_mv: result
            for result in self.sessions.values()
        }

    def labels(self) -> List[str]:
        """Session labels in insertion (flight) order."""
        return list(self.sessions)


def _fly_session(
    plan: SessionPlan,
    seed: int,
    vectorized: bool = True,
    with_metrics: bool = False,
    tech_node: Optional[str] = None,
) -> Tuple[SessionResult, int, Optional[dict]]:
    """Fly one session on a fresh chip (module-level: must pickle).

    The session's stream is derived from ``(seed, plan.label)`` inside
    :class:`BeamSession`, so this function is a pure function of its
    arguments -- the foundation of the serial/parallel determinism
    guarantee.

    A non-default *tech_node* name builds the chip and the calibrated
    rate/outcome models for that node (the plan's operating point has
    already been scaled by the campaign); the default node takes the
    original code path bit-for-bit.

    When *with_metrics* is set, the session counts into a private
    registry whose snapshot rides home with the result; the parent
    merges snapshots in submission order, so the merged counts are
    identical no matter which process (or how many) flew the sessions.
    """
    metrics = MetricsRegistry() if with_metrics else None
    if tech_node:
        from ..injection.calibration import LevelRateModel, OutcomeMixModel
        from ..tech import get_node

        node = get_node(tech_node)
        chip = XGene2(tech_node=node)
        session = BeamSession(
            plan,
            RngStreams(seed),
            chip=chip,
            rate_model=LevelRateModel.for_node(node),
            outcome_mix=OutcomeMixModel.for_node(node),
            vectorized=vectorized,
            metrics=metrics,
        )
    else:
        chip = XGene2()
        session = BeamSession(
            plan, RngStreams(seed), chip=chip, vectorized=vectorized,
            metrics=metrics,
        )
    result = session.run()
    snapshot = metrics.to_dict() if metrics is not None else None
    return result, chip.sram_data_bits, snapshot


class Campaign:
    """Runs a list of session plans with deterministic seeding.

    Parameters
    ----------
    plans:
        Session plans to fly (defaults to Table 2's four).
    seed:
        Root seed; every stochastic draw of the campaign derives
        from it.  Ignored when *context* is given.
    time_scale:
        Shrinks every session's beam time (1.0 = full length;
        tests and quick demos use much smaller values).  Ignored when
        *context* is given.
    executor:
        Engine executor the sessions fan out through (defaults to
        :class:`~repro.engine.SerialExecutor`; pass
        ``ParallelExecutor(4)`` to fly the four sessions concurrently).
    context:
        Full :class:`~repro.engine.ExecutionContext`; supersedes the
        loose *seed*/*time_scale* pair and can carry a campaign-wide
        flux override plus a logbook sink for engine events.
    vectorized:
        Select the injector realization path (see
        :class:`~repro.injection.injector.BeamInjector`).
    tech_node:
        Optional registered technology-node name.  A non-default node
        scales every plan's operating point onto the node's grid and
        flies sessions on the node's chip/rate models; the default
        ``"xgene2-28"`` (or ``None``) collapses to the plain 28 nm
        code path and leaves the config hash untouched.
    """

    def __init__(
        self,
        plans: Optional[List[SessionPlan]] = None,
        seed: int = 2023,
        time_scale: float = 1.0,
        executor: Optional[Executor] = None,
        context: Optional[ExecutionContext] = None,
        vectorized: bool = True,
        tech_node: Optional[str] = None,
    ) -> None:
        if context is None:
            context = ExecutionContext(seed=seed, time_scale=time_scale)
        self.context = context
        node = None
        if tech_node:
            from ..tech import get_node

            node = get_node(tech_node)
            if node.is_default:
                # The 28 nm anchor *is* the plain chip: collapse so the
                # hash, the unit payloads and the flown bytes all match
                # a default-node campaign exactly (the tech_anchor
                # differential pairing pins this).
                node = None
        self.tech_node = node.name if node is not None else None
        base_plans = plans if plans is not None else TABLE2_SESSION_PLANS
        if context.time_scale != 1.0:
            base_plans = [
                scaled_plan(p, context.time_scale) for p in base_plans
            ]
        if context.flux_per_cm2_s is not None:
            base_plans = [
                replace(p, flux_per_cm2_s=context.flux_per_cm2_s)
                for p in base_plans
            ]
        if node is not None:
            base_plans = [
                replace(p, point=node.scaled_point(p.point))
                for p in base_plans
            ]
        self.plans = base_plans
        self.executor = executor or SerialExecutor()
        self.vectorized = vectorized
        # Back-compat: pre-engine callers reached for campaign.streams.
        self.streams = context.streams

    def config_hash(self) -> str:
        """Stable hash of the flown configuration (plans + root inputs).

        Recorded in the run manifest so a results directory can always
        be traced back to the exact configuration that produced it.
        """
        data = {
            "seed": self.context.seed,
            "time_scale": self.context.time_scale,
            "flux_per_cm2_s": self.context.flux_per_cm2_s,
            "vectorized": self.vectorized,
            "plans": [asdict(plan) for plan in self.plans],
        }
        # The node folds in only when non-default, so every pre-existing
        # campaign hash (and the checkpoint journals pinned on them)
        # stays byte-identical.
        if self.tech_node is not None:
            data["tech_node"] = self.tech_node
        return stable_config_hash(data)

    def plan_campaign(self, with_metrics: Optional[bool] = None):
        """Plan this campaign for the broker: ordered, stable-id units.

        The scheduling entry point: ``Campaign`` owns plan preparation
        (time scaling, flux overrides) and the config hash;
        :func:`~repro.scheduler.plan_units` owns the unit wrapping.
        """
        from ..scheduler import CampaignPlan, plan_units

        if with_metrics is None:
            telemetry = self.context.telemetry or NULL_TELEMETRY
            with_metrics = telemetry.enabled
        config_hash = self.config_hash()
        return CampaignPlan(
            config_hash=config_hash,
            units=plan_units(
                self.plans,
                seed=self.context.seed,
                config_hash=config_hash,
                vectorized=self.vectorized,
                with_metrics=with_metrics,
                tech_node=self.tech_node,
            ),
            seed=self.context.seed,
            time_scale=self.context.time_scale,
        )

    def run(self) -> CampaignResult:
        """Fly every session on a fresh chip; return all results.

        Compatibility shim over the scheduling layer: plans the
        campaign, submits it to a private in-process
        :class:`~repro.scheduler.Broker`, and drains the queue through
        this campaign's executor.  The broker adds bookkeeping, never
        behaviour -- units run through one ``executor.map`` batch in
        submission order, so the span tree, merged counters and result
        bytes are identical to the pre-broker serial/parallel runs.

        With a telemetry sink on the context, each work unit flies with
        a private metrics registry and ships its snapshot back; the
        merge happens here, strictly in submission order, so the merged
        counts are bit-identical between serial and parallel executors.
        """
        from ..scheduler import Broker

        telemetry = self.context.telemetry or NULL_TELEMETRY
        plan = self.plan_campaign()
        broker = Broker(telemetry=telemetry)
        broker.submit(plan)
        result = CampaignResult()
        with telemetry.span("campaign.run", sessions=len(plan.units)):
            outcomes = broker.drain(
                self.executor,
                logbook=self.context.logbook,
                telemetry=self.context.telemetry,
            )
            for planned in plan.units:
                session_result, sram_bits, snapshot = outcomes[
                    planned.unit_id
                ]
                telemetry.merge_snapshot(snapshot)
                result.sessions[planned.label] = session_result
                if not result.sram_bits:
                    result.sram_bits = sram_bits
        return result
