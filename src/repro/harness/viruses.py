"""Micro-viruses: worst-case stress kernels for Vmin characterization.

The paper's characterization methodology ([49]/[57]) runs full
benchmarks hundreds of times per voltage step.  Its companion work
([51], "Micro-Viruses for Fast System-Level Voltage Margins
Characterization") replaces them with short kernels crafted to maximize
voltage droop -- di/dt spikes, cache-port pressure, data-bus toggling --
so the *worst-case* safe voltage surfaces within seconds instead of
hours.

Each virus here is a genuine numpy kernel with a verifiable checksum
(a virus that crashes or mis-computes at a voltage step is precisely
the failure signal), plus a calibrated ``droop_penalty_mv``: the extra
supply droop its stress pattern induces over an average benchmark,
which shifts the effective pfail curve upward by that amount.  The
virus-characterized Vmin is therefore *higher* (more conservative) than
the benchmark Vmin -- the safety margin [51] trades for speed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import ConfigurationError
from .vmin import PfailModel, VminCharacterizer, VminResult


@dataclass(frozen=True)
class StressSignature:
    """What one virus stresses and how hard.

    Attributes
    ----------
    name:
        Virus label.
    droop_penalty_mv:
        Extra voltage droop vs an average benchmark (mV); shifts the
        pfail curve up by this amount during virus-driven runs.
    runtime_s:
        Single-execution runtime -- the speed advantage of viruses.
    """

    name: str
    droop_penalty_mv: float
    runtime_s: float

    def __post_init__(self) -> None:
        if self.droop_penalty_mv < 0:
            raise ConfigurationError("droop penalty must be nonnegative")
        if self.runtime_s <= 0:
            raise ConfigurationError("runtime must be positive")


class StressKernel:
    """Base class: a short, verifiable, maximum-stress kernel."""

    signature: StressSignature

    def __init__(self, seed: int = 7, size: int = 96) -> None:
        if size < 8:
            raise ConfigurationError("virus working set too small")
        self.seed = seed
        self.size = size
        self._golden: float = None

    def _run_kernel(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def run(self) -> float:
        """Execute the stress pattern; returns its checksum."""
        return self._run_kernel(np.random.default_rng(self.seed))

    def golden(self) -> float:
        """Fault-free checksum (cached)."""
        if self._golden is None:
            self._golden = self.run()
        return self._golden

    def verify(self) -> bool:
        """Run once and compare against the golden checksum."""
        return abs(self.run() - self.golden()) <= 1e-12 * max(
            1.0, abs(self.golden())
        )


class PowerVirus(StressKernel):
    """Dense FMA pressure: back-to-back matrix products.

    Maximizes simultaneous functional-unit activity -- the di/dt pattern
    that produces the deepest supply droop on real hardware.
    """

    signature = StressSignature(
        name="power-virus", droop_penalty_mv=15.0, runtime_s=0.2
    )

    def _run_kernel(self, rng: np.random.Generator) -> float:
        a = rng.standard_normal((self.size, self.size))
        b = rng.standard_normal((self.size, self.size))
        acc = np.eye(self.size)
        for _ in range(8):
            acc = acc @ a
            acc = acc + acc @ b
            acc /= np.abs(acc).max()
        return float(acc.sum())


class CacheThrashVirus(StressKernel):
    """Strided walks defeating every cache level.

    Keeps the L1/L2 miss machinery saturated; on the real chip this
    pattern exposes the memory-subsystem voltage sensitivity.
    """

    signature = StressSignature(
        name="cache-thrash", droop_penalty_mv=10.0, runtime_s=0.3
    )

    def _run_kernel(self, rng: np.random.Generator) -> float:
        n = self.size * self.size * 16
        data = rng.standard_normal(n)
        checksum = 0.0
        for stride in (4099, 8209, 16411):  # primes > typical line count
            idx = (np.arange(n // 4) * stride) % n
            checksum += float(data[idx].sum())
            data[idx] = -data[idx]
        return checksum


class ToggleVirus(StressKernel):
    """Maximum data-bus toggling: alternating complement patterns.

    Flipping every wire every cycle maximizes switching noise on the
    data paths -- the classic signal-integrity stressor.
    """

    signature = StressSignature(
        name="bus-toggle", droop_penalty_mv=8.0, runtime_s=0.15
    )

    def _run_kernel(self, rng: np.random.Generator) -> float:
        n = self.size * self.size * 8
        pattern = rng.integers(0, 2 ** 62, size=n, dtype=np.int64)
        flipped = pattern
        for _ in range(6):
            flipped = np.bitwise_xor(flipped, ~flipped >> 1)
        return float(np.bitwise_and(flipped, 0xFFFF).sum())


#: The default virus battery, hardest-hitting first.
DEFAULT_VIRUSES: List[StressKernel] = None  # built lazily in make_viruses()


def make_viruses(seed: int = 7) -> List[StressKernel]:
    """Instantiate the standard three-virus battery."""
    return [PowerVirus(seed), CacheThrashVirus(seed), ToggleVirus(seed)]


def virus_shifted_model(model: PfailModel, virus: StressKernel) -> PfailModel:
    """The pfail curve a virus effectively sees.

    The virus's droop penalty moves the whole failure curve up by that
    many millivolts: at a given external voltage, the internal rails sag
    deeper, failing as the benchmark curve would ``penalty`` lower.
    """
    return PfailModel(
        freq_mhz=model.freq_mhz,
        v50_mv=model.v50_mv + virus.signature.droop_penalty_mv,
        width_mv=model.width_mv,
    )


def characterize_with_viruses(
    model: PfailModel,
    viruses: List[StressKernel] = None,
    runs_per_voltage: int = 50,
    seed: int = 0,
) -> Dict[str, VminResult]:
    """Virus-driven Vmin characterization.

    Viruses run far fewer repetitions per step (their stress patterns
    expose failures quickly), and each reports its own -- conservative
    -- safe Vmin.  The battery's max is the deployable setting.
    """
    viruses = viruses if viruses is not None else make_viruses()
    if not viruses:
        raise ConfigurationError("need at least one virus")
    results: Dict[str, VminResult] = {}
    for virus in viruses:
        if not virus.verify():
            raise ConfigurationError(
                f"{virus.signature.name}: checksum unstable in fault-free run"
            )
        shifted = virus_shifted_model(model, virus)
        characterizer = VminCharacterizer(shifted, runs_per_voltage)
        results[virus.signature.name] = characterizer.characterize(seed=seed)
    return results


def battery_safe_vmin_mv(results: Dict[str, VminResult]) -> int:
    """The deployable Vmin: the most conservative across the battery."""
    if not results:
        raise ConfigurationError("empty virus battery results")
    return max(r.safe_vmin_mv for r in results.values())
