"""Structured session timeline logging.

The Control-PC logs every noteworthy occurrence -- run starts and
completions, failures, resets, power cycles -- with timestamps, so the
post-analysis can reconstruct the session exactly as the authors did
from their serial-console captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional

from ..errors import LogbookError

#: The closed set of entry categories.  "engine" is the execution
#: layer's dispatch/completion channel; everything else mirrors the
#: serial-console vocabulary of the paper's session captures.
VALID_KINDS: FrozenSet[str] = frozenset(
    {
        "run",
        "ok",
        "sdc",
        "appcrash",
        "syscrash",
        "reset",
        "powercycle",
        "note",
        "engine",
    }
)


@dataclass(frozen=True)
class LogEntry:
    """One timestamped logbook line.

    Attributes
    ----------
    time_s:
        Seconds since session start.
    kind:
        Entry category; one of :data:`VALID_KINDS` ("run", "ok",
        "sdc", "appcrash", "syscrash", "reset", "powercycle", "note",
        "engine").
    message:
        Free-form detail.
    benchmark:
        Benchmark in flight, when applicable.
    """

    time_s: float
    kind: str
    message: str
    benchmark: Optional[str] = None

    def render(self) -> str:
        """Render the entry as a console line."""
        bench = f" [{self.benchmark}]" if self.benchmark else ""
        return f"{self.time_s:10.1f}s {self.kind.upper():>10}{bench}: {self.message}"


class Logbook:
    """Append-only session log."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    def record(
        self,
        time_s: float,
        kind: str,
        message: str,
        benchmark: Optional[str] = None,
    ) -> LogEntry:
        """Append one entry and return it.

        Raises
        ------
        LogbookError
            If *kind* is outside the documented closed set -- a typo'd
            kind would otherwise silently vanish from every
            ``count``/``entries`` query that spells it correctly.
        """
        if kind not in VALID_KINDS:
            raise LogbookError(
                f"unknown logbook kind {kind!r}; "
                f"expected one of {sorted(VALID_KINDS)}"
            )
        entry = LogEntry(
            time_s=time_s, kind=kind, message=message, benchmark=benchmark
        )
        self._entries.append(entry)
        return entry

    def entries(self, kind: Optional[str] = None) -> List[LogEntry]:
        """All entries, optionally filtered by kind."""
        if kind is None:
            return list(self._entries)
        return [e for e in self._entries if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of entries of one kind."""
        return sum(1 for e in self._entries if e.kind == kind)

    def render(self) -> str:
        """Render the whole log as text."""
        return "\n".join(e.render() for e in self._entries)
