"""Undervolting characterization: pfail(V) curves and safe Vmin.

Before any beam time, the chip is characterized offline (Section 3.6,
following [49, 57]): each benchmark is executed hundreds of times per
voltage step, walking downward from nominal, and the probability of
failure (pfail) is recorded.  The *safe Vmin* is the lowest voltage at
which every execution completes correctly -- below it, manufacturing
variation (not radiation) breaks execution.

The pfail(V) shape is a logistic in voltage -- the CDF of the chip's
weakest-path failure voltage under process variation (see
:mod:`repro.sram.variation`).  Parameters are calibrated to Fig. 4:

* 2.4 GHz: safe Vmin 920 mV, pfail reaching 100 % by 900 mV;
* 900 MHz: safe Vmin 790 mV, with a shorter (~10 mV) failure ramp.

Lower frequency relaxes timing slack, pushing the whole curve down by
~130 mV -- the voltage guardband the paper exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..constants import PMD_NOMINAL_MV, VOLTAGE_STEP_MV
from ..engine import Executor, SerialExecutor, WorkUnit
from ..errors import ConfigurationError
from ..rng import as_generator
from ..telemetry import Telemetry


@dataclass(frozen=True)
class PfailModel:
    """Logistic probability-of-failure curve for one clock frequency.

    pfail(V) = 1 / (1 + exp((V - v50) / width))

    Attributes
    ----------
    freq_mhz:
        The clock frequency the curve belongs to.
    v50_mv:
        Voltage of 50 % failure probability.
    width_mv:
        Logistic width; smaller = sharper ramp.
    """

    freq_mhz: int
    v50_mv: float
    width_mv: float

    def __post_init__(self) -> None:
        if self.width_mv <= 0:
            raise ConfigurationError("logistic width must be positive")

    def pfail(self, voltage_mv: float) -> float:
        """Probability that one execution fails at *voltage_mv*."""
        z = (voltage_mv - self.v50_mv) / self.width_mv
        return float(1.0 / (1.0 + np.exp(z)))

    def sample_run_fails(
        self, voltage_mv: float, rng: np.random.Generator
    ) -> bool:
        """Bernoulli draw: does one execution fail?"""
        return bool(rng.random() < self.pfail(voltage_mv))


#: Calibrated pfail curves for the two studied frequencies (Fig. 4).
#: Parameters chosen so that, at 300 runs per voltage, the safe Vmin is
#: 920 mV (2.4 GHz) / 790 mV (900 MHz) with high probability: pfail at
#: Vmin itself is ~1e-4 (rarely observed), one 5 mV step below it is
#: ~1 % (almost always observed), and pfail saturates at 100 % by
#: 900 mV / 780 mV respectively, matching Fig. 4's ramps.
PFAIL_MODELS: Dict[int, PfailModel] = {
    2400: PfailModel(freq_mhz=2400, v50_mv=910.0, width_mv=1.1),
    900: PfailModel(freq_mhz=900, v50_mv=782.0, width_mv=0.7),
}


@dataclass
class VminResult:
    """Outcome of one characterization sweep.

    Attributes
    ----------
    freq_mhz:
        Characterized frequency.
    safe_vmin_mv:
        Lowest voltage with zero observed failures (and all voltages
        above it also failure-free).
    pfail_curve:
        Measured failure fraction per voltage step, keyed by mV.
    runs_per_voltage:
        Executions performed at each step.
    """

    freq_mhz: int
    safe_vmin_mv: int
    pfail_curve: Dict[int, float] = field(default_factory=dict)
    runs_per_voltage: int = 0

    def guardband_mv(self, nominal_mv: int = PMD_NOMINAL_MV) -> int:
        """The exploitable voltage guardband below nominal."""
        return nominal_mv - self.safe_vmin_mv


class VminCharacterizer:
    """Runs the offline safe-Vmin identification methodology.

    Parameters
    ----------
    model:
        The pfail curve of the target frequency.
    runs_per_voltage:
        Identical executions per voltage step ("hundreds of times",
        Section 4.1).
    """

    def __init__(self, model: PfailModel, runs_per_voltage: int = 300) -> None:
        if runs_per_voltage < 1:
            raise ConfigurationError("need at least one run per voltage")
        self.model = model
        self.runs_per_voltage = runs_per_voltage

    def measure_pfail(self, voltage_mv: int, rng: np.random.Generator) -> float:
        """Empirical pfail at one voltage over the configured run count.

        Vectorized over the run count; ``rng.random(n)`` yields the same
        sequence as ``n`` scalar ``rng.random()`` calls, so results are
        bit-identical to the historical per-run loop.
        """
        p = self.model.pfail(voltage_mv)
        draws = rng.random(self.runs_per_voltage)
        fails = int(np.count_nonzero(draws < p))
        return fails / self.runs_per_voltage

    def characterize(
        self,
        seed: int = 0,
        start_mv: int = PMD_NOMINAL_MV,
        stop_mv: int = 700,
        step_mv: int = VOLTAGE_STEP_MV,
    ) -> VminResult:
        """Walk down from *start_mv* and identify the safe Vmin.

        The sweep continues past the first failure until pfail reaches
        100 % (or *stop_mv*), so the full Fig. 4 curve is recorded.
        """
        if start_mv <= stop_mv:
            raise ConfigurationError("start voltage must exceed stop voltage")
        rng = as_generator(seed, f"vmin-{self.model.freq_mhz}")
        curve: Dict[int, float] = {}
        safe_vmin = start_mv
        seen_failure = False
        voltage = start_mv
        while voltage >= stop_mv:
            pfail = self.measure_pfail(voltage, rng)
            curve[voltage] = pfail
            if pfail == 0.0 and not seen_failure:
                safe_vmin = voltage
            elif pfail > 0.0:
                seen_failure = True
            if pfail >= 1.0:
                break
            voltage -= step_mv
        return VminResult(
            freq_mhz=self.model.freq_mhz,
            safe_vmin_mv=safe_vmin,
            pfail_curve=curve,
            runs_per_voltage=self.runs_per_voltage,
        )


def _characterize_frequency(
    freq_mhz: int, seed: int, runs_per_voltage: int
) -> VminResult:
    """Sweep one frequency (module-level: must pickle)."""
    model = PFAIL_MODELS[freq_mhz]
    return VminCharacterizer(model, runs_per_voltage).characterize(seed)


def characterize_all(
    seed: int = 0,
    runs_per_voltage: int = 300,
    executor: Optional[Executor] = None,
    telemetry: Optional[Telemetry] = None,
) -> Dict[int, VminResult]:
    """Characterize both studied frequencies (the Fig. 4 pair).

    Each frequency sweep is one engine work unit; its stream is derived
    from ``(seed, frequency)`` alone, so serial and parallel executors
    produce identical curves.  A telemetry sink receives one
    ``vmin.sweeps`` count and a ``vmin.safe_mv`` gauge per frequency
    (derived from the merged results, so executor choice cannot change
    them).
    """
    executor = executor or SerialExecutor()
    freqs = list(PFAIL_MODELS)
    units = [
        WorkUnit(
            key=f"vmin-{freq}",
            fn=_characterize_frequency,
            args=(freq, seed, runs_per_voltage),
        )
        for freq in freqs
    ]
    results = executor.map(units, telemetry=telemetry)
    characterized = dict(zip(freqs, results))
    if telemetry is not None:
        for freq, result in characterized.items():
            telemetry.count("vmin.sweeps", freq_mhz=freq)
            telemetry.count(
                "vmin.runs", len(result.pfail_curve) * runs_per_voltage,
                freq_mhz=freq,
            )
            telemetry.set_gauge(
                "vmin.safe_mv", result.safe_vmin_mv, freq_mhz=freq
            )
    return characterized
