"""Checkpoint/restart economics under radiation-induced crashes.

The paper's introduction raises an open question: voltage overscaling
failures "are typically mitigated by combining voltage overscaling with
error recovery mechanisms, such as checkpointing ... it is unclear
whether energy savings from reduced voltage margins outweigh the
overhead of error recovery mechanisms."  This module answers it
quantitatively for any radiation environment:

* crash MTBF follows from the measured crash FIT scaled to the
  environment's flux multiple of NYC sea level;
* the optimal checkpoint interval is Young's classic
  tau* = sqrt(2 * delta * MTBF) for checkpoint cost delta;
* the expected runtime dilation of checkpointing + rework + restart
  gives an *effective* power and energy-per-work, which can be compared
  across voltage settings -- undervolting only pays if its power
  savings survive the extra recovery work its higher failure rate
  causes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..constants import FIT_HOURS
from ..errors import AnalysisError


@dataclass(frozen=True)
class CheckpointModel:
    """Young-model checkpoint/restart cost accounting.

    Attributes
    ----------
    checkpoint_cost_s:
        Time to take one checkpoint (delta).
    restart_cost_s:
        Time to reboot/restore after a crash (R).
    """

    checkpoint_cost_s: float = 30.0
    restart_cost_s: float = 120.0

    def __post_init__(self) -> None:
        if self.checkpoint_cost_s <= 0 or self.restart_cost_s < 0:
            raise AnalysisError("checkpoint cost must be positive, restart nonnegative")

    # -- failure rates ------------------------------------------------------------

    @staticmethod
    def mtbf_hours(crash_fit: float, environment_factor: float = 1.0) -> float:
        """Mean time between crashes for a FIT rate and environment.

        Parameters
        ----------
        crash_fit:
            Crash FIT at NYC sea level (AppCrash + SysCrash).
        environment_factor:
            Neutron-flux multiple of NYC sea level (1 = ground NYC,
            ~300 = commercial flight altitude, ~1e8 = the TNF beam).
        """
        if crash_fit <= 0:
            raise AnalysisError("crash FIT must be positive")
        if environment_factor <= 0:
            raise AnalysisError("environment factor must be positive")
        return FIT_HOURS / (crash_fit * environment_factor)

    def optimal_interval_s(self, mtbf_hours: float) -> float:
        """Young's optimal checkpoint interval tau* = sqrt(2*delta*MTBF)."""
        if mtbf_hours <= 0:
            raise AnalysisError("MTBF must be positive")
        return math.sqrt(2.0 * self.checkpoint_cost_s * mtbf_hours * 3600.0)

    def overhead_fraction(self, mtbf_hours: float) -> float:
        """Expected fractional runtime dilation at the optimal interval.

        First-order Young model: checkpointing costs delta/tau of all
        time; each failure wastes on average tau/2 of rework plus the
        restart; failures arrive every MTBF.
        """
        mtbf_s = mtbf_hours * 3600.0
        tau = self.optimal_interval_s(mtbf_hours)
        checkpointing = self.checkpoint_cost_s / tau
        rework = (tau / 2.0 + self.restart_cost_s) / mtbf_s
        return checkpointing + rework

    def effective_slowdown(self, mtbf_hours: float) -> float:
        """Wall-clock multiplier on useful work (1 + overhead)."""
        return 1.0 + self.overhead_fraction(mtbf_hours)


@dataclass(frozen=True)
class UndervoltingVerdict:
    """Net outcome of undervolting once recovery overhead is charged.

    Attributes
    ----------
    environment_factor:
        Flux multiple of NYC the comparison was made at.
    raw_savings_fraction:
        Power savings before recovery accounting (Fig. 10's number).
    net_savings_fraction:
        Energy-per-useful-work savings after checkpoint/rework/restart
        dilation at both settings.
    pays_off:
        True when net savings remain positive.
    """

    environment_factor: float
    raw_savings_fraction: float
    net_savings_fraction: float

    @property
    def pays_off(self) -> bool:
        """Does undervolting still save energy per unit of work?"""
        return self.net_savings_fraction > 0.0


def undervolting_verdict(
    nominal_power_w: float,
    nominal_crash_fit: float,
    undervolted_power_w: float,
    undervolted_crash_fit: float,
    checkpointing: CheckpointModel,
    environment_factor: float = 1.0,
) -> UndervoltingVerdict:
    """Compare two settings on energy per useful work, recovery included.

    Energy per useful work = power x effective slowdown; the slowdown
    differs between settings because the undervolted chip crashes more
    often (or less -- the paper measured crash rates *falling* with
    undervolt at fixed frequency, making undervolting strictly better
    in crash-dominated environments).
    """
    if min(nominal_power_w, undervolted_power_w) <= 0:
        raise AnalysisError("powers must be positive")
    nominal_mtbf = checkpointing.mtbf_hours(
        nominal_crash_fit, environment_factor
    )
    undervolted_mtbf = checkpointing.mtbf_hours(
        undervolted_crash_fit, environment_factor
    )
    nominal_energy = nominal_power_w * checkpointing.effective_slowdown(
        nominal_mtbf
    )
    undervolted_energy = (
        undervolted_power_w
        * checkpointing.effective_slowdown(undervolted_mtbf)
    )
    raw = (nominal_power_w - undervolted_power_w) / nominal_power_w
    net = (nominal_energy - undervolted_energy) / nominal_energy
    return UndervoltingVerdict(
        environment_factor=environment_factor,
        raw_savings_fraction=raw,
        net_savings_fraction=net,
    )


@dataclass(frozen=True)
class AvailabilityModel:
    """Steady-state availability from crash rate and repair time."""

    repair_hours: float = 0.05  # ~3 minutes to power-cycle and reboot

    def __post_init__(self) -> None:
        if self.repair_hours <= 0:
            raise AnalysisError("repair time must be positive")

    def availability(
        self, crash_fit: float, environment_factor: float = 1.0
    ) -> float:
        """A = MTBF / (MTBF + MTTR)."""
        mtbf = CheckpointModel.mtbf_hours(crash_fit, environment_factor)
        return mtbf / (mtbf + self.repair_hours)

    def downtime_minutes_per_year(
        self, crash_fit: float, environment_factor: float = 1.0
    ) -> float:
        """Expected yearly downtime at the given crash rate."""
        unavailable = 1.0 - self.availability(crash_fit, environment_factor)
        return unavailable * 365.25 * 24 * 60
