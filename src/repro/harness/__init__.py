"""Experiment harness: the Control-PC side of the beam campaign.

Reproduces the test flow of Sections 3.5-3.6 and 4.1:

* :mod:`repro.harness.vmin` -- offline undervolting characterization:
  pfail(V) curves and safe-Vmin identification per frequency (Fig. 4).
* :mod:`repro.harness.controller` -- the Control-PC run loop: golden
  output comparison, response timeouts, application restart and board
  power-cycling.
* :mod:`repro.harness.session` -- one beam test session with the
  paper's stopping rules (>= 100 events or >= 1e11 n/cm^2).
* :mod:`repro.harness.campaign` -- the four-session campaign of
  Table 2.
* :mod:`repro.harness.logbook` -- structured session timeline logging.
* :mod:`repro.harness.watchdog` -- Section 3.6 response-timeout
  calibration.  This is the harness's *single* timeout mechanism: the
  supervision layer (:mod:`repro.resilient`) consumes a calibrated
  :class:`~repro.harness.watchdog.WatchdogPolicy` directly via
  :meth:`SupervisionPolicy.from_watchdog
  <repro.resilient.SupervisionPolicy.from_watchdog>` /
  :meth:`SupervisionPolicy.calibrated
  <repro.resilient.SupervisionPolicy.calibrated>` -- there is no
  second timer stack for supervising work units.
"""

from .vmin import PfailModel, VminCharacterizer, VminResult, PFAIL_MODELS
from .controller import ControlPC, RunOutcome
from .session import BeamSession, SessionPlan, SessionResult, TABLE2_SESSION_PLANS
from .campaign import Campaign, CampaignResult
from .logbook import Logbook, LogEntry
from .availability import (
    AvailabilityModel,
    CheckpointModel,
    UndervoltingVerdict,
    undervolting_verdict,
)
from .viruses import (
    StressKernel,
    battery_safe_vmin_mv,
    characterize_with_viruses,
    make_viruses,
)
from .watchdog import WatchdogPolicy, calibrate_watchdog, compare_policies

__all__ = [
    "PfailModel",
    "VminCharacterizer",
    "VminResult",
    "PFAIL_MODELS",
    "ControlPC",
    "RunOutcome",
    "BeamSession",
    "SessionPlan",
    "SessionResult",
    "TABLE2_SESSION_PLANS",
    "Campaign",
    "CampaignResult",
    "Logbook",
    "LogEntry",
    "AvailabilityModel",
    "CheckpointModel",
    "UndervoltingVerdict",
    "undervolting_verdict",
    "StressKernel",
    "battery_safe_vmin_mv",
    "characterize_with_viruses",
    "make_viruses",
    "WatchdogPolicy",
    "calibrate_watchdog",
    "compare_policies",
]
