"""One beam test session, with the paper's stopping rules.

A session pins an operating point, slides the DUT into the halo, and
cycles the six benchmarks until a stopping condition fires (Section
3.5):

* ~100 accumulated failures (SDC + AppCrash + SysCrash), or
* >= 1e11 n/cm^2 fluence, or
* the reserved beam time runs out (session 4 ended at 165 minutes).

:data:`TABLE2_SESSION_PLANS` encodes the four campaign sessions with
Table 2's actual durations, so the regenerated table reproduces the
paper's fluences and NYC-equivalence figures exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from .. import constants
from ..beam.fluence import FluenceAccount
from ..constants import TNF_HALO_FLUX_PER_CM2_S
from ..errors import SessionError
from ..injection.calibration import LevelRateModel, OutcomeMixModel
from ..injection.events import FailureEvent, OutcomeKind
from ..injection.injector import BeamInjector, InjectionSummary
from ..injection.propagation import OutcomeModel
from ..rng import RngStreams
from ..soc.dvfs import OperatingPoint, TABLE3_OPERATING_POINTS
from ..telemetry import MetricsRegistry
from ..soc.edac import EdacLog
from ..soc.xgene2 import XGene2
from ..units import bits_to_mbit
from ..workloads.profiles import PROFILES
from ..workloads.suite import SUITE_NAMES
from .controller import ControlPC, RunOutcome


@dataclass(frozen=True)
class SessionPlan:
    """Configuration of one beam session.

    Attributes
    ----------
    label:
        Session identifier ("session1", ...).
    point:
        Operating point (frequency + domain voltages).
    max_minutes:
        Reserved beam time; the hard stop.
    target_failures:
        Optional early stop on accumulated failures (None = off).
    target_fluence:
        Optional early stop on fluence (None = off).
    benchmarks:
        Benchmark rotation (defaults to the full suite).
    flux_per_cm2_s:
        Beam flux at the DUT (the halo flux by default).
    """

    label: str
    point: OperatingPoint
    max_minutes: float
    target_failures: Optional[int] = None
    target_fluence: Optional[float] = None
    benchmarks: List[str] = field(default_factory=lambda: list(SUITE_NAMES))
    flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S

    def __post_init__(self) -> None:
        if self.max_minutes <= 0:
            raise SessionError("session needs positive beam time")
        if not self.benchmarks:
            raise SessionError("session needs at least one benchmark")


#: The four campaign sessions of Table 2 (durations as flown).
TABLE2_SESSION_PLANS: List[SessionPlan] = [
    SessionPlan("session1", TABLE3_OPERATING_POINTS[0], max_minutes=1651.0),
    SessionPlan("session2", TABLE3_OPERATING_POINTS[1], max_minutes=1618.0),
    SessionPlan(
        "session3",
        TABLE3_OPERATING_POINTS[2],
        max_minutes=453.0,
        target_failures=141,
    ),
    SessionPlan("session4", TABLE3_OPERATING_POINTS[3], max_minutes=165.0),
]


@dataclass
class SessionResult:
    """Everything measured during one session.

    Attributes
    ----------
    plan:
        The configuration that produced this result.
    fluence:
        Fluence account over the session.
    upsets:
        Consolidated upset summary.
    failures:
        All software failures, time-sorted.
    edac:
        The Control-PC's cumulative EDAC archive.
    runs:
        Per-run outcomes, in execution order.
    """

    plan: SessionPlan
    fluence: FluenceAccount
    upsets: InjectionSummary
    failures: List[FailureEvent]
    edac: EdacLog
    runs: List[RunOutcome] = field(default_factory=list)

    # -- Table 2 metrics ----------------------------------------------------------

    @property
    def duration_minutes(self) -> float:
        """Beam-on duration of the session."""
        return self.fluence.exposure_minutes

    @property
    def failure_count(self) -> int:
        """SDCs and crashes, total."""
        return len(self.failures)

    @property
    def failure_rate_per_min(self) -> float:
        """Table 2's 'SDCs and crashes rate (per min)'."""
        if self.duration_minutes <= 0:
            return 0.0
        return self.failure_count / self.duration_minutes

    @property
    def upset_count(self) -> int:
        """Memory upsets, total."""
        return self.upsets.total_upsets

    @property
    def upset_rate_per_min(self) -> float:
        """Table 2's 'Memory upsets rate (per min)'."""
        if self.duration_minutes <= 0:
            return 0.0
        return self.upset_count / self.duration_minutes

    def failures_of_kind(self, kind: OutcomeKind) -> List[FailureEvent]:
        """Failures of one category."""
        return [f for f in self.failures if f.kind is kind]

    def failure_counts(self) -> Dict[OutcomeKind, int]:
        """Histogram over the three failure categories."""
        return {
            kind: len(self.failures_of_kind(kind))
            for kind in (
                OutcomeKind.APP_CRASH,
                OutcomeKind.SYS_CRASH,
                OutcomeKind.SDC,
            )
        }

    def memory_ser_fit_per_mbit(self, sram_bits: int) -> float:
        """Table 2's 'Memory SER (FIT per MBit)'.

        Cross-section of memory upsets, converted to NYC FIT and
        normalized per Mbit of on-chip SRAM.
        """
        if self.fluence.fluence_per_cm2 <= 0:
            raise SessionError("session has no accumulated fluence")
        dcs = self.upset_count / self.fluence.fluence_per_cm2
        fit = dcs * constants.NYC_FLUX_PER_CM2_HOUR * constants.FIT_HOURS
        return fit / bits_to_mbit(sram_bits)


class BeamSession:
    """Executes one session plan against a fresh chip model.

    Parameters
    ----------
    plan:
        The session configuration.
    streams:
        Root RNG stream factory (one per campaign).
    chip:
        Optional pre-built chip (a fresh one is made by default).
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry` the session
        counts runs (by verdict), failures and injector activity into.
        Observational only; the flown result is byte-identical with or
        without it.
    """

    def __init__(
        self,
        plan: SessionPlan,
        streams: RngStreams,
        chip: XGene2 = None,
        rate_model: LevelRateModel = None,
        outcome_mix: OutcomeMixModel = None,
        vectorized: bool = True,
        metrics: "MetricsRegistry" = None,
    ) -> None:
        self.plan = plan
        self.streams = streams
        self.chip = chip or XGene2()
        self.metrics = metrics
        self.injector = BeamInjector(
            self.chip,
            rate_model=rate_model,
            vectorized=vectorized,
            metrics=metrics,
        )
        outcome_model = (
            OutcomeModel(mix=outcome_mix) if outcome_mix else OutcomeModel()
        )
        self.controller = ControlPC(self.chip, self.injector, outcome_model)

    def run(self) -> SessionResult:
        """Fly the session: apply the point, cycle benchmarks, stop."""
        plan = self.plan
        self.chip.apply_operating_point(plan.point)
        rng = self.streams.child("session", label=plan.label)
        fluence = FluenceAccount()
        upsets = InjectionSummary()
        failures: List[FailureEvent] = []
        runs: List[RunOutcome] = []
        clock_s = 0.0
        max_s = plan.max_minutes * 60.0
        bench_index = 0

        while clock_s < max_s:
            benchmark = plan.benchmarks[bench_index % len(plan.benchmarks)]
            bench_index += 1
            duration_s = min(
                PROFILES[benchmark].runtime_s, max_s - clock_s
            )
            if duration_s <= 0:
                break
            outcome = self.controller.run_benchmark(
                benchmark,
                duration_s,
                clock_s,
                rng,
                flux_per_cm2_s=plan.flux_per_cm2_s,
            )
            fluence.expose(plan.flux_per_cm2_s, duration_s)
            upsets.merge(outcome.upsets)
            failures.extend(outcome.failures)
            runs.append(outcome)
            clock_s += duration_s
            if self.metrics is not None:
                verdict = outcome.verdict
                self.metrics.counter(
                    "session.runs",
                    kind="ok" if verdict is None else verdict.value,
                ).inc()
                for failure in outcome.failures:
                    self.metrics.counter(
                        "session.failures", kind=failure.kind.value
                    ).inc()

            if (
                plan.target_failures is not None
                and len(failures) >= plan.target_failures
            ):
                break
            if (
                plan.target_fluence is not None
                and fluence.fluence_per_cm2 >= plan.target_fluence
            ):
                break

        failures.sort(key=lambda f: f.time_s)
        if self.metrics is not None:
            self.metrics.counter("session.flown").inc()
        return SessionResult(
            plan=plan,
            fluence=fluence,
            upsets=upsets,
            failures=failures,
            edac=self.controller.session_edac,
            runs=runs,
        )


def scaled_plan(plan: SessionPlan, time_scale: float) -> SessionPlan:
    """Shrink a session plan's beam time (for fast tests and smoke runs).

    Stopping targets that scale with time (failure counts) are scaled
    down proportionally; fluence targets scale with duration too.
    """
    if time_scale <= 0:
        raise SessionError("time scale must be positive")
    return replace(
        plan,
        max_minutes=plan.max_minutes * time_scale,
        target_failures=(
            None
            if plan.target_failures is None
            else max(int(plan.target_failures * time_scale), 1)
        ),
        target_fluence=(
            None
            if plan.target_fluence is None
            else plan.target_fluence * time_scale
        ),
    )
