"""The Control-PC: run orchestration, failure detection, recovery.

Mirrors the experimental setup of Fig. 3 / Section 3.6: the Control-PC
in the control room starts benchmark executions on the irradiated
board, compares outputs against pre-computed golden references (SDC
detection), watches response timeouts (crash detection: if the board
answers after an application restart it was an *application* crash; if
it stays unreachable it was a *system* crash and the board is
power-cycled), and logs everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..constants import TNF_HALO_FLUX_PER_CM2_S
from ..injection.events import FailureEvent, OutcomeKind
from ..injection.injector import BeamInjector, InjectionSummary
from ..injection.propagation import OutcomeModel
from ..soc.edac import EdacLog
from ..soc.xgene2 import XGene2
from .logbook import Logbook


@dataclass(frozen=True)
class RunOutcome:
    """Result of one benchmark execution under beam.

    Attributes
    ----------
    benchmark:
        Benchmark executed.
    start_s / duration_s:
        Wall-clock placement of the run within the session.
    failures:
        Software-level failure events raised during the run.
    upsets:
        SRAM upset summary for the run's exposure.
    recovery_s:
        Downtime spent recovering after the run (restart / power cycle).
    """

    benchmark: str
    start_s: float
    duration_s: float
    failures: List[FailureEvent]
    upsets: InjectionSummary
    recovery_s: float = 0.0

    @property
    def verdict(self) -> Optional[OutcomeKind]:
        """The run's dominant failure (SysCrash > AppCrash > SDC), or None."""
        order = [OutcomeKind.SYS_CRASH, OutcomeKind.APP_CRASH, OutcomeKind.SDC]
        for kind in order:
            if any(f.kind is kind for f in self.failures):
                return kind
        return None


class ControlPC:
    """Drives benchmark runs on an irradiated chip and classifies failures.

    Parameters
    ----------
    chip:
        The DUT.
    injector:
        Beam upset injector bound to the chip.
    outcome_model:
        Software-failure sampler.
    response_timeout_s:
        How long the Control-PC waits before declaring a crash.
    app_restart_s / power_cycle_s:
        Recovery downtimes.  Default 0 so session rates match the
        paper's time accounting (Table 2 normalizes by beam minutes);
        set realistic values to study availability instead.
    """

    def __init__(
        self,
        chip: XGene2,
        injector: BeamInjector,
        outcome_model: OutcomeModel = None,
        response_timeout_s: float = 30.0,
        app_restart_s: float = 0.0,
        power_cycle_s: float = 0.0,
    ) -> None:
        self.chip = chip
        self.injector = injector
        self.outcome_model = outcome_model or OutcomeModel()
        self.response_timeout_s = response_timeout_s
        self.app_restart_s = app_restart_s
        self.power_cycle_s = power_cycle_s
        self.logbook = Logbook()
        #: Session-cumulative EDAC log: the chip's own log is lost on a
        #: power cycle, so the Control-PC archives every SLIMpro health
        #: poll here (the paper's dmesg captures play the same role).
        self.session_edac = EdacLog()

    def run_benchmark(
        self,
        benchmark: str,
        duration_s: float,
        start_s: float,
        rng: np.random.Generator,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
    ) -> RunOutcome:
        """Execute one benchmark run under beam and classify its outcome."""
        self.logbook.record(start_s, "run", f"start ({duration_s:.1f}s)", benchmark)
        point = self.chip.operating_point()
        upsets = self.injector.expose(
            duration_s,
            rng,
            benchmark=benchmark,
            flux_per_cm2_s=flux_per_cm2_s,
            time_offset_s=start_s,
        )
        failures = self.outcome_model.sample_failures(
            point,
            duration_s,
            benchmark,
            rng,
            flux_per_cm2_s=flux_per_cm2_s,
            time_offset_s=start_s,
        )
        # Archive fresh EDAC notifications before any power cycle can
        # wipe the chip-side log.
        for record in self.chip.slimpro.poll_health():
            self.session_edac.log(record)
        recovery = self._handle_failures(benchmark, start_s, duration_s, failures)
        if not failures:
            self.logbook.record(
                start_s + duration_s, "ok", "output matches golden", benchmark
            )
        return RunOutcome(
            benchmark=benchmark,
            start_s=start_s,
            duration_s=duration_s,
            failures=failures,
            upsets=upsets,
            recovery_s=recovery,
        )

    def _handle_failures(
        self,
        benchmark: str,
        start_s: float,
        duration_s: float,
        failures: List[FailureEvent],
    ) -> float:
        """Log detections/recoveries; return total recovery downtime."""
        recovery = 0.0
        end_s = start_s + duration_s
        for failure in failures:
            if failure.kind is OutcomeKind.SDC:
                note = (
                    "output mismatch with corrected-error notification"
                    if failure.hw_notified
                    else "output mismatch, no hardware indication"
                )
                self.logbook.record(end_s, "sdc", note, benchmark)
            elif failure.kind is OutcomeKind.APP_CRASH:
                self.logbook.record(
                    failure.time_s + self.response_timeout_s,
                    "appcrash",
                    "response timeout; restart succeeded (Linux alive)",
                    benchmark,
                )
                self.logbook.record(
                    failure.time_s + self.response_timeout_s,
                    "reset",
                    "application restarted",
                    benchmark,
                )
                recovery += self.app_restart_s
            else:  # SYS_CRASH
                self.logbook.record(
                    failure.time_s + self.response_timeout_s,
                    "syscrash",
                    "board unreachable; power cycling",
                    benchmark,
                )
                self.logbook.record(
                    failure.time_s + self.response_timeout_s,
                    "powercycle",
                    "board power cycled and rebooted",
                    benchmark,
                )
                self.chip.power_cycle()
                recovery += self.power_cycle_s
        return recovery
