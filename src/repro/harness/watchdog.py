"""Watchdog timeout-policy calibration.

The Control-PC classifies crashes through *response timeouts* (Section
3.6): wait too briefly and a slow-but-alive run is misdeclared a crash
(a false alarm that also power-cycles the board and wastes beam time);
wait too long and every real crash burns dead minutes of fluence.  This
module picks the timeout from the run-duration distribution:

    timeout = quantile_(1-alpha)(runtime) + margin

with the expected beam-time cost of both failure modes made explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class WatchdogPolicy:
    """A chosen response timeout and its expected costs.

    Attributes
    ----------
    timeout_s:
        The response timeout.
    false_alarm_probability:
        P(a healthy run exceeds the timeout).
    mean_detection_delay_s:
        Dead time per real crash (the timeout itself: nothing arrives
        after a crash, so detection always takes the full wait).
    """

    timeout_s: float
    false_alarm_probability: float
    mean_detection_delay_s: float

    def beam_cost_per_hour_s(
        self,
        runs_per_hour: float,
        crashes_per_hour: float,
        power_cycle_s: float = 120.0,
    ) -> float:
        """Expected beam seconds lost per hour to this policy.

        False alarms cost a needless power cycle each; real crashes
        cost the detection delay.
        """
        if runs_per_hour < 0 or crashes_per_hour < 0:
            raise ConfigurationError("rates must be nonnegative")
        false_alarms = runs_per_hour * self.false_alarm_probability
        return (
            false_alarms * power_cycle_s
            + crashes_per_hour * self.mean_detection_delay_s
        )


def calibrate_watchdog(
    run_durations_s: Sequence[float],
    false_alarm_target: float = 1e-4,
    margin_s: float = 5.0,
) -> WatchdogPolicy:
    """Choose a timeout from observed fault-free run durations.

    Parameters
    ----------
    run_durations_s:
        Fault-free runtimes (from characterization runs).
    false_alarm_target:
        Acceptable P(healthy run flagged); the timeout is set at the
        matching upper quantile of the empirical distribution.
    margin_s:
        Additional safety margin on top of the quantile.
    """
    durations = np.asarray(list(run_durations_s), dtype=float)
    if durations.size < 10:
        raise ConfigurationError("need at least 10 observed runs")
    if np.any(durations <= 0):
        raise ConfigurationError("durations must be positive")
    if not 0 < false_alarm_target < 1:
        raise ConfigurationError("false-alarm target must be in (0, 1)")
    if margin_s < 0:
        raise ConfigurationError("margin must be nonnegative")
    quantile = float(np.quantile(durations, 1.0 - false_alarm_target))
    timeout = quantile + margin_s
    observed_false = float(np.mean(durations > timeout))
    return WatchdogPolicy(
        timeout_s=timeout,
        false_alarm_probability=observed_false,
        mean_detection_delay_s=timeout,
    )


def compare_policies(
    run_durations_s: Sequence[float],
    timeouts_s: Sequence[float],
    runs_per_hour: float,
    crashes_per_hour: float,
    power_cycle_s: float = 120.0,
) -> "list[tuple[float, float]]":
    """Beam-cost curve over candidate timeouts: (timeout, cost/hour)."""
    durations = np.asarray(list(run_durations_s), dtype=float)
    if durations.size == 0:
        raise ConfigurationError("need observed runs")
    out = []
    for timeout in timeouts_s:
        if timeout <= 0:
            raise ConfigurationError("timeouts must be positive")
        policy = WatchdogPolicy(
            timeout_s=float(timeout),
            false_alarm_probability=float(np.mean(durations > timeout)),
            mean_detection_delay_s=float(timeout),
        )
        out.append(
            (
                float(timeout),
                policy.beam_cost_per_hour_s(
                    runs_per_hour, crashes_per_hour, power_cycle_s
                ),
            )
        )
    return out
