"""The campaign broker: a leased, prioritized, bounded work queue.

The broker owns scheduling and nothing else.  It never runs a work
unit, never touches an RNG stream, and never decodes a session payload
-- it hands out *leases* on planned units and records what came back:

* **submit** queues a planned campaign, deduping on the config hash
  (the same physics submitted twice is one submission) and refusing --
  with the typed :class:`~repro.errors.SchedulerBusy` -- when the
  bounded queue is full;
* **lease** pops the highest-priority pending units, stamping each
  with a worker id, a monotonically-versioned token and a deadline;
  :meth:`heartbeat` extends a live lease, :meth:`expire` returns
  overdue ones to the queue (the dead-worker pickup path);
* **complete** settles a unit exactly once: duplicate completions --
  an expired worker finishing late, two brokers racing on a shared
  directory -- are detected (in-memory by status, cross-process by the
  store's exclusive commit) and discarded;
* **cancel** drops a submission's pending units and marks it so its
  results are never assembled.

With a :class:`~repro.scheduler.store.DirectoryStore` attached, every
commit also lands as an exclusive file in the shared directory and
every lease is published there, so a *second broker process* pointed at
the same directory recovers committed units instantly and takes over
expired leases -- multi-host scheduling over a shared filesystem, with
correctness resting only on the commit's exclusivity plus the fencing
epoch.  A store-backed broker registers a fencing epoch at
construction and stamps it on every lease and commit; when a write is
rejected with :class:`~repro.errors.StaleFencingToken` (this broker was
superseded on that unit), the broker adopts the winning commit if one
exists, re-queues the unit otherwise, and re-registers for a fresh
epoch so it keeps participating -- the stale write itself is never
adopted.

Determinism contract: scheduling decides *when and where* a unit runs,
never *what it computes* -- units derive their streams from
``(seed, label)`` alone, so any lease/expire/re-lease/complete
interleaving that settles every unit yields byte-identical merged
results.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..engine.executor import WorkUnit
from ..errors import (
    LeaseError,
    SchedulerBusy,
    SchedulerError,
    StaleFencingToken,
)
from ..telemetry import NULL_TELEMETRY
from .planner import CampaignPlan, PlannedUnit
from .store import DirectoryStore

#: Unit lifecycle states.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Default lease time-to-live without a heartbeat, in seconds.
DEFAULT_LEASE_TTL_S = 30.0


@dataclass(frozen=True)
class Lease:
    """One worker's time-bounded claim on one unit."""

    unit_id: str
    label: str
    seq: int
    submission_id: str
    worker: str
    token: int
    deadline: float
    unit: WorkUnit


@dataclass
class _UnitRecord:
    """Broker-side bookkeeping for one planned unit."""

    planned: PlannedUnit
    submission_id: str
    priority: int
    sub_seq: int
    status: str = PENDING
    token: int = 0
    worker: Optional[str] = None
    deadline: Optional[float] = None
    result: Any = None
    payload: Optional[dict] = None
    error: Optional[str] = None


@dataclass
class Submission:
    """One accepted campaign submission."""

    submission_id: str
    name: str
    config_hash: str
    priority: int
    sub_seq: int
    plan: CampaignPlan
    cancelled: bool = False
    deduped: int = 0
    max_workers: Optional[int] = None

    def to_dict(self, unit_states: Dict[str, int]) -> dict:
        return {
            "submission_id": self.submission_id,
            "name": self.name,
            "config_hash": self.config_hash,
            "priority": self.priority,
            "cancelled": self.cancelled,
            "deduped": self.deduped,
            "max_workers": self.max_workers,
            "units": unit_states,
        }


class Broker:
    """The work-queue owner (see module docstring).

    Parameters
    ----------
    capacity:
        Maximum *queued* (pending) units across submissions; ``None``
        is unbounded (the in-process ``Campaign.run()`` shim).  A
        submission that would overflow is rejected whole with
        :class:`~repro.errors.SchedulerBusy` -- never partially queued.
    lease_ttl_s:
        Seconds a lease stays live without a heartbeat.
    clock:
        Monotonic clock for lease deadlines (injectable in tests).
    store:
        Optional shared-directory state for multi-broker operation.
    telemetry:
        Metrics sink (``scheduler.*`` counters and gauges).
    broker_id:
        This broker's identity in published leases and journals.
    journal:
        Optional :class:`~repro.resilient.EventJournal`; every
        submit/lease/expire/complete/fail/cancel event is appended.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
        clock: Callable[[], float] = time.monotonic,
        store: Optional[DirectoryStore] = None,
        telemetry=None,
        broker_id: str = "broker-local",
        journal=None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SchedulerError("broker capacity must be positive")
        if lease_ttl_s <= 0:
            raise SchedulerError("lease ttl must be positive")
        self.capacity = capacity
        self.lease_ttl_s = float(lease_ttl_s)
        self.clock = clock
        self.store = store
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.broker_id = broker_id
        self.journal = journal
        # A store-backed broker fences every write with its epoch; the
        # registration itself is the broker "joining" the shared root.
        self.epoch: Optional[int] = (
            store.register_epoch(broker_id) if store is not None else None
        )
        self._submissions: Dict[str, Submission] = {}
        self._units: Dict[str, _UnitRecord] = {}
        self._heap: List[tuple] = []
        self._sub_seq = 0
        self._token = 0
        # Incrementally-maintained state counts: settling a unit used
        # to rescan every record (O(n) per completion, O(n^2) per
        # drain), which dominated the drain overhead at scale.
        self._pending_units = 0
        self._inflight_units = 0
        # Leased units per submission, for --max-workers quotas.
        self._inflight_by_sub: Dict[str, int] = {}

    # -- bookkeeping helpers -----------------------------------------------------

    def _record_event(self, event: str, **fields: object) -> None:
        if self.journal is not None:
            self.journal.append(
                dict(
                    fields,
                    kind="event",
                    event=event,
                    broker=self.broker_id,
                    t_unix=time.time(),
                )
            )

    def _push(self, record: _UnitRecord) -> None:
        heapq.heappush(
            self._heap,
            (
                -record.priority,
                record.sub_seq,
                record.planned.seq,
                record.planned.unit_id,
            ),
        )

    def _set_status(self, record: _UnitRecord, status: str) -> None:
        """Transition a record, keeping the state counters exact."""
        old = record.status
        if old == status:
            return
        sid = record.submission_id
        if old == PENDING:
            self._pending_units -= 1
        elif old == LEASED:
            self._inflight_units -= 1
            self._inflight_by_sub[sid] = self._inflight_by_sub.get(sid, 1) - 1
        if status == PENDING:
            self._pending_units += 1
        elif status == LEASED:
            self._inflight_units += 1
            self._inflight_by_sub[sid] = self._inflight_by_sub.get(sid, 0) + 1
        record.status = status

    def _refence(self) -> None:
        """Recover from a fencing rejection: take a fresh, higher epoch.

        The rejected write is gone for good -- re-registering only lets
        this broker keep participating with writes that are no longer
        stale.
        """
        self.telemetry.count("scheduler.fenced")
        if self.store is not None:
            self.epoch = self.store.register_epoch(self.broker_id)

    def _requeue_record(self, record: _UnitRecord, reason: str) -> None:
        """Return a leased unit to the queue (fencing/commit fallout)."""
        self._set_status(record, PENDING)
        record.worker = None
        record.deadline = None
        self._push(record)
        self.telemetry.count("scheduler.requeued")
        self._record_event(
            "requeue", unit=record.planned.unit_id, error=reason
        )

    def _update_gauges(self) -> None:
        self.telemetry.set_gauge(
            "scheduler.queue_depth", self._pending_units
        )
        self.telemetry.set_gauge(
            "scheduler.inflight", self._inflight_units
        )

    def pending_count(self) -> int:
        return self._pending_units

    # -- submission --------------------------------------------------------------

    def submit(
        self, plan: CampaignPlan, priority: Optional[int] = None
    ) -> Submission:
        """Queue a planned campaign; dedupe, bound, and journal it."""
        sid = plan.submission_id
        existing = self._submissions.get(sid)
        if existing is not None:
            existing.deduped += 1
            self.telemetry.count("scheduler.deduped")
            self._record_event("dedupe", submission=sid)
            return existing
        effective_priority = (
            priority if priority is not None else plan.priority
        )
        recovered = {}
        if self.store is not None:
            for planned in plan.units:
                payload = self.store.read_commit(planned.unit_id)
                if payload is not None:
                    recovered[planned.unit_id] = payload
        to_queue = len(plan.units) - len(recovered)
        if (
            self.capacity is not None
            and self.pending_count() + to_queue > self.capacity
        ):
            self.telemetry.count("scheduler.rejected")
            self._record_event(
                "reject", submission=sid, queued=self.pending_count()
            )
            raise SchedulerBusy(
                f"queue is full ({self.pending_count()} unit(s) pending, "
                f"capacity {self.capacity}): submission {sid} needs "
                f"{to_queue} more; retry once the queue drains"
            )
        submission = Submission(
            submission_id=sid,
            name=plan.display_name,
            config_hash=plan.config_hash,
            priority=effective_priority,
            sub_seq=self._sub_seq,
            plan=plan,
            max_workers=plan.max_workers,
        )
        self._sub_seq += 1
        self._submissions[sid] = submission
        for planned in plan.units:
            record = _UnitRecord(
                planned=planned,
                submission_id=sid,
                priority=effective_priority,
                sub_seq=submission.sub_seq,
            )
            self._units[planned.unit_id] = record
            self._pending_units += 1
            if planned.unit_id in recovered:
                self._set_status(record, DONE)
                record.payload = recovered[planned.unit_id]
                self.telemetry.count("scheduler.recovered")
            else:
                self._push(record)
        self.telemetry.count("scheduler.submissions")
        self.telemetry.count("scheduler.submitted", n=to_queue)
        self._record_event(
            "submit",
            submission=sid,
            name=submission.name,
            priority=effective_priority,
            units=len(plan.units),
            recovered=len(recovered),
        )
        self._update_gauges()
        return submission

    def mark_recovered(self, unit_id: str, payload: Optional[dict]) -> None:
        """Settle a unit from prior persisted state (journal resume)."""
        record = self._require_unit(unit_id)
        if record.status == DONE:
            return
        self._set_status(record, DONE)
        record.payload = payload
        self.telemetry.count("scheduler.recovered")
        self._record_event("recover", unit=unit_id)
        self._update_gauges()

    # -- leasing -----------------------------------------------------------------

    def lease(
        self,
        worker: str,
        limit: Optional[int] = 1,
        now: Optional[float] = None,
    ) -> List[Lease]:
        """Claim up to *limit* pending units in priority order."""
        now = self.clock() if now is None else now
        self.expire(now)
        leases: List[Lease] = []
        skipped: List[_UnitRecord] = []
        while self._heap and (limit is None or len(leases) < limit):
            _, _, _, unit_id = heapq.heappop(self._heap)
            record = self._units.get(unit_id)
            if record is None or record.status != PENDING:
                continue  # lazily dropped (settled, cancelled, re-queued)
            if self._quota_saturated(record.submission_id):
                skipped.append(record)
                self.telemetry.count("scheduler.quota_deferred")
                continue
            if self.store is not None and self.store.foreign_lease_live(
                unit_id, self.broker_id
            ):
                skipped.append(record)
                continue
            self._token += 1
            self._set_status(record, LEASED)
            record.token = self._token
            record.worker = worker
            record.deadline = now + self.lease_ttl_s
            if self.store is not None and not self._publish_lease(record):
                continue  # fenced twice; the unit went back to the queue
            self.telemetry.count("scheduler.leased")
            self._record_event(
                "lease", unit=unit_id, worker=worker, token=record.token
            )
            leases.append(
                Lease(
                    unit_id=unit_id,
                    label=record.planned.label,
                    seq=record.planned.seq,
                    submission_id=record.submission_id,
                    worker=worker,
                    token=record.token,
                    deadline=record.deadline,
                    unit=record.planned.unit,
                )
            )
        for record in skipped:
            self._push(record)
        self._update_gauges()
        return leases

    def _quota_saturated(self, submission_id: str) -> bool:
        """True when the submission's --max-workers quota is in use."""
        submission = self._submissions.get(submission_id)
        if submission is None or submission.max_workers is None:
            return False
        return (
            self._inflight_by_sub.get(submission_id, 0)
            >= submission.max_workers
        )

    def _publish_lease(self, record: _UnitRecord) -> bool:
        """Publish a fresh lease to the store; False when fenced twice.

        A fencing rejection here means another broker holds the unit at
        a higher epoch *or* this incarnation was superseded; after
        re-registering, one retry distinguishes the two.  A second
        rejection is a genuinely foreign hold -- the unit goes back to
        the queue.
        """
        unit_id = record.planned.unit_id
        for attempt in (0, 1):
            try:
                self.store.write_lease(
                    unit_id, self.broker_id, self.lease_ttl_s,
                    epoch=self.epoch,
                )
                return True
            except StaleFencingToken:
                self._refence()
                self._record_event("fenced", unit=unit_id, op="lease")
        self._requeue_record(record, "fenced while publishing lease")
        return False

    def heartbeat(self, lease: Lease, now: Optional[float] = None) -> Lease:
        """Extend a live lease; raises LeaseError when it is stale.

        A store-backed heartbeat that is *fenced* (another broker took
        the unit over at a higher epoch) re-queues the unit and raises
        LeaseError: to the worker loop a fenced lease and a stale lease
        are the same event -- stop working on this unit.
        """
        record = self._require_unit(lease.unit_id)
        if record.status != LEASED or record.token != lease.token:
            raise LeaseError(
                f"lease on {lease.unit_id!r} (token {lease.token}) is no "
                f"longer live (unit is {record.status})"
            )
        now = self.clock() if now is None else now
        record.deadline = now + self.lease_ttl_s
        if self.store is not None:
            try:
                self.store.write_lease(
                    lease.unit_id, self.broker_id, self.lease_ttl_s,
                    epoch=self.epoch,
                )
            except StaleFencingToken as exc:
                self._refence()
                self._record_event(
                    "fenced", unit=lease.unit_id, op="heartbeat"
                )
                self._requeue_record(record, "fenced during heartbeat")
                self._update_gauges()
                raise LeaseError(
                    f"lease on {lease.unit_id!r} was fenced: {exc}"
                ) from exc
        self.telemetry.count("scheduler.heartbeats")
        return replace(lease, deadline=record.deadline)

    def expire(self, now: Optional[float] = None) -> List[str]:
        """Return overdue leases to the queue; list the expired ids."""
        now = self.clock() if now is None else now
        expired: List[str] = []
        if not self._inflight_units:
            return expired  # nothing leased, skip the full scan
        for record in self._units.values():
            if (
                record.status == LEASED
                and record.deadline is not None
                and record.deadline <= now
            ):
                self._set_status(record, PENDING)
                record.worker = None
                record.deadline = None
                self._push(record)
                expired.append(record.planned.unit_id)
                self.telemetry.count("scheduler.lease_expired")
                self._record_event("expire", unit=record.planned.unit_id)
        if expired:
            self._update_gauges()
        return expired

    # -- settlement --------------------------------------------------------------

    def complete(
        self, lease: Lease, result: Any, payload: Optional[dict] = None
    ) -> bool:
        """Settle a unit with its result; False for discarded duplicates.

        Exactly-once: the first completion (in-memory) or the first
        exclusive store commit (shared directory) wins; every later
        completion of the same unit -- stale lease, racing broker --
        returns False and changes nothing.  A completion from an
        *expired but not yet re-leased* lease is accepted: the result
        is a pure function of the unit, so discarding it would only
        redo identical work.
        """
        record = self._require_unit(lease.unit_id)
        if record.status == DONE:
            self.telemetry.count("scheduler.duplicates")
            self._record_event(
                "duplicate", unit=lease.unit_id, worker=lease.worker
            )
            return False
        if record.status == CANCELLED:
            return False
        if self.store is not None:
            if payload is None:
                raise SchedulerError(
                    "a store-backed broker needs the encoded payload to "
                    "commit (got payload=None)"
                )
            if not self._commit_to_store(record, lease, payload):
                return False  # settled inside: adopted or re-queued
        self._set_status(record, DONE)
        record.result = result
        record.payload = payload
        record.worker = None
        record.deadline = None
        self._clear_own_lease(lease.unit_id)
        self.telemetry.count("scheduler.completed")
        self._record_event(
            "complete", unit=lease.unit_id, worker=lease.worker
        )
        self._update_gauges()
        return True

    def _adopt_commit(
        self, record: _UnitRecord, lease: Lease, payload: dict
    ) -> None:
        """Settle a lost race by adopting the verified winning payload."""
        self._set_status(record, DONE)
        record.payload = payload
        self._clear_own_lease(lease.unit_id)
        self.telemetry.count("scheduler.duplicates")
        self._record_event(
            "duplicate", unit=lease.unit_id, worker=lease.worker
        )

    def _commit_to_store(
        self, record: _UnitRecord, lease: Lease, payload: dict
    ) -> bool:
        """Drive one unit's payload through the hardened commit path.

        True means this broker's bytes won and the caller finishes the
        settlement; False means the unit was settled here instead --
        either a verified foreign commit was adopted, or (when the
        write was fenced / kept failing verification with nothing to
        adopt) the unit went back to the queue.

        The loop exists because losing the link race no longer implies
        a winner: the "winner" may have been quarantined by its own
        readback, freeing the name.  Three dry rounds -- lost the race,
        but nothing adoptable survived -- means the shared medium is
        eating every record; the unit is re-queued rather than spinning.
        """
        unit_id = lease.unit_id
        for _ in range(3):
            try:
                if self.store.try_commit(
                    unit_id, payload, epoch=self.epoch, owner=self.broker_id
                ):
                    return True
            except StaleFencingToken:
                # This broker was superseded on the unit; the stale
                # write was rejected before touching shared state.
                self._refence()
                self._record_event("fenced", unit=unit_id, op="commit")
                adopted = self.store.read_commit(unit_id)
                if adopted is not None:
                    self._adopt_commit(record, lease, adopted)
                else:
                    self._clear_own_lease(unit_id)
                    self._requeue_record(record, "fenced during commit")
                self._update_gauges()
                return False
            adopted = self.store.read_commit(unit_id)
            if adopted is not None:
                self._adopt_commit(record, lease, adopted)
                self._update_gauges()
                return False
        self._clear_own_lease(unit_id)
        self._requeue_record(record, "commit kept failing verification")
        self._update_gauges()
        return False

    def fail(
        self, lease: Lease, error: str, requeue: bool = False
    ) -> None:
        """Settle (or re-queue) a unit whose attempt failed."""
        record = self._require_unit(lease.unit_id)
        if record.status in (DONE, CANCELLED):
            return
        self.telemetry.count("scheduler.unit_failures")
        self._clear_own_lease(lease.unit_id)
        if requeue:
            self._set_status(record, PENDING)
            record.worker = None
            record.deadline = None
            self._push(record)
            self.telemetry.count("scheduler.requeued")
            self._record_event(
                "requeue", unit=lease.unit_id, error=str(error)
            )
        else:
            self._set_status(record, FAILED)
            record.error = str(error)
            self._record_event("fail", unit=lease.unit_id, error=str(error))
        self._update_gauges()

    def cancel(self, submission_id: str) -> int:
        """Cancel a submission; returns how many pending units it drops.

        Leased units finish their in-flight attempt (a lease cannot be
        revoked from under a worker), but the submission is marked so
        its results are never assembled.
        """
        submission = self._submissions.get(submission_id)
        if submission is None:
            raise SchedulerError(
                f"unknown submission {submission_id!r}; "
                f"known: {sorted(self._submissions)}"
            )
        submission.cancelled = True
        dropped = 0
        for record in self._units.values():
            if (
                record.submission_id == submission_id
                and record.status == PENDING
            ):
                self._set_status(record, CANCELLED)
                dropped += 1
        self.telemetry.count("scheduler.cancelled", n=dropped)
        self._record_event(
            "cancel", submission=submission_id, dropped=dropped
        )
        self._update_gauges()
        return dropped

    def _clear_own_lease(self, unit_id: str) -> None:
        if self.store is None:
            return
        lease = self.store.read_lease(unit_id)
        if lease is not None and lease.get("owner") == self.broker_id:
            self.store.clear_lease(unit_id)

    def _require_unit(self, unit_id: str) -> _UnitRecord:
        record = self._units.get(unit_id)
        if record is None:
            raise LeaseError(f"unknown unit {unit_id!r}")
        return record

    # -- inspection --------------------------------------------------------------

    def submission(self, submission_id: str) -> Submission:
        if submission_id not in self._submissions:
            raise SchedulerError(f"unknown submission {submission_id!r}")
        return self._submissions[submission_id]

    def submissions(self) -> List[Submission]:
        return sorted(
            self._submissions.values(), key=lambda s: s.sub_seq
        )

    def unit_status(self, unit_id: str) -> str:
        return self._require_unit(unit_id).status

    def unit_result(self, unit_id: str) -> Any:
        return self._require_unit(unit_id).result

    def unit_payload(self, unit_id: str) -> Optional[dict]:
        return self._require_unit(unit_id).payload

    def is_settled(self, submission_id: str) -> bool:
        """True when no unit of the submission can still change state."""
        units = self._submission_units(submission_id)
        return all(
            r.status in (DONE, FAILED, CANCELLED) for r in units
        )

    def is_complete(self, submission_id: str) -> bool:
        """True when every unit of the submission completed."""
        units = self._submission_units(submission_id)
        return bool(units) and all(r.status == DONE for r in units)

    def entries_for(self, submission_id: str) -> List[dict]:
        """Committed payload dicts of a submission, in plan order."""
        units = self._submission_units(submission_id)
        return [
            r.payload
            for r in sorted(units, key=lambda r: r.planned.seq)
            if r.payload is not None
        ]

    def _submission_units(self, submission_id: str) -> List[_UnitRecord]:
        self.submission(submission_id)  # raise on unknown ids
        return [
            r
            for r in self._units.values()
            if r.submission_id == submission_id
        ]

    def status(self) -> dict:
        """JSON-shaped scheduler state (the ``status.json`` payload)."""
        subs = []
        for submission in self.submissions():
            counts: Dict[str, int] = {}
            for record in self._submission_units(
                submission.submission_id
            ):
                counts[record.status] = counts.get(record.status, 0) + 1
            subs.append(submission.to_dict(counts))
        return {
            "schema": 1,
            "broker": self.broker_id,
            "capacity": self.capacity,
            "epoch": self.epoch,
            "queued_units": self.pending_count(),
            "inflight_units": self._inflight_units,
            "submissions": subs,
            "store": (
                self.store.health() if self.store is not None else None
            ),
        }

    # -- in-process drain (the Campaign.run shim's engine room) ------------------

    def drain(
        self,
        executor,
        worker: str = "in-process",
        logbook=None,
        telemetry=None,
        on_result: Optional[Callable] = None,
        batch: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Lease-and-run everything pending through one executor.

        With *on_result* the executor must support the supervised
        ``on_result(index, report, result)`` protocol; units are then
        settled (complete/fail) as each report arrives, in submission
        order, before the caller's callback runs -- so a checkpoint
        callback that raises (chaos, SIGTERM) still leaves every
        settled unit settled.  Without it, any plain
        :class:`~repro.engine.Executor` works and units settle after
        the batch returns.

        Returns results keyed by unit id.  Scheduling is span-free on
        purpose: the only span a drained campaign opens around its
        units is the executor's own ``executor.map``, keeping the
        telemetry tree of ``Campaign.run()`` identical to the
        pre-broker one.
        """
        results: Dict[str, Any] = {}
        while True:
            leases = self.lease(worker, limit=batch)
            if not leases:
                break
            units = [lease.unit for lease in leases]
            if on_result is not None:

                def _settle(index: int, report, result) -> None:
                    lease = leases[index]
                    if report.ok:
                        results[lease.unit_id] = result
                        self.complete(lease, result)
                    else:
                        self.fail(
                            lease, report.error or "quarantined"
                        )
                    on_result(index, lease, report, result)

                executor.map(
                    units,
                    logbook=logbook,
                    telemetry=telemetry,
                    on_result=_settle,
                )
            else:
                mapped = executor.map(
                    units, logbook=logbook, telemetry=telemetry
                )
                for lease, result in zip(leases, mapped):
                    results[lease.unit_id] = result
                    self.complete(lease, result)
        return results
