"""The planner: expand a campaign into an ordered list of work units.

Pure in the strictest sense -- planning touches no RNG, no clock, no
filesystem, and carries no execution state.  The same spec always plans
to the same tuple of :class:`PlannedUnit`\\ s with the same stable ids,
no matter which process (or host) plans it; that is what lets a second
broker pointed at the same results directory recognize another broker's
leases and commits by id alone.

A unit id is ``<hash12>/<label>``: the first 12 hex digits of the
campaign's stable config hash, then the session label.  The hash pins
the physics (seed, time scale, flux, injector path, the full plan
list), the label pins the session -- so ids collide exactly when the
work is byte-identical, which is precisely when collision is the
desired behaviour (dedup, exactly-once commit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.executor import WorkUnit
from .spec import CampaignSpec


@dataclass(frozen=True)
class PlannedUnit:
    """One schedulable session, with its stable identity.

    Attributes
    ----------
    unit_id:
        ``<hash12>/<label>`` -- globally stable across processes/hosts.
    label:
        The session label ("session1", ...), the key results merge
        under.
    seq:
        Position in the plan; the deterministic merge order.
    unit:
        The picklable :class:`~repro.engine.WorkUnit` payload.
    """

    unit_id: str
    label: str
    seq: int
    unit: WorkUnit


@dataclass(frozen=True)
class CampaignPlan:
    """A planned campaign: ordered units plus their shared identity.

    ``spec`` is present when the plan came from a submittable
    :class:`CampaignSpec`; plans built straight from a live
    :class:`~repro.harness.campaign.Campaign` (the ``Campaign.run()``
    shim, custom session-plan lists) carry ``spec=None``.
    """

    config_hash: str
    units: Tuple[PlannedUnit, ...]
    name: str = ""
    priority: int = 0
    spec: Optional[CampaignSpec] = None
    seed: int = 2023
    time_scale: float = 1.0
    max_workers: Optional[int] = None

    @property
    def submission_id(self) -> str:
        return f"sub-{self.config_hash[:12]}"

    @property
    def display_name(self) -> str:
        return self.name or self.submission_id

    def labels(self) -> List[str]:
        return [unit.label for unit in self.units]


def plan_units(
    session_plans: Sequence,
    seed: int,
    config_hash: str,
    vectorized: bool = True,
    with_metrics: bool = False,
    tech_node: Optional[str] = None,
) -> Tuple[PlannedUnit, ...]:
    """Expand prepared session plans into ordered planned units.

    *session_plans* must already be time-scaled/flux-resolved/
    node-scaled (the campaign's plan preparation owns that); this
    function only wraps each one in a picklable work unit and stamps
    the stable id.  *tech_node* rides along only when non-default, so
    default-plan unit payloads pickle byte-identically to pre-scaling
    plans.
    """
    from ..harness.campaign import _fly_session

    prefix = config_hash[:12]
    kwargs = {
        "vectorized": vectorized,
        "with_metrics": with_metrics,
    }
    if tech_node:
        kwargs["tech_node"] = tech_node
    return tuple(
        PlannedUnit(
            unit_id=f"{prefix}/{plan.label}",
            label=plan.label,
            seq=seq,
            unit=WorkUnit(
                key=plan.label,
                fn=_fly_session,
                args=(plan, seed),
                kwargs=dict(kwargs),
            ),
        )
        for seq, plan in enumerate(session_plans)
    )


def plan_campaign(
    spec: CampaignSpec, with_metrics: bool = False
) -> CampaignPlan:
    """Plan one spec: the ordered, stable-id unit list the broker queues."""
    campaign = spec.campaign()
    config_hash = campaign.config_hash()
    return CampaignPlan(
        config_hash=config_hash,
        units=plan_units(
            campaign.plans,
            seed=spec.seed,
            config_hash=config_hash,
            vectorized=spec.vectorized,
            with_metrics=with_metrics,
            tech_node=campaign.tech_node,
        ),
        name=spec.name,
        priority=spec.priority,
        spec=spec,
        seed=spec.seed,
        time_scale=spec.time_scale,
        max_workers=spec.max_workers,
    )
