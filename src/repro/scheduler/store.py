"""Shared-directory scheduler state: fenced, checksummed, self-healing.

Two broker processes (possibly on two hosts mounting one results
directory) coordinate through plain files.  The original contract --
commits are exclusive and atomic, leases are advisory -- assumed a
well-behaved POSIX filesystem.  Real campaign roots are network mounts
where three things go wrong, and this store survives each one:

* **A stale broker can win a link race.**  Every broker registers a
  monotonically increasing *fencing epoch* (:mod:`.fencing`) and stamps
  it on every lease and commit; a write whose epoch has been superseded
  on that unit is rejected with the typed
  :class:`~repro.errors.StaleFencingToken` before it touches shared
  state.  ``try_commit`` additionally verifies its own write *after*
  linking (a unique writer token in the record header), so an NFS
  "ghost success" -- the link reports victory while another writer's
  bytes survive -- is detected and demoted to an adoption.
* **A torn or bit-flipped commit file would be adopted as truth.**
  Commit records are self-describing (format version, payload sha256,
  byte length, fencing epoch, writer token); every read re-verifies the
  checksum.  A record that fails verification is moved to
  ``quarantine/`` next to a machine-readable reason file, the read
  reports "not committed" so the unit is re-planned, and
  ``scheduler.store.quarantined`` counts the event -- corruption
  becomes recoverable and observable instead of silent.
* **Transient I/O errors (EIO/ESTALE/EAGAIN) abort the drain.**  Every
  primitive (read/write/link/replace) runs inside a bounded,
  deterministic retry envelope (:mod:`.retry`); an exhausted budget
  degrades to the typed :class:`~repro.errors.StoreUnavailable`.

Leases remain advisory, but their *liveness* is now judged on the
observer's monotonic clock: a foreign lease counts as live while its
fingerprint (owner, refresh counter, deadline) keeps changing, and
expires once it has been observed unchanged for its TTL -- so an NTP
step on the shared root can neither mass-expire nor immortalize leases.
The wall-clock deadline persisted in the lease file is kept for human
inspection and as the first-sight hint only.

Correctness still never rests on leases -- only on the commit's
exclusivity plus the fencing epoch.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import StaleFencingToken
from ..telemetry import NULL_TELEMETRY
from .fencing import FencingRegistry
from .retry import RetryPolicy

#: Subdirectories of the scheduler state root.
COMMITS_DIR = "commits"
LEASES_DIR = "leases"
QUARANTINE_DIR = "quarantine"

#: Commit record format written (and required) by this store version.
#: Format 1 was a bare payload dict with no header; anything that is
#: not a verifiable format-2 record is quarantined on read.
COMMIT_FORMAT = 2


def _fs_name(unit_id: str) -> str:
    """A unit id as a safe filename (ids contain one '/')."""
    return unit_id.replace("/", "__")


def _unit_id(fs_name: str) -> str:
    return fs_name.replace("__", "/", 1)


class _CorruptCommit(Exception):
    """Internal: a commit record failed verification (reason + detail)."""

    def __init__(self, reason: str, detail: str) -> None:
        super().__init__(f"{reason}: {detail}")
        self.reason = reason
        self.detail = detail


def encode_commit(
    payload: dict, epoch: Optional[int], writer: str
) -> bytes:
    """Serialize *payload* as a self-describing format-2 commit record.

    The checksum and length cover the payload's canonical re-encoding
    (insertion-order JSON, the same bytes assembly re-emits), so a
    verified record guarantees byte-identical adopted results.
    """
    body = json.dumps(payload).encode("utf-8")
    record = {
        "format": COMMIT_FORMAT,
        "sha256": hashlib.sha256(body).hexdigest(),
        "length": len(body),
        "epoch": epoch,
        "writer": writer,
        "payload": payload,
    }
    return json.dumps(record).encode("utf-8")


def decode_commit(raw: bytes) -> dict:
    """Parse and verify a commit record; raises :class:`_CorruptCommit`."""
    try:
        record = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise _CorruptCommit("decode-error", str(exc)) from exc
    if not isinstance(record, dict) or record.get("format") != COMMIT_FORMAT:
        raise _CorruptCommit(
            "bad-format",
            f"expected a format-{COMMIT_FORMAT} record, got "
            f"{record.get('format') if isinstance(record, dict) else type(record).__name__!r}",
        )
    body = json.dumps(record.get("payload")).encode("utf-8")
    if len(body) != record.get("length"):
        raise _CorruptCommit(
            "length-mismatch",
            f"payload re-encodes to {len(body)} byte(s), header says "
            f"{record.get('length')!r}",
        )
    digest = hashlib.sha256(body).hexdigest()
    if digest != record.get("sha256"):
        raise _CorruptCommit(
            "checksum-mismatch",
            f"payload sha256 {digest} != header {record.get('sha256')!r}",
        )
    return record


class DirectoryStore:
    """Lease/commit state shared by every broker on one directory.

    Parameters
    ----------
    root:
        The scheduler state directory (conventionally
        ``<service root>/scheduler``).  Created on first use.
    clock:
        Wall-clock source for the *advisory* timestamps persisted in
        lease files and quarantine reasons (``time.time``).
    mono_clock:
        Monotonic clock used to judge foreign-lease liveness by
        observation.  Defaults to the injected ``clock`` when one was
        given (so fake-clock tests drive both), else ``time.monotonic``.
    telemetry:
        Metrics sink for the ``scheduler.store.*`` counters.
    retry:
        The transient-I/O retry budget (:class:`~.retry.RetryPolicy`).
    sleep:
        Backoff sleeper, injectable so chaos tests run at full speed.
    """

    def __init__(
        self,
        root: str,
        clock: Optional[Callable[[], float]] = None,
        mono_clock: Optional[Callable[[], float]] = None,
        telemetry=None,
        retry: Optional[RetryPolicy] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.root = root
        self.clock = clock or time.time
        self.mono_clock = mono_clock or clock or time.monotonic
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep or time.sleep
        self._commits = os.path.join(root, COMMITS_DIR)
        self._leases = os.path.join(root, LEASES_DIR)
        self._quarantine = os.path.join(root, QUARANTINE_DIR)
        os.makedirs(self._commits, exist_ok=True)
        os.makedirs(self._leases, exist_ok=True)
        os.makedirs(self._quarantine, exist_ok=True)
        self.fencing = FencingRegistry(root, clock=self.clock)
        #: In-process observability (also mirrored to telemetry).
        self.counters: Dict[str, int] = {
            "commits": 0,
            "retries": 0,
            "quarantined": 0,
            "fenced": 0,
        }
        self._writer_seq = 0
        self._lease_seq: Dict[str, int] = {}
        #: unit_id -> (lease fingerprint, first-seen monotonic time).
        self._observations: Dict[str, Tuple[tuple, float]] = {}

    # -- raw I/O primitives (overridden by the chaos wrapper) --------------------

    def _write_bytes(self, path: str, data: bytes) -> None:
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def _read_bytes(self, path: str) -> bytes:
        with open(path, "rb") as handle:
            return handle.read()

    def _link(self, src: str, dst: str) -> None:
        os.link(src, dst)

    def _replace(self, src: str, dst: str) -> None:
        os.replace(src, dst)

    def _retry_op(self, op: str, fn):
        return self.retry.run(
            op, fn, sleep=self._sleep, on_retry=self._note_retry
        )

    def _note_retry(self, op: str) -> None:
        self.counters["retries"] += 1
        self.telemetry.count("scheduler.store.retries")

    # -- fencing -----------------------------------------------------------------

    def register_epoch(self, broker_id: str) -> int:
        """Issue this broker its fencing epoch (monotonic per root)."""
        return self.fencing.register(broker_id)

    def check_fence(
        self, unit_id: str, epoch: Optional[int], owner: Optional[str]
    ) -> None:
        """Reject a write stamped with a superseded epoch.

        A write is stale when the unit's current lease carries a higher
        epoch (another broker took the unit over), or when the writer's
        own identity has re-registered at a higher epoch (a newer
        incarnation of the same broker).  Unfenced writes
        (``epoch=None``, e.g. direct store use in tools) always pass --
        they fall back to plain link exclusivity.
        """
        if epoch is None:
            return
        lease = self.read_lease(unit_id)
        if lease is not None:
            holder_epoch = lease.get("epoch")
            if isinstance(holder_epoch, int) and holder_epoch > epoch:
                self._note_fenced()
                raise StaleFencingToken(
                    f"write to unit {unit_id!r} carries epoch {epoch}, but "
                    f"the unit's lease is held at epoch {holder_epoch} by "
                    f"{lease.get('owner')!r}; re-register for a fresh epoch"
                )
        if owner is not None:
            latest = self.fencing.latest_for(owner)
            if latest is not None and latest > epoch:
                self._note_fenced()
                raise StaleFencingToken(
                    f"broker {owner!r} writes with epoch {epoch} but has "
                    f"re-registered at epoch {latest}; this incarnation is "
                    f"superseded"
                )

    def _note_fenced(self) -> None:
        self.counters["fenced"] += 1
        self.telemetry.count("scheduler.store.fenced")

    # -- commits (the exactly-once boundary) -------------------------------------

    def _commit_path(self, unit_id: str) -> str:
        return os.path.join(self._commits, f"{_fs_name(unit_id)}.json")

    def try_commit(
        self,
        unit_id: str,
        payload: dict,
        epoch: Optional[int] = None,
        owner: Optional[str] = None,
    ) -> bool:
        """Commit *payload* for *unit_id*; False if another writer won.

        The record is fully written and fsynced to a temp file first,
        then hard-linked into place, then *read back and verified*: the
        unique writer token proves this writer's bytes are the ones
        that survived.  A readback holding someone else's valid record
        is a lost race (ghost link success) and returns False; a
        readback that fails verification (our own write was torn, or
        the medium corrupted it) is quarantined and also returns False
        -- the name is free again, so the unit can be re-committed.

        Payload keys keep their insertion order (no ``sort_keys``),
        matching the checkpoint journal: results assembled from
        *adopted* commit payloads must re-encode to the same bytes a
        plain run writes.

        Raises :class:`~repro.errors.StaleFencingToken` when *epoch*
        has been superseded for this unit or owner.
        """
        self.check_fence(unit_id, epoch, owner)
        self._writer_seq += 1
        writer = f"{owner or 'anon'}:{os.getpid()}:{self._writer_seq}"
        data = encode_commit(payload, epoch, writer)
        final = self._commit_path(unit_id)
        tmp = f"{final}.tmp-{os.getpid()}"
        self._retry_op("write_commit", lambda: self._write_bytes(tmp, data))
        try:
            self._retry_op("link_commit", lambda: self._link(tmp, final))
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
        won = self._verify_own_write(unit_id, final, writer)
        if won:
            self.counters["commits"] += 1
            self.telemetry.count("scheduler.store.commits")
        return won

    def _verify_own_write(
        self, unit_id: str, final: str, writer: str
    ) -> bool:
        """Read back a just-linked commit and confirm our bytes survived."""
        raw: Optional[bytes] = None
        delays = list(self.retry.delays()) + [None]
        for delay in delays:
            try:
                raw = self._retry_op(
                    "verify_commit", lambda: self._read_bytes(final)
                )
                break
            except FileNotFoundError:
                # Our own link succeeded but the name is not visible yet
                # (stale read cache).  Within the budget, wait it out;
                # past it, trust the link -- os.link reported success
                # and a later reader will see (and verify) the record.
                if delay is None:
                    return True
                self._note_retry("verify_commit")
                self._sleep(delay)
        try:
            record = decode_commit(raw if raw is not None else b"")
        except _CorruptCommit as exc:
            self.quarantine_commit(unit_id, exc.reason, exc.detail)
            return False
        return record.get("writer") == writer

    def read_commit(self, unit_id: str) -> Optional[dict]:
        """The verified committed payload for *unit_id*, or None.

        A record that fails verification is quarantined (with a
        machine-readable reason file) and reported as absent, so the
        caller re-plans the unit instead of adopting corruption.
        """
        record = self.read_commit_record(unit_id)
        return None if record is None else record["payload"]

    def read_commit_record(self, unit_id: str) -> Optional[dict]:
        """The full verified commit record (header + payload), or None."""
        try:
            raw = self._retry_op(
                "read_commit",
                lambda: self._read_bytes(self._commit_path(unit_id)),
            )
        except FileNotFoundError:
            return None
        try:
            return decode_commit(raw)
        except _CorruptCommit as exc:
            self.quarantine_commit(unit_id, exc.reason, exc.detail)
            return None

    def committed_units(self) -> Set[str]:
        """Ids of every committed unit in the directory."""
        return {
            _unit_id(name[: -len(".json")])
            for name in os.listdir(self._commits)
            if name.endswith(".json")
        }

    # -- quarantine --------------------------------------------------------------

    def quarantine_commit(
        self, unit_id: str, reason: str, detail: str = ""
    ) -> Optional[str]:
        """Move a unit's corrupt commit record into ``quarantine/``.

        The record lands next to ``<name>.reason.json`` naming the
        verification failure; the commit name is freed so the re-planned
        unit can commit again.  Deliberately uses direct I/O (no retry
        envelope, no chaos hooks): the recovery path must not itself be
        a fault-injection target.  Returns the quarantined record path,
        or None when the record vanished first (racing quarantines).
        """
        base = os.path.join(self._quarantine, _fs_name(unit_id))
        dest = f"{base}.json"
        n = 0
        while os.path.exists(dest):
            n += 1
            dest = f"{base}.{n}.json"
        moved: Optional[str] = dest
        try:
            os.replace(self._commit_path(unit_id), dest)
        except FileNotFoundError:
            moved = None
        reason_record = {
            "schema": 1,
            "unit_id": unit_id,
            "reason": reason,
            "detail": detail,
            "record": os.path.basename(dest) if moved else None,
            "quarantined_unix": self.clock(),
        }
        reason_path = f"{dest[: -len('.json')]}.reason.json"
        tmp = f"{reason_path}.tmp-{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(reason_record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, reason_path)
        self.counters["quarantined"] += 1
        self.telemetry.count("scheduler.store.quarantined")
        return moved

    def quarantined_units(self) -> List[dict]:
        """Parsed reason records of everything in ``quarantine/``."""
        reasons = []
        for name in sorted(os.listdir(self._quarantine)):
            if not name.endswith(".reason.json"):
                continue
            try:
                with open(os.path.join(self._quarantine, name)) as handle:
                    record = json.load(handle)
            except (json.JSONDecodeError, OSError):
                continue
            if isinstance(record, dict):
                reasons.append(record)
        return reasons

    def requeue_quarantined(self) -> List[dict]:
        """Drop every quarantine record so the units replan cleanly.

        The commit names were already freed at quarantine time, so
        "requeue" only has to clear the evidence: the reason files and
        the preserved corrupt records.  Returns the reason records that
        were cleared (the operator's receipt of what got requeued).
        Direct I/O like :meth:`quarantine_commit` -- the recovery path
        is never a fault-injection target.
        """
        requeued = self.quarantined_units()
        for record in requeued:
            preserved = record.get("record")
            if preserved:
                try:
                    os.remove(os.path.join(self._quarantine, preserved))
                except FileNotFoundError:
                    pass
        for name in os.listdir(self._quarantine):
            if name.endswith(".reason.json"):
                try:
                    os.remove(os.path.join(self._quarantine, name))
                except FileNotFoundError:
                    pass
        return requeued

    # -- leases (advisory) -------------------------------------------------------

    def _lease_path(self, unit_id: str) -> str:
        return os.path.join(self._leases, f"{_fs_name(unit_id)}.json")

    def write_lease(
        self,
        unit_id: str,
        owner: str,
        ttl_s: float,
        epoch: Optional[int] = None,
    ) -> None:
        """Publish (or refresh) this owner's lease on a unit.

        Atomic replace: other brokers read either the old lease or the
        new one, never a torn file.  ``refresh_seq`` increments on
        every write so observers can tell a refreshed lease from a
        frozen one without trusting wall clocks; ``deadline_unix`` is
        advisory (human inspection and first-sight hint only).

        Raises :class:`~repro.errors.StaleFencingToken` when *epoch*
        has been superseded for this unit or owner.
        """
        self.check_fence(unit_id, epoch, owner)
        path = self._lease_path(unit_id)
        tmp = f"{path}.tmp-{os.getpid()}"
        seq = self._lease_seq.get(unit_id, 0) + 1
        self._lease_seq[unit_id] = seq
        record = {
            "unit_id": unit_id,
            "owner": owner,
            "epoch": epoch,
            "refresh_seq": seq,
            "ttl_s": float(ttl_s),
            "deadline_unix": self.clock() + ttl_s,
        }
        data = (json.dumps(record, sort_keys=True)).encode("utf-8")
        self._retry_op("write_lease", lambda: self._write_bytes(tmp, data))
        self._retry_op("replace_lease", lambda: self._replace(tmp, path))

    def read_lease(self, unit_id: str) -> Optional[dict]:
        """The published lease for a unit, or None (torn reads -> None)."""
        try:
            raw = self._retry_op(
                "read_lease",
                lambda: self._read_bytes(self._lease_path(unit_id)),
            )
        except (FileNotFoundError, OSError):
            # A lease is advisory; an unreadable one (including a
            # retry-exhausted transient storm) is treated as absent
            # rather than wedging the scheduler.
            return None
        try:
            record = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def clear_lease(self, unit_id: str) -> None:
        """Remove a unit's lease file (idempotent)."""
        try:
            os.unlink(self._lease_path(unit_id))
        except FileNotFoundError:
            pass

    def foreign_lease_live(
        self, unit_id: str, owner: str, now: Optional[float] = None
    ) -> bool:
        """True when *another* owner holds a live lease on the unit.

        Liveness is observation-based on *this* process's monotonic
        clock: a foreign lease seen for the first time (or with a
        changed fingerprint -- the owner refreshed it) is judged by the
        advisory wall-clock deadline; one observed *unchanged* is live
        only until it has sat frozen for its TTL on our monotonic
        clock.  A live owner keeps bumping ``refresh_seq``, so its
        lease never freezes; a dead owner's lease expires after one TTL
        of observed silence regardless of what wall clocks claim --
        NTP steps can neither mass-expire nor immortalize leases we
        are already watching.
        """
        lease = self.read_lease(unit_id)
        if lease is None or lease.get("owner") == owner:
            self._observations.pop(unit_id, None)
            return False
        deadline = lease.get("deadline_unix")
        wall_now = now if now is not None else self.clock()
        wall_live = isinstance(deadline, (int, float)) and wall_now < deadline
        fingerprint = (
            lease.get("owner"),
            lease.get("refresh_seq"),
            deadline,
        )
        mono_now = self.mono_clock()
        seen = self._observations.get(unit_id)
        if seen is None or seen[0] != fingerprint:
            self._observations[unit_id] = (fingerprint, mono_now)
            return wall_live
        ttl = lease.get("ttl_s")
        if not isinstance(ttl, (int, float)) or ttl <= 0:
            return wall_live
        return (mono_now - seen[1]) < ttl

    # -- observability -----------------------------------------------------------

    def health(self) -> dict:
        """Store health for ``status.json``: epochs, quarantine, budgets."""
        return {
            "epochs": self.fencing.epochs(),
            "quarantined": len(self.quarantined_units()),
            "commits": self.counters["commits"],
            "retries": self.counters["retries"],
            "fenced": self.counters["fenced"],
        }
