"""Shared-directory scheduler state: exclusive commits, advisory leases.

Two broker processes (possibly on two hosts mounting one results
directory) coordinate through plain files, with one hard rule and one
soft one:

* **Commits are exclusive and atomic.**  A unit's completion payload is
  committed by hard-linking a fully-written temp file to
  ``commits/<unit>.json`` -- ``os.link`` fails with ``FileExistsError``
  if the name exists, so exactly one broker wins no matter how the
  leases raced.  Work units are pure functions of their arguments, so
  the *loser's* duplicate execution wasted time but nothing else; the
  merged result sees each unit exactly once.
* **Leases are advisory.**  ``leases/<unit>.json`` names an owner and a
  wall-clock deadline.  A broker skips units another broker holds a
  live lease on and takes over expired ones; because a stale lease can
  always slip through a race, correctness never rests on leases --
  only on the commit's exclusivity.

The wall clock (``time.time``) is used for lease deadlines because two
hosts share no monotonic clock; it is injectable for tests.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Set

from ..errors import ReproIOError

#: Subdirectories of the scheduler state root.
COMMITS_DIR = "commits"
LEASES_DIR = "leases"


def _fs_name(unit_id: str) -> str:
    """A unit id as a safe filename (ids contain one '/')."""
    return unit_id.replace("/", "__")


def _unit_id(fs_name: str) -> str:
    return fs_name.replace("__", "/", 1)


class DirectoryStore:
    """Lease/commit state shared by every broker on one directory.

    Parameters
    ----------
    root:
        The scheduler state directory (conventionally
        ``<service root>/scheduler``).  Created on first use.
    clock:
        Wall-clock source for lease deadlines (``time.time``).
    """

    def __init__(
        self, root: str, clock: Optional[Callable[[], float]] = None
    ) -> None:
        import time

        self.root = root
        self.clock = clock or time.time
        self._commits = os.path.join(root, COMMITS_DIR)
        self._leases = os.path.join(root, LEASES_DIR)
        os.makedirs(self._commits, exist_ok=True)
        os.makedirs(self._leases, exist_ok=True)

    # -- commits (the exactly-once boundary) -------------------------------------

    def _commit_path(self, unit_id: str) -> str:
        return os.path.join(self._commits, f"{_fs_name(unit_id)}.json")

    def try_commit(self, unit_id: str, payload: dict) -> bool:
        """Commit *payload* for *unit_id*; False if already committed.

        The payload is fully written and fsynced to a temp file first,
        then hard-linked into place -- a reader can never observe a
        partial commit, and two concurrent committers cannot both win.

        Keys keep their insertion order (no ``sort_keys``), matching
        the checkpoint journal: results assembled from *adopted* commit
        payloads must re-encode to the same bytes a plain run writes.
        """
        final = self._commit_path(unit_id)
        tmp = f"{final}.tmp-{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, final)
        except FileExistsError:
            return False
        finally:
            os.unlink(tmp)
        return True

    def read_commit(self, unit_id: str) -> Optional[dict]:
        """The committed payload for *unit_id*, or None."""
        try:
            with open(self._commit_path(unit_id)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError) as exc:
            raise ReproIOError(
                f"corrupt commit for unit {unit_id!r}: {exc}"
            ) from exc

    def committed_units(self) -> Set[str]:
        """Ids of every committed unit in the directory."""
        return {
            _unit_id(name[: -len(".json")])
            for name in os.listdir(self._commits)
            if name.endswith(".json")
        }

    # -- leases (advisory) -------------------------------------------------------

    def _lease_path(self, unit_id: str) -> str:
        return os.path.join(self._leases, f"{_fs_name(unit_id)}.json")

    def write_lease(self, unit_id: str, owner: str, ttl_s: float) -> None:
        """Publish (or refresh) this owner's lease on a unit.

        Atomic replace: other brokers read either the old lease or the
        new one, never a torn file.
        """
        path = self._lease_path(unit_id)
        tmp = f"{path}.tmp-{os.getpid()}"
        record = {
            "unit_id": unit_id,
            "owner": owner,
            "deadline_unix": self.clock() + ttl_s,
        }
        with open(tmp, "w") as handle:
            json.dump(record, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def read_lease(self, unit_id: str) -> Optional[dict]:
        """The published lease for a unit, or None (torn reads -> None)."""
        try:
            with open(self._lease_path(unit_id)) as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError):
            # A lease is advisory; an unreadable one is treated as
            # absent rather than wedging the scheduler.
            return None

    def clear_lease(self, unit_id: str) -> None:
        """Remove a unit's lease file (idempotent)."""
        try:
            os.unlink(self._lease_path(unit_id))
        except FileNotFoundError:
            pass

    def foreign_lease_live(
        self, unit_id: str, owner: str, now: Optional[float] = None
    ) -> bool:
        """True when *another* owner holds an unexpired lease on the unit."""
        lease = self.read_lease(unit_id)
        if lease is None or lease.get("owner") == owner:
            return False
        deadline = lease.get("deadline_unix")
        if not isinstance(deadline, (int, float)):
            return False
        return (now if now is not None else self.clock()) < deadline
