"""Campaign scheduling: planner, broker, and shared-directory store.

The scheduling layer lifted out of :class:`~repro.harness.campaign.Campaign`:

* :mod:`repro.scheduler.spec` -- :class:`CampaignSpec`, the JSON-shaped
  submission currency (job files, HTTP bodies, in-process submits);
* :mod:`repro.scheduler.planner` -- pure expansion of a campaign into
  ordered :class:`PlannedUnit`\\ s with stable ``<hash12>/<label>`` ids;
* :mod:`repro.scheduler.broker` -- the bounded, prioritized lease queue
  with heartbeats, expiry-based dead-worker pickup, config-hash dedupe
  and exactly-once settlement;
* :mod:`repro.scheduler.store` -- shared-directory commits (exclusive,
  via ``os.link``) and advisory leases, so two broker processes on one
  results directory cooperate instead of double-committing.

Scheduling decides *when and where* units run, never *what they
compute*: session streams derive from ``(seed, label)`` alone, so any
interleaving of lease/expire/re-lease/complete yields byte-identical
campaign results.
"""

from .broker import (
    Broker,
    CANCELLED,
    DEFAULT_LEASE_TTL_S,
    DONE,
    FAILED,
    LEASED,
    Lease,
    PENDING,
    Submission,
)
from .planner import CampaignPlan, PlannedUnit, plan_campaign, plan_units
from .spec import CampaignSpec
from .store import DirectoryStore

__all__ = [
    "Broker",
    "CampaignPlan",
    "CampaignSpec",
    "DirectoryStore",
    "Lease",
    "PlannedUnit",
    "Submission",
    "plan_campaign",
    "plan_units",
    "DEFAULT_LEASE_TTL_S",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "CANCELLED",
]
