"""Campaign scheduling: planner, broker, and shared-directory store.

The scheduling layer lifted out of :class:`~repro.harness.campaign.Campaign`:

* :mod:`repro.scheduler.spec` -- :class:`CampaignSpec`, the JSON-shaped
  submission currency (job files, HTTP bodies, in-process submits);
* :mod:`repro.scheduler.planner` -- pure expansion of a campaign into
  ordered :class:`PlannedUnit`\\ s with stable ``<hash12>/<label>`` ids;
* :mod:`repro.scheduler.broker` -- the bounded, prioritized lease queue
  with heartbeats, expiry-based dead-worker pickup, config-hash dedupe
  and exactly-once settlement;
* :mod:`repro.scheduler.store` -- shared-directory commits (exclusive
  ``os.link`` plus checksummed, fenced, versioned records), advisory
  leases, and a ``quarantine/`` for records that fail verification, so
  two broker processes on one results directory cooperate instead of
  double-committing -- even on non-POSIX-atomic network filesystems;
* :mod:`repro.scheduler.fencing` -- the append-only epoch ledger that
  issues each broker its monotonically increasing fencing token;
* :mod:`repro.scheduler.retry` -- the bounded, deterministic retry
  envelope around transient store I/O (EIO/ESTALE/EAGAIN);
* :mod:`repro.scheduler.chaos_store` -- :class:`FaultyStore`, the
  deterministic store-level fault injector (torn writes, stale reads,
  ghost link races) that characterizes all of the above.

Scheduling decides *when and where* units run, never *what they
compute*: session streams derive from ``(seed, label)`` alone, so any
interleaving of lease/expire/re-lease/complete yields byte-identical
campaign results.
"""

from .broker import (
    Broker,
    CANCELLED,
    DEFAULT_LEASE_TTL_S,
    DONE,
    FAILED,
    LEASED,
    Lease,
    PENDING,
    Submission,
)
from .chaos_store import FaultyStore, StoreChaosSpec
from .fencing import FencingRegistry
from .planner import CampaignPlan, PlannedUnit, plan_campaign, plan_units
from .retry import RetryPolicy, TRANSIENT_ERRNOS
from .spec import CampaignSpec
from .store import DirectoryStore

__all__ = [
    "Broker",
    "CampaignPlan",
    "CampaignSpec",
    "DirectoryStore",
    "FaultyStore",
    "FencingRegistry",
    "Lease",
    "PlannedUnit",
    "RetryPolicy",
    "StoreChaosSpec",
    "Submission",
    "plan_campaign",
    "plan_units",
    "DEFAULT_LEASE_TTL_S",
    "TRANSIENT_ERRNOS",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "CANCELLED",
]
