"""Campaign specs: the submission currency of the broker and service.

A :class:`CampaignSpec` is everything a campaign's physics depends on
-- seed, time scale, flux override, injector path -- plus the two
scheduling attributes the broker cares about (priority and a display
name).  It is deliberately JSON-shaped: specs arrive as job files
dropped into a watched directory, as HTTP POST bodies, or are built
in-process, and all three roads lead to the same frozen dataclass.

The spec's :meth:`config_hash` is *the* identity used everywhere:

* it equals :meth:`repro.harness.campaign.Campaign.config_hash` for the
  campaign the spec describes (the spec builds that exact campaign),
  so it also equals the hash recorded in ``manifest.json`` and pinned
  by the checkpoint journal header;
* the broker dedupes submissions on it -- submitting the same physics
  twice yields the same submission, not twice the beam time;
* it names the submission (``sub-<hash12>``) and prefixes every
  planned unit's stable id.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from ..errors import SchedulerError

#: Keys a spec dict may carry; anything else is a typo we refuse to
#: silently drop (a misspelled "time_scale" would otherwise submit a
#: full-length campaign).
_SPEC_KEYS = frozenset(
    {
        "name",
        "seed",
        "time_scale",
        "flux_per_cm2_s",
        "vectorized",
        "priority",
        "max_workers",
        "tech_node",
    }
)


@dataclass(frozen=True)
class CampaignSpec:
    """One submittable campaign configuration.

    Attributes
    ----------
    seed / time_scale / flux_per_cm2_s / vectorized:
        Exactly the knobs :class:`~repro.harness.campaign.Campaign`
        accepts; the spec always flies the Table 2 session plans.
    priority:
        Broker queueing priority (higher leases first; default 0).
        Scheduling only -- never part of the config hash, because it
        cannot change the physics.
    max_workers:
        Cap on how many pool workers this submission's leased batches
        may occupy at once (``None`` = no cap).  Scheduling only, like
        ``priority`` -- a quota cannot change the physics, so it never
        enters the config hash; one huge sweep throttled to 2 workers
        is the *same submission* as the unthrottled one.
    tech_node:
        Optional registered technology-node name.  Part of the physics
        (it moves every operating point and rate model), so it folds
        into the config hash -- but only when non-default: the 28 nm
        anchor ``"xgene2-28"`` hashes identically to an unset node, so
        pre-existing submissions and journals keep their identities.
    name:
        Display name for status output; defaults to the submission id.
    """

    seed: int = 2023
    time_scale: float = 1.0
    flux_per_cm2_s: Optional[float] = None
    vectorized: bool = True
    priority: int = 0
    max_workers: Optional[int] = None
    tech_node: Optional[str] = None
    name: str = ""
    _config_hash: Optional[str] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SchedulerError(f"spec seed must be an int, got {self.seed!r}")
        if not isinstance(self.time_scale, (int, float)) or isinstance(
            self.time_scale, bool
        ):
            raise SchedulerError(
                f"spec time_scale must be a number, got {self.time_scale!r}"
            )
        if self.time_scale <= 0:
            raise SchedulerError("spec time_scale must be positive")
        if self.flux_per_cm2_s is not None and self.flux_per_cm2_s < 0:
            raise SchedulerError("spec flux override must be nonnegative")
        if not isinstance(self.priority, int) or isinstance(
            self.priority, bool
        ):
            raise SchedulerError(
                f"spec priority must be an int, got {self.priority!r}"
            )
        if self.max_workers is not None and (
            not isinstance(self.max_workers, int)
            or isinstance(self.max_workers, bool)
            or self.max_workers < 1
        ):
            raise SchedulerError(
                f"spec max_workers must be a positive int or null, "
                f"got {self.max_workers!r}"
            )
        if self.tech_node is not None:
            if not isinstance(self.tech_node, str) or not self.tech_node:
                raise SchedulerError(
                    f"spec tech_node must be a non-empty string or null, "
                    f"got {self.tech_node!r}"
                )
            from ..errors import TechError
            from ..tech import get_node

            try:
                canonical = get_node(self.tech_node).name
            except TechError as exc:
                raise SchedulerError(str(exc)) from exc
            object.__setattr__(self, "tech_node", canonical)
        object.__setattr__(self, "time_scale", float(self.time_scale))

    # -- campaign construction ---------------------------------------------------

    def campaign(self, executor=None, telemetry=None, logbook=None):
        """The :class:`~repro.harness.campaign.Campaign` this spec describes."""
        from ..engine import ExecutionContext
        from ..harness.campaign import Campaign

        context = ExecutionContext(
            seed=self.seed,
            time_scale=self.time_scale,
            flux_per_cm2_s=self.flux_per_cm2_s,
            telemetry=telemetry,
            logbook=logbook,
        )
        return Campaign(
            context=context,
            executor=executor,
            vectorized=self.vectorized,
            tech_node=self.tech_node,
        )

    def config_hash(self) -> str:
        """The campaign's stable config hash (cached after first use).

        Computed by building the campaign and asking *it*, so spec
        identity can never drift from the hash ``manifest.json`` and
        the checkpoint journal record for the same physics.
        """
        if self._config_hash is None:
            object.__setattr__(
                self, "_config_hash", self.campaign().config_hash()
            )
        return self._config_hash

    @property
    def submission_id(self) -> str:
        """Stable submission identity: ``sub-<hash12>``."""
        return f"sub-{self.config_hash()[:12]}"

    @property
    def display_name(self) -> str:
        return self.name or self.submission_id

    # -- JSON round trip ---------------------------------------------------------

    def to_dict(self) -> dict:
        data = {
            "seed": self.seed,
            "time_scale": self.time_scale,
            "vectorized": self.vectorized,
            "priority": self.priority,
        }
        if self.flux_per_cm2_s is not None:
            data["flux_per_cm2_s"] = self.flux_per_cm2_s
        if self.max_workers is not None:
            data["max_workers"] = self.max_workers
        if self.tech_node is not None:
            data["tech_node"] = self.tech_node
        if self.name:
            data["name"] = self.name
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: object) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise SchedulerError(
                f"campaign spec must be a JSON object, got "
                f"{type(data).__name__}"
            )
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise SchedulerError(
                f"campaign spec has unknown key(s) {unknown}; "
                f"allowed: {sorted(_SPEC_KEYS)}"
            )
        try:
            return cls(
                seed=data.get("seed", 2023),
                time_scale=data.get("time_scale", 1.0),
                flux_per_cm2_s=data.get("flux_per_cm2_s"),
                vectorized=bool(data.get("vectorized", True)),
                priority=data.get("priority", 0),
                max_workers=data.get("max_workers"),
                tech_node=data.get("tech_node"),
                name=str(data.get("name", "")),
            )
        except TypeError as exc:
            raise SchedulerError(f"malformed campaign spec: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SchedulerError(
                f"campaign spec is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)
