"""Store-level chaos: deterministic fault injection into shared-store I/O.

:mod:`repro.resilient.chaos` injects faults into *work units*;
this module injects faults into the *store itself* -- the torn writes,
stale reads, ghost link successes, and transient errnos that network
filesystems produce under load -- so the hardened commit path can be
characterized the same way the paper characterizes the DUT:
deterministically, from a declarative plan.

:class:`FaultyStore` wraps any :class:`~.store.DirectoryStore` root by
overriding its raw I/O primitives.  Faults are addressed by *operation
index*: the N-th commit-path write / link / read since construction.
Only commit-path traffic is counted -- lease I/O is advisory,
self-healing, and (in the live service) wall-clock-timed, so counting
it would make fault placement nondeterministic across runs.

========  ====================================================================
fault     effect (at the listed 0-based commit-path op index)
========  ====================================================================
``torn_write``       the tmp-file write persists only the first half of
                     the record bytes (power-cut mid-write); the
                     verify-after-write readback quarantines it
``corrupt_commit``   the link succeeds, then the final file's checksum
                     header is clobbered (bit rot after commit)
``duplicate_link``   ghost success: ``link`` reports victory but the
                     surviving record names a different writer (the
                     non-POSIX-atomic double-link race); indexed by
                     link-op count
``stale_read``       a read raises ``FileNotFoundError`` once (delayed
                     visibility of a just-linked name on a stale NFS
                     cache); indexed by read-op count
``transient_errno``  the op raises ``OSError(EIO)`` once; indexed by
                     the *combined* commit-path op count, so it can
                     land on any primitive; retried by the envelope
========  ====================================================================

Because indices are consumed in a fixed order by a deterministic
drain, the same spec against the same campaign produces the same
retries, the same quarantines, and -- once the faults are survived --
byte-identical campaign results.
"""

from __future__ import annotations

import errno
import json
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ChaosError
from .store import DirectoryStore

#: The closed set of injectable store faults.
STORE_FAULT_KINDS = (
    "torn_write",
    "corrupt_commit",
    "duplicate_link",
    "stale_read",
    "transient_errno",
)


def _as_indices(kind: str, value) -> Tuple[int, ...]:
    try:
        indices = tuple(value)
    except TypeError:
        raise ChaosError(
            f"store chaos {kind!r} must be a list of op indices, "
            f"got {value!r}"
        ) from None
    for idx in indices:
        if isinstance(idx, bool) or not isinstance(idx, int) or idx < 0:
            raise ChaosError(
                f"store chaos {kind!r} indices must be nonnegative "
                f"integers, got {idx!r}"
            )
    return indices


@dataclass(frozen=True)
class StoreChaosSpec:
    """A declarative, deterministic fault plan for one store's I/O.

    Each field lists the 0-based commit-path operation indices at which
    that fault fires; see the module table for which counter each kind
    indexes.  An empty spec is a no-op wrapper.
    """

    torn_write: Tuple[int, ...] = ()
    corrupt_commit: Tuple[int, ...] = ()
    duplicate_link: Tuple[int, ...] = ()
    stale_read: Tuple[int, ...] = ()
    transient_errno: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for kind in STORE_FAULT_KINDS:
            object.__setattr__(
                self, kind, _as_indices(kind, getattr(self, kind))
            )

    def total_faults(self) -> int:
        """How many faults this spec injects in total."""
        return sum(len(getattr(self, kind)) for kind in STORE_FAULT_KINDS)

    # -- (de)serialization (CLI --store-chaos, CI) --------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "StoreChaosSpec":
        """Build a spec from a JSON-shaped dict."""
        if not isinstance(data, dict):
            raise ChaosError(
                f"store chaos spec must be an object, got {data!r}"
            )
        unknown = set(data) - set(STORE_FAULT_KINDS)
        if unknown:
            raise ChaosError(
                f"unknown store chaos spec fields: {sorted(unknown)}"
            )
        return cls(**{k: tuple(v) for k, v in data.items()})

    @classmethod
    def from_json(cls, text_or_path: str) -> "StoreChaosSpec":
        """Parse a spec from inline JSON or a path to a JSON file."""
        text = text_or_path
        if os.path.exists(text_or_path):
            with open(text_or_path) as handle:
                text = handle.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"invalid store chaos spec JSON: {exc}") from exc
        return cls.from_dict(data)


class FaultyStore(DirectoryStore):
    """A :class:`DirectoryStore` with deterministic I/O fault injection.

    A subclass rather than a wrapper so every caller-facing method
    (``try_commit``, ``read_commit``, leases, ``health``) runs the real
    hardened logic; only the four raw primitives are intercepted.
    Construct it exactly like a :class:`DirectoryStore`, plus a
    :class:`StoreChaosSpec`.  ``injected`` tallies what actually fired,
    so tests can assert the schedule was consumed.
    """

    def __init__(self, root: str, spec: StoreChaosSpec, **kwargs) -> None:
        super().__init__(root, **kwargs)
        self.spec = spec
        self._op_counts: Dict[str, int] = {"write": 0, "link": 0, "read": 0, "io": 0}
        self.injected: Dict[str, int] = {k: 0 for k in STORE_FAULT_KINDS}

    # -- bookkeeping -------------------------------------------------------------

    def _commit_traffic(self, path: str) -> bool:
        return os.path.dirname(os.path.abspath(path)) == os.path.abspath(
            self._commits
        )

    def _tick(self, primitive: str, path: str) -> Optional[int]:
        """Advance counters for a commit-path op; returns its primitive
        index (None for non-commit traffic).  Raises the injected
        transient errno when the combined index is scheduled."""
        if not self._commit_traffic(path):
            return None
        idx = self._op_counts[primitive]
        self._op_counts[primitive] += 1
        io_idx = self._op_counts["io"]
        self._op_counts["io"] += 1
        if io_idx in self.spec.transient_errno:
            self.injected["transient_errno"] += 1
            raise OSError(
                errno.EIO,
                f"chaos: injected transient EIO (io op {io_idx})",
                path,
            )
        return idx

    # -- faulted primitives ------------------------------------------------------

    def _write_bytes(self, path: str, data: bytes) -> None:
        idx = self._tick("write", path)
        if idx is not None and idx in self.spec.torn_write:
            self.injected["torn_write"] += 1
            data = data[: len(data) // 2]  # power cut mid-write
        super()._write_bytes(path, data)

    def _read_bytes(self, path: str) -> bytes:
        idx = self._tick("read", path)
        if idx is not None and idx in self.spec.stale_read:
            self.injected["stale_read"] += 1
            raise FileNotFoundError(
                errno.ENOENT,
                f"chaos: injected stale read (read op {idx})",
                path,
            )
        return super()._read_bytes(path)

    def _link(self, src: str, dst: str) -> None:
        idx = self._tick("link", dst)
        if idx is not None and idx in self.spec.duplicate_link:
            # Ghost success: the link call "wins", but the bytes that
            # survive on the shared medium belong to a different writer
            # -- a *valid* record, so readers adopt it; only the
            # verify-after-write readback tells the caller it lost.
            if os.path.exists(dst):
                raise FileExistsError(
                    errno.EEXIST, "chaos: commit already present", dst
                )
            try:
                record = json.loads(
                    super()._read_bytes(src).decode("utf-8")
                )
            except ValueError:
                # A torn write got to this record first: there is no
                # valid ghost to fabricate, so the torn bytes are what
                # survives on the medium -- plain link, and the
                # verify-after-write readback quarantines them.
                super()._link(src, dst)
                return
            self.injected["duplicate_link"] += 1
            record["writer"] = f"ghost:{idx}"
            super()._write_bytes(dst, json.dumps(record).encode("utf-8"))
            return
        super()._link(src, dst)
        if idx is not None and idx in self.spec.corrupt_commit:
            # Bit rot after a successful commit: keep the record's
            # shape but clobber the checksum header, so the next read
            # quarantines it with a checksum-mismatch reason.
            try:
                record = json.loads(
                    super()._read_bytes(dst).decode("utf-8")
                )
            except ValueError:
                # Already unreadable (a torn write landed here); extra
                # rot cannot make it worse, and readers quarantine it
                # on decode rather than on checksum.
                return
            self.injected["corrupt_commit"] += 1
            record["sha256"] = "0" * 64
            super()._write_bytes(dst, json.dumps(record).encode("utf-8"))

    def _replace(self, src: str, dst: str) -> None:
        # Lease traffic only (commits never use replace); pass through
        # unfaulted -- see the module docstring for why.
        super()._replace(src, dst)
