"""Fencing tokens: monotonically increasing broker epochs in the store.

``os.link`` exclusivity makes commits exactly-once on a POSIX
filesystem, but the campaign service is designed to run on *shared*
(often network-mounted) roots where that guarantee frays: a broker
whose lease expired can wake up seconds later and still win a link race
against the broker that legitimately took the unit over.  The classic
fix is a fencing token -- a number that only ever grows, issued when a
broker (re)joins the store, carried on every write, and checked so a
write stamped with a superseded token is rejected before it can touch
shared state.

:class:`FencingRegistry` is that token issuer, built from the same
primitive the commits trust: each epoch is an ``epochs/epoch-<N>.json``
file created with an exclusive hard link, so two brokers racing to
register can never be issued the same number.  Epoch files are
immutable once written and never deleted -- the registry is an
append-only ledger of who joined when, which also makes it the ``store
health`` record of every broker the directory has seen.

A broker that discovers it has been fenced (its write raised
:class:`~repro.errors.StaleFencingToken`) re-registers to obtain a
fresh, higher epoch before continuing; the stale write stays rejected,
but the broker itself is not exiled forever.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, Optional

#: Subdirectory of the scheduler state root holding the epoch ledger.
EPOCHS_DIR = "epochs"

_PREFIX = "epoch-"
_SUFFIX = ".json"


class FencingRegistry:
    """The append-only epoch ledger shared by every broker on one root.

    Parameters
    ----------
    root:
        The scheduler state directory (the ledger lives in
        ``root/epochs/``).  Created on first use.
    clock:
        Wall-clock source for the advisory ``registered_unix`` stamp in
        epoch records (never used for ordering -- the epoch number is
        the only ordering that matters).
    """

    def __init__(
        self, root: str, clock: Optional[Callable[[], float]] = None
    ) -> None:
        self._dir = os.path.join(root, EPOCHS_DIR)
        self.clock = clock or time.time
        os.makedirs(self._dir, exist_ok=True)
        # Epoch files are immutable, so parsed records can be cached
        # forever; only the directory listing is re-read.
        self._cache: Dict[str, dict] = {}

    def _path(self, epoch: int) -> str:
        return os.path.join(self._dir, f"{_PREFIX}{epoch:08d}{_SUFFIX}")

    def _epoch_numbers(self) -> list:
        numbers = []
        for name in os.listdir(self._dir):
            if not (name.startswith(_PREFIX) and name.endswith(_SUFFIX)):
                continue
            try:
                numbers.append(int(name[len(_PREFIX) : -len(_SUFFIX)]))
            except ValueError:
                continue  # stray file; never block registration on it
        return numbers

    def _record(self, epoch: int) -> Optional[dict]:
        path = self._path(epoch)
        cached = self._cache.get(path)
        if cached is not None:
            return cached
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError, OSError):
            return None
        if isinstance(record, dict):
            self._cache[path] = record
            return record
        return None

    # -- the issuer --------------------------------------------------------------

    def register(self, broker_id: str) -> int:
        """Issue the next epoch to *broker_id*; returns the number.

        The epoch file is created with an exclusive hard link (the same
        primitive the commits trust), so two racing registrations are
        serialized by the filesystem: the loser observes
        ``FileExistsError`` and claims the next number instead.
        """
        while True:
            epoch = self.latest_epoch() + 1
            record = {
                "schema": 1,
                "epoch": epoch,
                "broker": broker_id,
                "registered_unix": self.clock(),
            }
            final = self._path(epoch)
            tmp = f"{final}.tmp-{os.getpid()}"
            with open(tmp, "w") as handle:
                json.dump(record, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp, final)
            except FileExistsError:
                continue  # lost the race; claim the next number
            finally:
                os.unlink(tmp)
            self._cache[final] = record
            return epoch

    # -- inspection --------------------------------------------------------------

    def latest_epoch(self) -> int:
        """The highest epoch ever issued on this root (0 = none yet)."""
        numbers = self._epoch_numbers()
        return max(numbers) if numbers else 0

    def latest_for(self, broker_id: str) -> Optional[int]:
        """The highest epoch issued to *broker_id*, or None."""
        latest: Optional[int] = None
        for epoch in self._epoch_numbers():
            record = self._record(epoch)
            if record is None or record.get("broker") != broker_id:
                continue
            if latest is None or epoch > latest:
                latest = epoch
        return latest

    def epochs(self) -> Dict[str, int]:
        """Current epoch per broker: ``broker_id -> highest epoch``."""
        current: Dict[str, int] = {}
        for epoch in sorted(self._epoch_numbers()):
            record = self._record(epoch)
            if record is None:
                continue
            broker = record.get("broker")
            if isinstance(broker, str):
                current[broker] = epoch
        return current
