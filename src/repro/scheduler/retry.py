"""Deterministic retry envelope for transient shared-store I/O.

Network filesystems fail differently from local disks: an NFS client
under server failover returns ``ESTALE``, an overloaded fileserver
returns ``EIO`` or ``EAGAIN`` for operations that succeed moments
later.  Aborting a campaign drain on the first such errno throws away
hours of beam time over a hiccup; retrying forever wedges the broker.

:class:`RetryPolicy` bounds the middle ground.  It is deliberately
deterministic -- a fixed attempt budget and an exponential backoff with
*no* wall-clock jitter -- so that a chaos schedule injecting the same
transient faults always produces the same retry trace, the same
counters, and the same final state.  Transient errnos are a closed set
(:data:`TRANSIENT_ERRNOS`); anything else is permanent and propagates
unchanged on the first attempt.  An exhausted budget degrades to the
typed :class:`~repro.errors.StoreUnavailable`, never a bare ``OSError``.
"""

from __future__ import annotations

import errno
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from ..errors import SchedulerError, StoreUnavailable

#: Errnos that plausibly clear on retry (network-filesystem hiccups).
#: Everything else -- ENOSPC, EACCES, EROFS -- is permanent and must
#: surface immediately.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.EIO,
        errno.ESTALE,
        errno.EAGAIN,
        errno.EBUSY,
        errno.ETIMEDOUT,
    }
)

T = TypeVar("T")


def is_transient(exc: BaseException) -> bool:
    """True when *exc* is an OSError in the transient-errno set."""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS


@dataclass(frozen=True)
class RetryPolicy:
    """A bounded, deterministic retry budget for one store operation.

    Attributes
    ----------
    attempts:
        Total tries (first attempt included).  Exhausting them raises
        :class:`~repro.errors.StoreUnavailable`.
    base_delay_s / max_delay_s:
        Backoff before retry *k* (1-based) is
        ``min(base_delay_s * 2**(k-1), max_delay_s)`` -- exponential,
        capped, and jitter-free so chaos runs replay identically.
    """

    attempts: int = 5
    base_delay_s: float = 0.005
    max_delay_s: float = 0.1

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise SchedulerError("retry attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise SchedulerError("retry delays must be nonnegative")

    def delays(self) -> Iterator[float]:
        """The deterministic backoff sequence (``attempts - 1`` long)."""
        for k in range(self.attempts - 1):
            yield min(self.base_delay_s * (2.0**k), self.max_delay_s)

    def run(
        self,
        op: str,
        fn: Callable[[], T],
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[str], None]] = None,
    ) -> T:
        """Run *fn*, retrying transient OSErrors within the budget.

        *on_retry* is called (with the operation name) before each
        retry -- the store uses it to meter
        ``scheduler.store.retries``.  Permanent errors propagate
        unchanged; an exhausted budget raises
        :class:`~repro.errors.StoreUnavailable` chained to the last
        transient error.
        """
        last: Optional[OSError] = None
        for delay in self.delays():
            try:
                return fn()
            except OSError as exc:
                if not is_transient(exc):
                    raise
                last = exc
                if on_retry is not None:
                    on_retry(op)
                sleep(delay)
        try:
            return fn()
        except OSError as exc:
            if not is_transient(exc):
                raise
            last = exc
        raise StoreUnavailable(
            f"store operation {op!r} still failing after "
            f"{self.attempts} attempt(s): {last} -- the shared "
            f"filesystem looks unavailable; retry once it recovers"
        ) from last
