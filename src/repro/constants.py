"""Physical and platform constants used throughout the reproduction.

All values are taken from the paper (MICRO '23, Agiakatsikas &
Papadimitriou et al.) or the references it cites:

* JEDEC JESD89B reference flux for New York City at sea level.
* TRIUMF Neutron irradiation Facility (TNF) beam parameters (Section 3.4).
* X-Gene 2 platform parameters (Table 1 and Section 3.1).
"""

from __future__ import annotations

# --- Radiation environment -------------------------------------------------

#: Average neutron flux (E > 10 MeV) in New York City at sea level,
#: in neutrons / cm^2 / hour (JEDEC JESD89B; paper Section 2.1).
NYC_FLUX_PER_CM2_HOUR = 13.0

#: Hours in one billion device-hours -- the FIT normalization constant.
FIT_HOURS = 1.0e9

#: TNF nominal flux range at the test position (neutrons / cm^2 / s,
#: E > 10 MeV) for a 100 uA proton current (paper Section 3.4).
TNF_FLUX_MIN_PER_CM2_S = 2.0e6
TNF_FLUX_MAX_PER_CM2_S = 3.0e6

#: Fraction of the beam-center flux seen at the halo test position,
#: measured with the SRAM dosimeter.  The paper prints "0.60 +/- 0.02 %",
#: but its own flux arithmetic ((2+3)/2 x 0.6 x 1e6 = 1.5e6 n/cm^2/s)
#: and every Table 2 fluence (e.g. 1.49e11 n/cm^2 over 1651 min) are
#: only consistent with a *ratio* of 0.60 -- i.e. 60 % -- so that is
#: what we model; the "%" in the text appears to be a typo.
TNF_HALO_FRACTION = 0.60
TNF_HALO_FRACTION_UNCERTAINTY = 0.02

#: Average flux at the halo position: (2+3)/2 x 0.6 x 1e6 (Section 3.4).
TNF_HALO_FLUX_PER_CM2_S = 1.5e6

#: Uncertainty on the absolute TNF flux measurement (~20 %, Section 3.4).
TNF_ABSOLUTE_FLUX_UNCERTAINTY = 0.20

#: Thermal-neutron contamination at the halo (~15 % of the >10 MeV flux).
TNF_THERMAL_FRACTION = 0.15

#: Nominal TNF beam spot (cm).
TNF_BEAM_SPOT_CM = (5.0, 12.0)

# --- Statistical-significance thresholds (Section 3.5) ----------------------

#: Fluence above which a test session is considered statistically
#: significant (neutrons / cm^2), per ESCC 25100.
SIGNIFICANT_FLUENCE = 1.0e11

#: Alternative stopping rule: accumulated radiation-induced events.
SIGNIFICANT_EVENTS = 100

#: Confidence level used for all error bars in the paper.
CONFIDENCE_LEVEL = 0.95

# --- X-Gene 2 platform (Table 1) --------------------------------------------

#: Nominal supply voltages in millivolts.
PMD_NOMINAL_MV = 980
SOC_NOMINAL_MV = 950

#: Voltage-regulation step granularity in millivolts.
VOLTAGE_STEP_MV = 5

#: Frequency range of each dual-core pair, in MHz.
FREQ_MIN_MHZ = 300
FREQ_MAX_MHZ = 2400
FREQ_STEP_MHZ = 300

#: Core / cache geometry.
NUM_CORES = 8
NUM_PAIRS = 4
L1I_BYTES = 32 * 1024
L1D_BYTES = 32 * 1024
L2_BYTES = 256 * 1024
L3_BYTES = 8 * 1024 * 1024
DTLB_ENTRIES = 20
ITLB_ENTRIES = 20
L2TLB_ENTRIES = 1024

#: Thermal design power (W) and process node (nm).
TDP_WATTS = 35.0
PROCESS_NM = 28

#: Total on-chip SRAM the paper assumes for rate estimation (Section 3.3).
TOTAL_SRAM_BYTES = 10 * 1024 * 1024

# --- Calibration reference points (paper-reported values) -------------------

#: Raw per-bit SEU cross-section for 28 nm SRAM, cm^2/bit (Section 3.3,
#: citing neutron tests of a 28 nm MPSoC [83]).
RAW_SRAM_XS_CM2_PER_BIT = 1.0e-15

#: Reference memory SER from [83]: 15 FIT/Mbit at Beijing sea level.
REFERENCE_STATIC_SER_FIT_PER_MBIT = 15.0

#: Seconds per minute / hour, for readability at call sites.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
HOURS_PER_YEAR = 24.0 * 365.25
