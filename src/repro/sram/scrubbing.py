"""Scrubbing policy analysis for SECDED-protected arrays.

SECDED corrects one bit per word, so a word that collects *two*
independent single-bit upsets between consecutive reads becomes
uncorrectable -- exactly the accumulation the paper's short class-A
benchmarks were chosen to avoid (Section 3.3).  Hardware patrol
scrubbing bounds that window: this module quantifies the trade
between scrub interval, accumulated-DUE rate, and scrub energy, for
any voltage setting via the calibrated per-level rates.

Model: an array of ``W`` words whose per-word upset rate is
``lambda_w`` (1/s).  Within a scrub interval ``T``, the probability a
given word collects >= 2 hits is ~ (lambda_w*T)^2 / 2 (Poisson,
rare-event), so the chip-level accumulated-DUE rate is

    R_acc(T) = W * lambda_w^2 * T / 2        [1/s]

which grows linearly in T, while scrubbing costs one full-array sweep
of energy per interval.  MBU-induced DUEs (a single strike flipping 2+
bits of one word) are independent of T and set the noise floor that
makes ultra-aggressive scrubbing pointless.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ScrubbingModel:
    """Accumulation vs scrubbing for one SECDED array.

    Attributes
    ----------
    words:
        Number of protected words.
    word_upset_rate_per_s:
        Single-bit upset rate per word (1/s) -- environment-dependent;
        derive it from the calibrated level rates divided by word count.
    mbu_due_rate_per_s:
        Rate of instantaneous multi-bit DUEs (scrub-independent floor).
    scrub_energy_j:
        Energy of one full-array scrub sweep.
    """

    words: int
    word_upset_rate_per_s: float
    mbu_due_rate_per_s: float = 0.0
    scrub_energy_j: float = 0.05

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise ConfigurationError("word count must be positive")
        if self.word_upset_rate_per_s < 0:
            raise ConfigurationError("upset rate must be nonnegative")
        if self.mbu_due_rate_per_s < 0:
            raise ConfigurationError("MBU DUE rate must be nonnegative")
        if self.scrub_energy_j <= 0:
            raise ConfigurationError("scrub energy must be positive")

    # -- accumulation ---------------------------------------------------------

    def word_double_hit_probability(self, interval_s: float) -> float:
        """P(one word collects >= 2 hits within one scrub interval)."""
        if interval_s < 0:
            raise ConfigurationError("interval must be nonnegative")
        lam = self.word_upset_rate_per_s * interval_s
        # Exact Poisson P(>=2) = 1 - e^-lam (1 + lam), written with
        # expm1 so tiny lam does not cancel to zero in doubles.
        return -math.expm1(-lam) - lam * math.exp(-lam)

    def accumulated_due_rate_per_s(self, interval_s: float) -> float:
        """Chip-level accumulated-DUE rate at a scrub interval (1/s)."""
        if interval_s <= 0:
            raise ConfigurationError("interval must be positive")
        per_word = self.word_double_hit_probability(interval_s)
        return self.words * per_word / interval_s

    def total_due_rate_per_s(self, interval_s: float) -> float:
        """Accumulated plus MBU-floor DUE rate (1/s)."""
        return (
            self.accumulated_due_rate_per_s(interval_s)
            + self.mbu_due_rate_per_s
        )

    # -- policy -----------------------------------------------------------------

    def interval_for_due_budget(self, due_rate_budget_per_s: float) -> float:
        """Largest scrub interval keeping the accumulated-DUE rate under
        a budget (rare-event closed form)."""
        if due_rate_budget_per_s <= 0:
            raise ConfigurationError("DUE budget must be positive")
        if self.word_upset_rate_per_s == 0:
            return math.inf
        # R_acc(T) ~ W * lambda_w^2 * T / 2  =>  T = 2 R / (W lambda^2)
        return (
            2.0
            * due_rate_budget_per_s
            / (self.words * self.word_upset_rate_per_s ** 2)
        )

    def scrub_power_w(self, interval_s: float) -> float:
        """Average power spent scrubbing at an interval."""
        if interval_s <= 0:
            raise ConfigurationError("interval must be positive")
        return self.scrub_energy_j / interval_s

    def diminishing_returns_interval_s(self) -> float:
        """Interval below which scrubbing stops helping.

        Scrubbing faster than the point where the accumulated-DUE rate
        falls under the MBU floor only burns energy: returns the
        interval where the two rates cross (infinity if there is no
        MBU floor).
        """
        if self.mbu_due_rate_per_s == 0:
            return math.inf
        if self.word_upset_rate_per_s == 0:
            return math.inf
        return (
            2.0
            * self.mbu_due_rate_per_s
            / (self.words * self.word_upset_rate_per_s ** 2)
        )


def model_from_level_rate(
    words: int,
    level_rate_per_min: float,
    mbu_fraction: float = 0.047,
    scrub_energy_j: float = 0.05,
) -> ScrubbingModel:
    """Build a scrubbing model from a calibrated level rate.

    Parameters
    ----------
    words:
        Words in the array.
    level_rate_per_min:
        Detected upsets/minute for the array (e.g. the L3's 0.803 at
        nominal under the TNF halo flux, or the NYC-scaled equivalent).
    mbu_fraction:
        Fraction of strikes that are multi-bit in the same word (the
        L3's ~4.7 % UE share).
    """
    if words <= 0:
        raise ConfigurationError("word count must be positive")
    if level_rate_per_min < 0:
        raise ConfigurationError("rate must be nonnegative")
    if not 0 <= mbu_fraction < 1:
        raise ConfigurationError("MBU fraction must be in [0, 1)")
    total_per_s = level_rate_per_min / 60.0
    sbu_per_s = total_per_s * (1.0 - mbu_fraction)
    mbu_per_s = total_per_s * mbu_fraction
    return ScrubbingModel(
        words=words,
        word_upset_rate_per_s=sbu_per_s / words,
        mbu_due_rate_per_s=mbu_per_s,
        scrub_energy_j=scrub_energy_j,
    )
