"""Random-dopant-fluctuation (RDF) process-variation model.

Section 4.3 of the paper separates SRAM bit-cell failures into

1. **persistent** bit failures that appear below a per-cell minimum
   voltage -- caused by manufacturing variation (RDF), and
2. **non-persistent** (transient) upsets from radiation.

The per-cell failure voltage is modeled as a normal distribution; the
fraction of cells failing at a supply voltage V is its CDF at V.  This
is what limits how far a chip can be undervolted: the safe Vmin is the
voltage at which the expected count of failing cells over the whole
chip crosses below one (no faulty cell anywhere).  The same machinery
drives the pfail(V) curves of Fig. 4 via :mod:`repro.harness.vmin`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ConfigurationError


@dataclass(frozen=True)
class ProcessVariationModel:
    """Per-cell minimum-operating-voltage distribution.

    Attributes
    ----------
    mean_vfail_mv:
        Mean of the per-cell failure voltage (mV).  Well below the safe
        Vmin: the chip Vmin is set by the *tail* of this distribution.
    sigma_vfail_mv:
        Standard deviation of the per-cell failure voltage (mV).
    cells:
        Number of cells in the structure being assessed.
    """

    mean_vfail_mv: float = 620.0
    sigma_vfail_mv: float = 38.0
    cells: int = 80 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.sigma_vfail_mv <= 0:
            raise ConfigurationError("sigma must be positive")
        if self.cells < 1:
            raise ConfigurationError("cell count must be >= 1")

    def cell_fail_probability(self, supply_mv: float) -> float:
        """Probability that one cell cannot hold data at *supply_mv*."""
        if supply_mv <= 0:
            raise ConfigurationError("supply voltage must be positive")
        z = (supply_mv - self.mean_vfail_mv) / self.sigma_vfail_mv
        return float(stats.norm.sf(z))

    def expected_failing_cells(self, supply_mv: float) -> float:
        """Expected number of persistently failing cells at *supply_mv*."""
        return self.cells * self.cell_fail_probability(supply_mv)

    def any_cell_fails_probability(self, supply_mv: float) -> float:
        """Probability at least one of the cells fails (Poisson approx)."""
        lam = self.expected_failing_cells(supply_mv)
        return float(-np.expm1(-lam))

    def safe_vmin_mv(self, target_fail_prob: float = 0.01, step_mv: int = 5) -> int:
        """Lowest voltage (on the regulator grid) with a failure
        probability below *target_fail_prob*.

        Mirrors the offline characterization of Section 3.6: walk down
        from a clearly safe voltage until the chip-level failure
        probability crosses the target, then report the last safe step.
        """
        if not 0 < target_fail_prob < 1:
            raise ConfigurationError("target probability must be in (0, 1)")
        # Start from a voltage high enough to be safe with margin.
        v = int(self.mean_vfail_mv + 10 * self.sigma_vfail_mv)
        v -= v % step_mv
        last_safe = v
        while v > 0:
            if self.any_cell_fails_probability(v) >= target_fail_prob:
                return last_safe
            last_safe = v
            v -= step_mv
        return last_safe

    def sample_failing_cells(
        self, supply_mv: float, rng: np.random.Generator
    ) -> int:
        """Sample the count of persistently failing cells (Poisson)."""
        lam = self.expected_failing_cells(supply_mv)
        return int(rng.poisson(lam))
