"""Critical-charge (Qcrit) model of a 6T SRAM bit cell.

The charge a particle strike must deposit on a storage node to flip the
cell -- the *critical charge* -- is, to first order, the product of the
node capacitance and the supply voltage (paper Section 1, citing Chandra
& Aitken [16]).  Lowering the supply voltage therefore lowers Qcrit
linearly, and the upset probability for the atmospheric neutron spectrum
rises roughly exponentially as Qcrit drops (the classic
Hazucha-Svensson empirical relation).

This module provides the per-cell physics; :mod:`repro.sram.cross_section`
aggregates it into the per-bit cross-section used by the injectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PMD_NOMINAL_MV
from ..errors import ConfigurationError
from ..units import mv_to_volts


@dataclass(frozen=True)
class QcritModel:
    """Voltage dependence of the critical charge of one bit cell.

    Attributes
    ----------
    qcrit_nominal_fc:
        Critical charge at the nominal supply voltage, in femtocoulombs.
        ~1-2 fC is representative of 28 nm SRAM.
    nominal_mv:
        The nominal supply voltage in millivolts.
    node_capacitance_ff:
        Effective storage-node capacitance in femtofarads.  Used for the
        linear Q = C*V scaling; derived from the nominal point if not
        overridden.
    """

    qcrit_nominal_fc: float = 1.5
    nominal_mv: float = float(PMD_NOMINAL_MV)

    def __post_init__(self) -> None:
        if self.qcrit_nominal_fc <= 0:
            raise ConfigurationError("Qcrit must be positive")
        if self.nominal_mv <= 0:
            raise ConfigurationError("nominal voltage must be positive")

    @property
    def node_capacitance_ff(self) -> float:
        """Effective node capacitance implied by the nominal point (fF)."""
        return self.qcrit_nominal_fc / mv_to_volts(self.nominal_mv)

    def qcrit_fc(self, supply_mv: float) -> float:
        """Critical charge at *supply_mv*, in femtocoulombs.

        Qcrit(V) = C_node * V: the linear proportionality between the
        charge required to upset a node and the voltage level the paper
        cites from [16].
        """
        if supply_mv <= 0:
            raise ConfigurationError("supply voltage must be positive")
        return self.node_capacitance_ff * mv_to_volts(supply_mv)

    def qcrit_ratio(self, supply_mv: float) -> float:
        """Qcrit(V) / Qcrit(V_nominal); < 1 below nominal."""
        return self.qcrit_fc(supply_mv) / self.qcrit_nominal_fc


@dataclass(frozen=True)
class BitCell:
    """One 6T SRAM bit cell with a Qcrit model and a collection-efficiency.

    ``upset_probability`` evaluates the Hazucha-Svensson-style
    exponential sensitivity: for a deposited charge Q_dep, the cell
    flips iff Q_dep >= Qcrit(V).  For the atmospheric spectrum the
    deposited-charge distribution is approximately exponential with
    scale ``qs_fc`` (the charge-collection slope), giving

        P(upset | strike) = exp(-Qcrit(V) / Qs).
    """

    qcrit: QcritModel = QcritModel()
    qs_fc: float = 2.5  # charge-collection slope, femtocoulombs

    def __post_init__(self) -> None:
        if self.qs_fc <= 0:
            raise ConfigurationError("charge-collection slope must be positive")

    def upset_probability(self, supply_mv: float) -> float:
        """Probability that a charge-depositing strike flips this cell."""
        return float(np.exp(-self.qcrit.qcrit_fc(supply_mv) / self.qs_fc))

    def sensitivity_ratio(self, supply_mv: float) -> float:
        """Upset probability at *supply_mv* relative to nominal.

        >1 below nominal voltage; this is the quantity the calibrated
        cross-section model in :mod:`repro.sram.cross_section`
        approximates with its exponential-in-undervolt form.
        """
        nominal = self.upset_probability(self.qcrit.nominal_mv)
        return self.upset_probability(supply_mv) / nominal

    def deposited_charge_fc(self, rng: np.random.Generator) -> float:
        """Sample a deposited charge for one strike (exponential, fC)."""
        return float(rng.exponential(self.qs_fc))

    def strike_upsets(self, supply_mv: float, rng: np.random.Generator) -> bool:
        """Monte-Carlo one strike: does the cell flip at *supply_mv*?"""
        return self.deposited_charge_fc(rng) >= self.qcrit.qcrit_fc(supply_mv)
