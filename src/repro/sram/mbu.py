"""Multi-bit-upset (MBU) cluster statistics.

A single neutron strike can upset several physically adjacent cells.
Whether those cells land in the same *logical* word depends on the
array's column interleaving: interleaved arrays spread a physical
cluster across different words, so each word sees a single-bit error
that SECDED can correct.  The paper (Section 4.3, citing [20]) observes
that the large L3 with no interleaving is the only array reporting
uncorrected (>= 2 bits/word) errors.

The cluster-size distribution is modeled as geometric: most strikes
upset one cell, a decaying fraction upset 2, 3, ... adjacent cells.
Cluster shape is a run of adjacent bits in the physical row, which the
interleaving factor then folds into logical words.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class MbuCluster:
    """A physical upset cluster.

    Attributes
    ----------
    size:
        Number of upset cells.
    offsets:
        Physical bit offsets of the upset cells relative to the first,
        e.g. ``(0, 1, 2)`` for a horizontal 3-cell run.
    """

    size: int
    offsets: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.size != len(self.offsets):
            raise ConfigurationError("cluster size must match offsets length")
        if self.size < 1:
            raise ConfigurationError("cluster must contain at least one cell")


@dataclass(frozen=True)
class MbuModel:
    """Geometric cluster-size model with voltage-dependent escalation.

    Attributes
    ----------
    p_multi_nominal:
        Probability at nominal voltage that a strike upsets more than
        one cell.  ~5 % is representative of 28 nm planar SRAM under
        atmospheric-like neutrons.
    continuation:
        Given the cluster has >= n cells (n >= 2), probability it has
        >= n+1: the geometric tail parameter.
    voltage_escalation:
        Additional multiplier on ``p_multi`` per unit relative
        undervolt, capturing the paper's note that cells become "more
        prone ... especially to multiple-bit upsets during ultra-low
        voltage conditions" (Section 4.3).
    max_size:
        Hard cap on cluster size (physical cluster extent).  The
        default of 4 matches the campaign's observation that 4-way
        interleaved arrays (L1/L2) never report uncorrected errors: a
        run of at most 4 adjacent cells always lands one bit per
        logical word after interleaving.
    """

    p_multi_nominal: float = 0.05
    continuation: float = 0.30
    voltage_escalation: float = 3.0
    max_size: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.p_multi_nominal < 1:
            raise ConfigurationError("p_multi_nominal must be in [0, 1)")
        if not 0 <= self.continuation < 1:
            raise ConfigurationError("continuation must be in [0, 1)")
        if self.voltage_escalation < 0:
            raise ConfigurationError("voltage escalation must be nonnegative")
        if self.max_size < 1:
            raise ConfigurationError("max cluster size must be >= 1")

    def p_multi(self, undervolt_fraction: float) -> float:
        """Probability of a multi-cell cluster at the given undervolt."""
        escalated = self.p_multi_nominal * float(
            np.exp(self.voltage_escalation * max(undervolt_fraction, 0.0))
        )
        return min(escalated, 0.9)

    def sample_size(
        self, rng: np.random.Generator, undervolt_fraction: float = 0.0
    ) -> int:
        """Sample a cluster size for one strike."""
        if rng.random() >= self.p_multi(undervolt_fraction):
            return 1
        size = 2
        while size < self.max_size and rng.random() < self.continuation:
            size += 1
        return size

    def sample_cluster(
        self, rng: np.random.Generator, undervolt_fraction: float = 0.0
    ) -> MbuCluster:
        """Sample a full cluster (size + adjacent-run shape)."""
        size = self.sample_size(rng, undervolt_fraction)
        return MbuCluster(size=size, offsets=tuple(range(size)))

    def sample_sizes(
        self,
        rng: np.random.Generator,
        undervolt_fraction: float = 0.0,
        n: int = 1,
    ) -> np.ndarray:
        """Sample *n* cluster sizes in one vectorized pass.

        Distributionally identical to *n* calls of :meth:`sample_size`
        (capped geometric), but draws the multi-cell Bernoullis and the
        continuation ladder as whole arrays: one uniform batch decides
        which strikes go multi-cell, and each further rung of the
        ladder survives only while every previous rung did (the
        ``cumprod`` below), mirroring the scalar early-exit loop.
        """
        if n < 0:
            raise ConfigurationError("sample count must be nonnegative")
        sizes = np.ones(n, dtype=np.int64)
        if n == 0:
            return sizes
        multi = rng.random(n) < self.p_multi(undervolt_fraction)
        n_multi = int(np.count_nonzero(multi))
        if n_multi == 0:
            return sizes
        sizes[multi] = 2
        rungs = self.max_size - 2
        if rungs > 0:
            cont = rng.random((n_multi, rungs)) < self.continuation
            sizes[multi] += np.cumprod(cont, axis=1).sum(axis=1).astype(np.int64)
        return sizes

    def split_by_interleaving(
        self, cluster: MbuCluster, interleave: int, word_bits: int
    ) -> List[Tuple[int, int]]:
        """Fold a physical cluster into per-word flip counts.

        With ``interleave``-way column interleaving, physically adjacent
        bits belong to ``interleave`` different logical words.  Returns a
        list of ``(word_delta, bits_in_word)`` pairs, where ``word_delta``
        is the logical-word offset from the struck word.

        Parameters
        ----------
        cluster:
            The physical cluster to fold.
        interleave:
            Column-interleaving factor (1 = none).
        word_bits:
            Logical word width in bits (for wrap accounting).
        """
        if interleave < 1:
            raise ConfigurationError("interleaving factor must be >= 1")
        if word_bits < 1:
            raise ConfigurationError("word width must be >= 1")
        counts: "dict[int, int]" = {}
        for offset in cluster.offsets:
            word_delta = offset % interleave
            counts[word_delta] = counts.get(word_delta, 0) + 1
        return sorted(counts.items())
