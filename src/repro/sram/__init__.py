"""SRAM soft-error physics substrate.

This subpackage models everything between an incident neutron and a
logged bit upset in an on-chip SRAM array:

* :mod:`repro.sram.cell` -- critical-charge (Qcrit) model of a 6T bit
  cell and its dependence on supply voltage.
* :mod:`repro.sram.cross_section` -- per-bit SEU cross-section as a
  function of voltage, calibrated against the paper's measured rates.
* :mod:`repro.sram.mbu` -- multi-bit-upset cluster statistics.
* :mod:`repro.sram.variation` -- random-dopant-fluctuation process
  variation, separating persistent low-voltage bit failures from
  transient radiation-induced upsets.
* :mod:`repro.sram.protection` -- even parity and SECDED(72,64) Hamming
  codes implemented bit-for-bit.
* :mod:`repro.sram.array` -- an addressable SRAM array with a sparse
  upset store and scrub/access semantics.
"""

from .cell import BitCell, QcritModel
from .cross_section import CrossSectionModel
from .mbu import MbuModel, MbuCluster
from .variation import ProcessVariationModel
from .protection import (
    Codec,
    CodecResult,
    ParityCodec,
    SecdedCodec,
    DecodeStatus,
)
from .array import SramArray, ArrayGeometry, UpsetRecord
from .scrubbing import ScrubbingModel, model_from_level_rate

__all__ = [
    "BitCell",
    "QcritModel",
    "CrossSectionModel",
    "MbuModel",
    "MbuCluster",
    "ProcessVariationModel",
    "Codec",
    "CodecResult",
    "ParityCodec",
    "SecdedCodec",
    "DecodeStatus",
    "SramArray",
    "ArrayGeometry",
    "UpsetRecord",
    "ScrubbingModel",
    "model_from_level_rate",
]
