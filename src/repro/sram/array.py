"""Addressable SRAM array with a sparse upset store.

Real arrays on the X-Gene 2 range from 20-entry TLBs to the 8 MB L3.
Materializing every bit would waste memory for no fidelity gain -- the
beam only touches a handful of words per session -- so upsets are kept
sparsely: ``word index -> accumulated flip mask`` over the *stored*
codeword bits (data + check bits).

Access semantics mirror the platform's RAS behaviour (Section 3.1):

* on a read, the protection codec decodes the stored word;
* parity arrays invalidate + refetch on detection (flips cleared, data
  intact thanks to the write-through policy);
* SECDED arrays correct single-bit errors in place and flag double-bit
  errors as uncorrected;
* either way the access is logged so the EDAC layer can report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import GeometryError, InjectionError
from .mbu import MbuCluster, MbuModel
from .protection import (
    Codec,
    CodecResult,
    DecodeStatus,
    ParityCodec,
    SecdedCodec,
    flips_from_bit_indices,
)


@dataclass(frozen=True)
class ArrayGeometry:
    """Logical geometry of one SRAM array.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"core0.l1d"``.
    words:
        Number of protected words.
    data_bits:
        Data bits per word (excluding check bits).
    interleave:
        Column-interleaving factor; physical MBU clusters are spread
        over this many logical words.  1 means no interleaving (L3).
    """

    name: str
    words: int
    data_bits: int
    interleave: int = 4

    def __post_init__(self) -> None:
        if self.words < 1:
            raise GeometryError(f"{self.name}: word count must be >= 1")
        if self.data_bits < 1:
            raise GeometryError(f"{self.name}: word width must be >= 1")
        if self.interleave < 1:
            raise GeometryError(f"{self.name}: interleave must be >= 1")

    @property
    def data_bits_total(self) -> int:
        """Total data bits in the array."""
        return self.words * self.data_bits

    @classmethod
    def from_bytes(
        cls, name: str, capacity_bytes: int, data_bits: int = 64, interleave: int = 4
    ) -> "ArrayGeometry":
        """Build a geometry from a capacity in bytes."""
        total_bits = capacity_bytes * 8
        if total_bits % data_bits:
            raise GeometryError(
                f"{name}: {capacity_bytes} bytes not divisible into "
                f"{data_bits}-bit words"
            )
        return cls(
            name=name,
            words=total_bits // data_bits,
            data_bits=data_bits,
            interleave=interleave,
        )


@dataclass(frozen=True)
class UpsetRecord:
    """One upset observed when a word was accessed.

    Attributes
    ----------
    array:
        Name of the array the upset occurred in.
    word:
        Logical word index.
    flipped_bits:
        Number of stored bits that were flipped in the word.
    status:
        The codec's classification of the access.
    """

    array: str
    word: int
    flipped_bits: int
    status: DecodeStatus


class SramArray:
    """One protected SRAM array with sparse upset state.

    Parameters
    ----------
    geometry:
        Logical shape of the array.
    codec:
        Protection codec (parity or SECDED) applied per word.
    domain:
        Name of the voltage domain feeding the array ("pmd" or "soc");
        consumers use it to pick the right supply voltage.
    """

    def __init__(self, geometry: ArrayGeometry, codec: Codec, domain: str) -> None:
        if codec.data_bits != geometry.data_bits:
            raise GeometryError(
                f"{geometry.name}: codec protects {codec.data_bits}-bit words "
                f"but geometry declares {geometry.data_bits}-bit words"
            )
        self.geometry = geometry
        self.codec = codec
        self.domain = domain
        # word index -> accumulated flip mask over stored (codeword) bits
        self._flips: Dict[int, int] = {}
        # Flip-count -> DecodeStatus shortcuts for the vectorized hot
        # path.  For these counts the decode outcome is independent of
        # *which* distinct stored bits flipped: any single flip is
        # corrected by SECDED and detected by parity, and any double
        # flip trips SECDED's overall-parity check.  Higher counts (and
        # unknown codecs) depend on the actual positions and go through
        # the real codec in :meth:`classify_flip_count`.
        self._count_status: Dict[int, DecodeStatus] = {}
        if isinstance(codec, SecdedCodec):
            self._count_status = {
                1: DecodeStatus.CORRECTED,
                2: DecodeStatus.DETECTED_UNCORRECTABLE,
            }
        elif isinstance(codec, ParityCodec):
            self._count_status = {1: DecodeStatus.DETECTED_UNCORRECTABLE}

    # -- introspection --------------------------------------------------------

    @property
    def name(self) -> str:
        """The array's identifier."""
        return self.geometry.name

    @property
    def stored_bits(self) -> int:
        """Total stored bits (data + check) -- the beam target area."""
        return self.geometry.words * self.codec.word_bits

    @property
    def dirty_words(self) -> List[int]:
        """Word indices currently holding uncleared flips."""
        return sorted(self._flips)

    def pending_flips(self, word: int) -> int:
        """The accumulated flip mask of *word* (0 if clean)."""
        self._check_word(word)
        return self._flips.get(word, 0)

    # -- fault injection -------------------------------------------------------

    def inject_bit_flip(self, word: int, bit: int) -> None:
        """Flip one stored bit of *word* (bit index over the codeword)."""
        self._check_word(word)
        if not 0 <= bit < self.codec.word_bits:
            raise InjectionError(
                f"{self.name}: bit {bit} outside {self.codec.word_bits}-bit word"
            )
        self._flips[word] = self._flips.get(word, 0) ^ (1 << bit)
        if self._flips[word] == 0:
            del self._flips[word]

    def strike(
        self,
        word: int,
        cluster: MbuCluster,
        mbu_model: MbuModel,
        rng: np.random.Generator,
    ) -> List[Tuple[int, int]]:
        """Apply a physical upset cluster landing on *word*.

        The cluster is folded through the array's column interleaving:
        adjacent physical cells map to different logical words, so a
        size-3 cluster on a 4-way interleaved array produces three
        single-bit word errors rather than one triple-bit error.

        Returns the list of ``(word, bits_flipped)`` actually applied.
        """
        self._check_word(word)
        applied: List[Tuple[int, int]] = []
        per_word = mbu_model.split_by_interleaving(
            cluster, self.geometry.interleave, self.codec.word_bits
        )
        for word_delta, nbits in per_word:
            target = (word + word_delta) % self.geometry.words
            # Choose distinct random stored-bit positions for the flips.
            positions = rng.choice(
                self.codec.word_bits, size=min(nbits, self.codec.word_bits),
                replace=False,
            )
            for bit in np.atleast_1d(positions):
                self.inject_bit_flip(target, int(bit))
            applied.append((target, int(len(np.atleast_1d(positions)))))
        return applied

    def classify_flip_count(
        self, nbits: int, rng: np.random.Generator
    ) -> DecodeStatus:
        """Decode outcome of *nbits* distinct random stored-bit flips.

        This is the vectorized injector's severity oracle: it returns
        the same :class:`DecodeStatus` a strike-then-access round trip
        on a clean word would, without mutating array state.  Counts
        whose outcome is position-independent (see ``_count_status``)
        are answered from the precomputed table; everything else --
        notably >= 3-bit flips on the non-interleaved L3, where SECDED
        miscorrection pathologies live -- samples concrete positions
        and runs the real codec so the emergent physics is preserved.
        """
        if nbits < 1:
            raise InjectionError("flip count must be >= 1")
        status = self._count_status.get(nbits)
        if status is not None:
            return status
        positions = rng.choice(
            self.codec.word_bits,
            size=min(nbits, self.codec.word_bits),
            replace=False,
        )
        mask = flips_from_bit_indices(
            tuple(int(b) for b in np.atleast_1d(positions))
        )
        return self.codec.classify(0, mask).status

    # -- access / scrub ---------------------------------------------------------

    def access(self, word: int, data: int = 0) -> Tuple[CodecResult, Optional[UpsetRecord]]:
        """Read *word* whose fault-free content is *data*.

        Decodes through the protection codec, clears the word's flips
        (invalidate+refetch for parity, in-place correction or line
        replacement for SECDED), and returns the codec result plus an
        :class:`UpsetRecord` if anything was logged.
        """
        self._check_word(word)
        mask = self._flips.pop(word, 0)
        result = self.codec.classify(data, mask)
        if (
            result.status == DecodeStatus.DETECTED_UNCORRECTABLE
            and self.codec.refetch_on_detect
        ):
            # Parity arrays are write-through: the detected entry is
            # invalidated and refetched, so the consumer sees the
            # original data despite the detection.
            result = CodecResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        record: Optional[UpsetRecord] = None
        if mask and result.status != DecodeStatus.CLEAN:
            record = UpsetRecord(
                array=self.name,
                word=word,
                flipped_bits=bin(mask).count("1"),
                status=result.status,
            )
        return result, record

    def scrub(self) -> Iterator[UpsetRecord]:
        """Background-scrub every dirty word, yielding upset records.

        Models the periodic patrol scrubbing / natural access recurrence
        that eventually surfaces latent upsets to the EDAC log.
        """
        for word in list(self._flips):
            _, record = self.access(word)
            if record is not None:
                yield record

    def clear(self) -> None:
        """Drop all pending flips (e.g. after a power cycle)."""
        self._flips.clear()

    def _check_word(self, word: int) -> None:
        if not 0 <= word < self.geometry.words:
            raise InjectionError(
                f"{self.name}: word {word} outside [0, {self.geometry.words})"
            )

    def __repr__(self) -> str:
        return (
            f"SramArray({self.name!r}, words={self.geometry.words}, "
            f"codec={self.codec!r}, domain={self.domain!r})"
        )
