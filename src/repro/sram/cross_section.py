"""Per-bit SEU cross-section as a function of supply voltage.

The injectors need one number per (array, voltage): the probability per
unit fluence that a given bit flips.  We use the standard exponential
undervolt sensitivity

    sigma(V) = sigma_0 * exp(k_v * (V_nom - V) / V_nom)

which is the first-order consequence of the linear Qcrit(V) model in
:mod:`repro.sram.cell` combined with an exponential deposited-charge
spectrum.  ``sigma_0`` and ``k_v`` are calibrated so the simulated
chip-level upset rates match the paper's measurements:

* total rate 1.01 upsets/min at 980 mV under the TNF halo flux
  (1.5e6 n/cm^2/s) with the benchmarks' detection efficiency applied,
* +6.9 % at 930 mV, +10.9 % at 920 mV (Fig. 9),
* +16.8 % at 790 mV/900 MHz where only the PMD domain is undervolted
  (Fig. 10).

The calibration helper :func:`fit_voltage_slope` recovers ``k_v`` from
any two (voltage, rate) observations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import PMD_NOMINAL_MV, RAW_SRAM_XS_CM2_PER_BIT
from ..errors import ConfigurationError


@dataclass(frozen=True)
class CrossSectionModel:
    """Exponential-undervolt per-bit cross-section model.

    Attributes
    ----------
    sigma0_cm2:
        Per-bit cross-section at nominal voltage (cm^2/bit).
    nominal_mv:
        Nominal voltage of the domain the array lives in.
    voltage_slope:
        Dimensionless sensitivity ``k_v``; the rate multiplier for a
        relative undervolt ``u = (V_nom - V)/V_nom`` is ``exp(k_v * u)``.
    """

    sigma0_cm2: float = RAW_SRAM_XS_CM2_PER_BIT
    nominal_mv: float = float(PMD_NOMINAL_MV)
    voltage_slope: float = 1.7

    def __post_init__(self) -> None:
        if self.sigma0_cm2 <= 0:
            raise ConfigurationError("sigma0 must be positive")
        if self.nominal_mv <= 0:
            raise ConfigurationError("nominal voltage must be positive")
        if self.voltage_slope < 0:
            raise ConfigurationError("voltage slope must be nonnegative")

    def undervolt_fraction(self, supply_mv: float) -> float:
        """Relative undervolt u = (V_nom - V)/V_nom (negative above nominal)."""
        if supply_mv <= 0:
            raise ConfigurationError("supply voltage must be positive")
        return (self.nominal_mv - supply_mv) / self.nominal_mv

    def multiplier(self, supply_mv: float) -> float:
        """sigma(V)/sigma(V_nom) = exp(k_v * u)."""
        return float(np.exp(self.voltage_slope * self.undervolt_fraction(supply_mv)))

    def sigma_cm2(self, supply_mv: float) -> float:
        """Per-bit cross-section at *supply_mv* (cm^2/bit)."""
        return self.sigma0_cm2 * self.multiplier(supply_mv)

    def upset_rate_per_bit_s(self, supply_mv: float, flux_per_cm2_s: float) -> float:
        """Per-bit upset rate (1/s) under a given flux."""
        if flux_per_cm2_s < 0:
            raise ConfigurationError("flux must be nonnegative")
        return self.sigma_cm2(supply_mv) * flux_per_cm2_s

    def with_sigma0(self, sigma0_cm2: float) -> "CrossSectionModel":
        """Copy with a different nominal cross-section (for calibration)."""
        return CrossSectionModel(
            sigma0_cm2=sigma0_cm2,
            nominal_mv=self.nominal_mv,
            voltage_slope=self.voltage_slope,
        )

    @classmethod
    def for_node(cls, node) -> "CrossSectionModel":
        """The cross-section model at a technology node.

        The nominal cross-section scales with the node's ``sigma0``
        factor, the exponential sensitivity with its ``slope`` factor,
        and undervolt fractions are taken against the node's own PMD
        nominal.  The default 28 nm anchor returns the paper-calibrated
        model unchanged.
        """
        if node is None or getattr(node, "is_default", False):
            return cls()
        base = cls()
        return cls(
            sigma0_cm2=base.sigma0_cm2 * node.sigma0_scale,
            nominal_mv=float(node.pmd_nominal_mv),
            voltage_slope=base.voltage_slope * node.slope_scale,
        )


def fit_voltage_slope(
    nominal_mv: float,
    low_mv: float,
    rate_ratio: float,
) -> float:
    """Recover ``k_v`` from one undervolted observation.

    Parameters
    ----------
    nominal_mv / low_mv:
        The two voltage settings compared.
    rate_ratio:
        Measured upset-rate ratio rate(low)/rate(nominal), > 0.

    Returns
    -------
    float
        The slope ``k_v`` such that ``exp(k_v * u) == rate_ratio`` for
        ``u = (nominal_mv - low_mv)/nominal_mv``.
    """
    if rate_ratio <= 0:
        raise ConfigurationError("rate ratio must be positive")
    if nominal_mv <= 0 or low_mv <= 0:
        raise ConfigurationError("voltages must be positive")
    if nominal_mv == low_mv:
        raise ConfigurationError("voltages must differ to fit a slope")
    u = (nominal_mv - low_mv) / nominal_mv
    return float(np.log(rate_ratio) / u)


def calibrate_sigma0(
    target_rate_per_min: float,
    total_bits: float,
    flux_per_cm2_s: float,
    detection_efficiency: float = 1.0,
) -> float:
    """Solve sigma_0 from a target chip-level detected upset rate.

    rate/min = sigma_0 * bits * flux * efficiency * 60

    Parameters
    ----------
    target_rate_per_min:
        Desired detected upsets per minute at nominal voltage.
    total_bits:
        Number of SRAM bits contributing.
    flux_per_cm2_s:
        Beam flux at the DUT.
    detection_efficiency:
        Fraction of raw upsets that the workload/EDAC path observes.
    """
    if min(target_rate_per_min, total_bits, flux_per_cm2_s) <= 0:
        raise ConfigurationError("rate, bits and flux must be positive")
    if not 0 < detection_efficiency <= 1:
        raise ConfigurationError("detection efficiency must be in (0, 1]")
    per_second = target_rate_per_min / 60.0
    return per_second / (total_bits * flux_per_cm2_s * detection_efficiency)
