"""Error-detection/correction codes used by the X-Gene 2 SRAM arrays.

Two schemes appear on the platform (paper Table 1):

* **Even parity** on the TLBs and the write-through L1 caches.  Parity
  detects any odd number of bit flips; on detection the entry is
  invalidated and refetched, so a detected parity error never corrupts
  architectural state.
* **SECDED(72,64)** Hamming code on the L2 and L3 caches: 64 data bits
  plus 8 check bits per word.  Single-bit errors are corrected,
  double-bit errors are detected ("uncorrected error"), and -- exactly
  as Section 6.2 of the paper observes -- *triple*-bit errors can alias
  to a single-bit syndrome and be silently miscorrected.

The codecs below operate on real bit patterns so those behaviours
(including the miscorrection pathology) emerge from the arithmetic
rather than being postulated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ProtectionError


class DecodeStatus(enum.Enum):
    """Outcome of decoding a (possibly corrupted) codeword."""

    #: No error detected; data returned as stored.
    CLEAN = "clean"
    #: A single-bit error was detected and corrected.
    CORRECTED = "corrected"
    #: An uncorrectable error was detected (e.g. SECDED double-bit).
    DETECTED_UNCORRECTABLE = "detected_uncorrectable"
    #: An error is present but the code cannot see it, or it was
    #: miscorrected into different-but-"valid" data.  Only observable
    #: by an oracle that knows the original data.
    SILENT = "silent"


@dataclass(frozen=True)
class CodecResult:
    """Result of a decode operation.

    Attributes
    ----------
    status:
        What the *hardware* believes happened (CLEAN / CORRECTED /
        DETECTED_UNCORRECTABLE).  ``SILENT`` is assigned by
        :meth:`Codec.classify`, which has oracle knowledge.
    data:
        The data word handed to the consumer after any correction.
    """

    status: DecodeStatus
    data: int


class Codec:
    """Interface shared by the parity and SECDED codecs."""

    #: Number of data bits per protected word.
    data_bits: int
    #: Number of check bits per protected word.
    check_bits: int
    #: True when a detected error triggers invalidate+refetch (the
    #: write-through parity arrays): the consumer then sees correct
    #: data despite the detection.  SECDED arrays hold dirty data, so
    #: a detected-uncorrectable word really is lost.
    refetch_on_detect: bool = False

    @property
    def word_bits(self) -> int:
        """Total stored bits per word (data + check)."""
        return self.data_bits + self.check_bits

    def encode(self, data: int) -> int:
        """Return the stored codeword for *data*."""
        raise NotImplementedError

    def decode(self, codeword: int) -> CodecResult:
        """Decode a stored codeword, applying correction if possible."""
        raise NotImplementedError

    def classify(self, data: int, flip_mask: int) -> CodecResult:
        """Oracle classification: encode *data*, apply *flip_mask*, decode.

        Unlike :meth:`decode`, this knows the original data, so it can
        distinguish a genuinely clean word from a silent corruption and
        a true correction from a miscorrection.
        """
        self._check_data(data)
        codeword = self.encode(data) ^ flip_mask
        result = self.decode(codeword)
        if result.status == DecodeStatus.DETECTED_UNCORRECTABLE:
            return result
        if result.data != data:
            # The consumer gets wrong data with no (or a wrong) signal.
            return CodecResult(DecodeStatus.SILENT, result.data)
        if flip_mask and result.status == DecodeStatus.CLEAN:
            # Flips cancelled out inside the check bits only -- treat the
            # word as clean since the data survives intact.
            return result
        return result

    def _check_data(self, data: int) -> None:
        if data < 0 or data >> self.data_bits:
            raise ProtectionError(
                f"data word {data:#x} does not fit in {self.data_bits} bits"
            )

    def _check_codeword(self, codeword: int) -> None:
        if codeword < 0 or codeword >> self.word_bits:
            raise ProtectionError(
                f"codeword {codeword:#x} does not fit in {self.word_bits} bits"
            )


class ParityCodec(Codec):
    """Even parity over a data word: one check bit, detect-only.

    Layout: bit ``data_bits`` (the MSB of the codeword) is the parity
    bit; bits ``[0, data_bits)`` hold the data unchanged.
    """

    refetch_on_detect = True

    def __init__(self, data_bits: int = 32) -> None:
        if data_bits <= 0:
            raise ProtectionError("parity codec needs at least 1 data bit")
        self.data_bits = int(data_bits)
        self.check_bits = 1

    def encode(self, data: int) -> int:
        self._check_data(data)
        parity = _popcount(data) & 1
        return data | (parity << self.data_bits)

    def decode(self, codeword: int) -> CodecResult:
        self._check_codeword(codeword)
        data = codeword & ((1 << self.data_bits) - 1)
        stored_parity = codeword >> self.data_bits
        if (_popcount(data) & 1) != stored_parity:
            # Parity mismatch: the entry is invalidated and refetched,
            # so no corrupted data reaches the consumer.
            return CodecResult(DecodeStatus.DETECTED_UNCORRECTABLE, data)
        return CodecResult(DecodeStatus.CLEAN, data)

    def __repr__(self) -> str:
        return f"ParityCodec(data_bits={self.data_bits})"


class SecdedCodec(Codec):
    """Hamming SECDED code: ``k`` data bits, ``r`` check bits + overall parity.

    The default is the classic (72,64) organization used by the X-Gene 2
    L2/L3 caches (64 data bits, 8 check bits).  The construction is the
    extended Hamming code: positions ``1..n`` carry data and Hamming
    check bits (powers of two), plus one overall-parity bit at
    position 0.

    Decoding semantics:

    * syndrome 0, overall parity OK          -> clean
    * syndrome != 0, overall parity WRONG    -> single-bit error, corrected
    * syndrome != 0, overall parity OK       -> double-bit error, detected
    * syndrome 0, overall parity WRONG       -> flip of the parity bit
      itself; data intact, counted as corrected
    """

    def __init__(self, data_bits: int = 64) -> None:
        if data_bits <= 0:
            raise ProtectionError("SECDED codec needs at least 1 data bit")
        self.data_bits = int(data_bits)
        hamming_checks = _hamming_check_count(self.data_bits)
        self.check_bits = hamming_checks + 1  # + overall parity
        self._hamming_checks = hamming_checks
        # Precompute the mapping from codeword position (1-indexed,
        # excluding the overall parity at position 0) to data bit index.
        self._positions = _hamming_positions(self.data_bits, hamming_checks)

    # -- encoding ------------------------------------------------------------

    def encode(self, data: int) -> int:
        self._check_data(data)
        n = self.data_bits + self._hamming_checks
        # Place data bits in non-power-of-two positions.
        word = [0] * (n + 1)  # 1-indexed
        for pos, data_idx in self._positions.items():
            word[pos] = (data >> data_idx) & 1
        # Compute Hamming check bits.
        for c in range(self._hamming_checks):
            p = 1 << c
            parity = 0
            for pos in range(1, n + 1):
                if pos & p and pos != p:
                    parity ^= word[pos]
            word[p] = parity
        # Overall parity over positions 1..n.
        overall = 0
        for pos in range(1, n + 1):
            overall ^= word[pos]
        # Pack: bit 0 = overall parity, bits 1..n = word[1..n].
        packed = overall
        for pos in range(1, n + 1):
            packed |= word[pos] << pos
        return packed

    # -- decoding ------------------------------------------------------------

    def decode(self, codeword: int) -> CodecResult:
        self._check_codeword(codeword)
        n = self.data_bits + self._hamming_checks
        bits = [(codeword >> pos) & 1 for pos in range(n + 1)]
        syndrome = 0
        for c in range(self._hamming_checks):
            p = 1 << c
            parity = 0
            for pos in range(1, n + 1):
                if pos & p:
                    parity ^= bits[pos]
            if parity:
                syndrome |= p
        overall = 0
        for pos in range(0, n + 1):
            overall ^= bits[pos]

        if syndrome == 0 and overall == 0:
            return CodecResult(DecodeStatus.CLEAN, self._extract(bits))
        if syndrome != 0 and overall == 1:
            # Single-bit error (as far as the code can tell): correct it.
            if syndrome <= n:
                bits[syndrome] ^= 1
            # A syndrome beyond n is a multi-bit aliasing artifact; the
            # hardware would still report "corrected" after flipping a
            # phantom position, leaving the data corrupted (silent).
            return CodecResult(DecodeStatus.CORRECTED, self._extract(bits))
        if syndrome != 0 and overall == 0:
            return CodecResult(
                DecodeStatus.DETECTED_UNCORRECTABLE, self._extract(bits)
            )
        # syndrome == 0 and overall == 1: the overall parity bit itself
        # flipped; data is intact.
        return CodecResult(DecodeStatus.CORRECTED, self._extract(bits))

    def _extract(self, bits: List[int]) -> int:
        data = 0
        for pos, data_idx in self._positions.items():
            data |= bits[pos] << data_idx
        return data

    def __repr__(self) -> str:
        return (
            f"SecdedCodec(data_bits={self.data_bits}, "
            f"check_bits={self.check_bits})"
        )


def _popcount(value: int) -> int:
    """Number of set bits in a nonnegative integer."""
    return bin(value).count("1")


def _hamming_check_count(data_bits: int) -> int:
    """Minimum r with 2^r >= data_bits + r + 1."""
    r = 0
    while (1 << r) < data_bits + r + 1:
        r += 1
    return r


def _hamming_positions(data_bits: int, check_bits: int) -> "dict[int, int]":
    """Map codeword positions (1-indexed) to data-bit indices.

    Power-of-two positions hold check bits; everything else holds data,
    filled in increasing position order.
    """
    positions = {}
    data_idx = 0
    pos = 1
    n = data_bits + check_bits
    while data_idx < data_bits:
        if pos > n:
            raise ProtectionError("internal error building Hamming layout")
        if pos & (pos - 1):  # not a power of two
            positions[pos] = data_idx
            data_idx += 1
        pos += 1
    return positions


def flips_from_bit_indices(indices: Tuple[int, ...]) -> int:
    """Build a flip mask from a tuple of bit indices."""
    mask = 0
    for idx in indices:
        if idx < 0:
            raise ProtectionError(f"negative bit index {idx}")
        mask |= 1 << idx
    return mask
