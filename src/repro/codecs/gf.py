"""GF(2) polynomial and GF(2^m) field arithmetic for codec construction.

The DEC-TED and BCH codecs are shortened cyclic codes: their
parity-check columns are remainders of ``x^i`` modulo a generator
polynomial built from minimal polynomials over GF(2^m).  Everything
here works on plain python ints used as coefficient bitmasks (bit ``i``
is the coefficient of ``x^i``), matching the integer bit-twiddling
idiom of :mod:`repro.sram.protection`.

Construction happens once per codec at registry time, so clarity beats
speed; the decode hot path never touches this module.
"""

from __future__ import annotations

from typing import List

from ..errors import CodecError

#: Primitive polynomial x^7 + x^3 + 1 for GF(2^7) (DEC-TED over n=127).
GF7_PRIM = 0x89
#: Primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 for GF(2^8) (BCH, n=255).
GF8_PRIM = 0x11D


def gf2_poly_degree(poly: int) -> int:
    """Degree of a GF(2) polynomial bitmask (-1 for the zero polynomial)."""
    return poly.bit_length() - 1


def gf2_poly_mul(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials."""
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def gf2_poly_mod(a: int, mod: int) -> int:
    """Remainder of *a* divided by *mod* over GF(2)."""
    if mod <= 0:
        raise CodecError("modulus polynomial must be nonzero")
    deg = gf2_poly_degree(mod)
    while gf2_poly_degree(a) >= deg:
        a ^= mod << (gf2_poly_degree(a) - deg)
    return a


class GF2m:
    """The finite field GF(2^m) with exp/log tables over a primitive root.

    ``exp[i] = alpha^i`` and ``log[alpha^i] = i`` for the primitive
    element ``alpha = x``; the exp table is doubled in length so
    products ``exp[log[a] + log[b]]`` never need an explicit modulo.
    """

    def __init__(self, m: int, prim_poly: int) -> None:
        if m < 2 or m > 16:
            raise CodecError(f"field degree {m} outside supported range 2..16")
        if gf2_poly_degree(prim_poly) != m:
            raise CodecError(
                f"primitive polynomial {prim_poly:#x} has degree "
                f"{gf2_poly_degree(prim_poly)}, expected {m}"
            )
        self.m = m
        self.order = (1 << m) - 1
        self.prim_poly = prim_poly
        exp: List[int] = [0] * (2 * self.order)
        log: List[int] = [0] * (1 << m)
        value = 1
        for i in range(self.order):
            exp[i] = value
            log[value] = i
            value <<= 1
            if value >> m:
                value ^= prim_poly
        if value != 1:
            raise CodecError(f"{prim_poly:#x} is not primitive over GF(2^{m})")
        for i in range(self.order, 2 * self.order):
            exp[i] = exp[i - self.order]
        self.exp = exp
        self.log = log

    def mul(self, a: int, b: int) -> int:
        """Field product of two elements."""
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def power(self, exponent: int) -> int:
        """``alpha^exponent`` for the primitive element alpha."""
        return self.exp[exponent % self.order]


def minimal_polynomial(field: GF2m, power: int) -> int:
    """Minimal polynomial of ``alpha^power`` over GF(2), as a bitmask.

    Built as ``prod (x + alpha^c)`` over the conjugacy class
    ``{power * 2^i mod (2^m - 1)}``; the product is computed with field
    coefficients and must collapse to a GF(2) polynomial (all
    coefficients 0 or 1) -- anything else signals a broken field table.
    ``power=0`` yields ``x + 1``.
    """
    power %= field.order
    conjugates = []
    c = power
    while c not in conjugates:
        conjugates.append(c)
        c = (c * 2) % field.order
    # Coefficient list over the field, degree rising with index.
    coeffs: List[int] = [1]
    for c in conjugates:
        root = field.power(c)
        nxt = [0] * (len(coeffs) + 1)
        for i, coeff in enumerate(coeffs):
            nxt[i + 1] ^= coeff
            nxt[i] ^= field.mul(coeff, root)
        coeffs = nxt
    poly = 0
    for i, coeff in enumerate(coeffs):
        if coeff not in (0, 1):
            raise CodecError(
                f"minimal polynomial of alpha^{power} left field "
                f"coefficient {coeff:#x}"
            )
        poly |= coeff << i
    return poly
