"""First-order area/energy cost models for the registered codecs.

A Pareto front needs a cost axis, and for syndrome-decoded linear
block codes a defensible first-order model is pure gate counting
derived from the actual H matrix (the same approach as the classic
ECC area models: XOR trees for encode and syndrome, a comparator
forest for correction, flops for the stored check bits):

* ``encoder_xors``   -- sum over check bits of (fan-in - 1) XOR2 gates,
  fan-in read off the real encode masks;
* ``syndrome_xors``  -- same sum over the H rows (check position
  included), the decoder's syndrome tree;
* ``corrector_gates`` -- ``n * ceil(log2(T + 1))`` comparator/decoder
  gates for a T-entry syndrome match over an n-bit word;
* ``area_gates``     -- the three above plus 4 gate-equivalents per
  stored check bit (the storage flop);
* ``energy_pj``      -- per-access energy with fixed per-gate-class
  coefficients (0.05 pJ per XOR2 in the encode/syndrome trees, 0.01 pJ
  per corrector gate, 0.2 pJ per check-bit flop access).

The absolute numbers are not silicon-calibrated; what matters for the
explorer is that the *ordering* and *relative spacing* across codecs
follow from each code's real structure, so a stronger code pays its
true check-bit and tree-depth price on the Pareto plot.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

from ..sram.protection import Codec, ParityCodec, SecdedCodec, _popcount
from .linear import SyndromeTableCodec

#: Energy coefficients (pJ per access) per gate class.
XOR_PJ = 0.05
CORRECTOR_PJ = 0.01
CHECK_FLOP_PJ = 0.2
#: Gate-equivalents per stored check bit (flop + mux).
CHECK_FLOP_GATES = 4


@dataclass(frozen=True)
class CodecCost:
    """Area/energy/check-bit cost of one codec, gate-counted from H."""

    name: str
    data_bits: int
    check_bits: int
    storage_overhead: float
    encoder_xors: int
    syndrome_xors: int
    corrector_gates: int
    area_gates: int
    energy_pj: float

    def to_dict(self) -> dict:
        return asdict(self)


def _assemble(
    name: str,
    codec: Codec,
    encoder_xors: int,
    syndrome_xors: int,
    corrector_gates: int,
) -> CodecCost:
    area = (
        encoder_xors
        + syndrome_xors
        + corrector_gates
        + CHECK_FLOP_GATES * codec.check_bits
    )
    energy = (
        XOR_PJ * encoder_xors
        + XOR_PJ * syndrome_xors
        + CORRECTOR_PJ * corrector_gates
        + CHECK_FLOP_PJ * codec.check_bits
    )
    return CodecCost(
        name=name,
        data_bits=codec.data_bits,
        check_bits=codec.check_bits,
        storage_overhead=codec.check_bits / codec.data_bits,
        encoder_xors=encoder_xors,
        syndrome_xors=syndrome_xors,
        corrector_gates=corrector_gates,
        area_gates=area,
        energy_pj=round(energy, 4),
    )


def _corrector_gates(word_bits: int, table_entries: int) -> int:
    if table_entries == 0:
        return 0
    return word_bits * math.ceil(math.log2(table_entries + 1))


def table_codec_cost(name: str, codec: SyndromeTableCodec) -> CodecCost:
    """Gate-count a syndrome-table codec from its own masks."""
    encoder = sum(_popcount(mask) - 1 for mask in codec.data_masks if mask)
    syndrome = sum(_popcount(row) - 1 for row in codec.h_rows)
    corrector = _corrector_gates(
        codec.word_bits, len(codec.syndrome_table)
    )
    return _assemble(name, codec, encoder, syndrome, corrector)


def parity_cost(name: str, codec: ParityCodec) -> CodecCost:
    """Even parity: one XOR tree, no corrector."""
    return _assemble(
        name,
        codec,
        encoder_xors=codec.data_bits - 1,
        syndrome_xors=codec.data_bits,  # data tree + stored-bit compare
        corrector_gates=0,
    )


def secded_cost(name: str, codec: SecdedCodec) -> CodecCost:
    """SECDED gate counts from the scalar codec's Hamming layout."""
    n = codec.data_bits + codec._hamming_checks
    encoder = 0
    syndrome = 0
    for c in range(codec._hamming_checks):
        p = 1 << c
        covered = sum(1 for pos in range(1, n + 1) if pos & p)
        encoder += covered - 2  # check position excluded while encoding
        syndrome += covered - 1
    # Overall parity tree over all n + 1 positions.
    encoder += n - 1
    syndrome += n
    corrector = _corrector_gates(codec.word_bits, n + 1)
    return _assemble(name, codec, encoder, syndrome, corrector)


def probe_cost(name: str, codec: Codec) -> CodecCost:
    """Generic fallback: derive columns by probing ``encode`` directly.

    Works for any systematic-enough codec a plugin registers without a
    dedicated cost model; fan-in of check bit j is the number of data
    positions whose encoding toggles it.
    """
    base = codec.encode(0)
    fanin = [0] * codec.check_bits
    for i in range(codec.data_bits):
        delta = codec.encode(1 << i) ^ base ^ (1 << i)
        for j in range(codec.check_bits):
            if (delta >> (codec.data_bits + j)) & 1:
                fanin[j] += 1
    encoder = sum(max(f - 1, 0) for f in fanin)
    syndrome = sum(f for f in fanin)
    corrector = _corrector_gates(codec.word_bits, codec.word_bits)
    return _assemble(name, codec, encoder, syndrome, corrector)
