"""Systematic linear block codes driven by a syndrome lookup table.

Every codec added by the design-space subsystem (DEC-TED, SEC-DAEC,
BCH) is a systematic linear code: data bits occupy codeword positions
``[0, k)``, check bits occupy ``[k, k + r)``, and the parity-check
matrix columns for the check positions are unit vectors.  Such a code
is fully described by its ``k`` data columns (the r-bit syndrome each
data position contributes) plus the set of error patterns it promises
to correct.

:class:`SyndromeTableCodec` turns that description into a working
:class:`~repro.sram.protection.Codec`: it derives the H-matrix rows,
precomputes a syndrome -> flip-mask table over the declared correctable
patterns, and validates at construction time that those patterns have
distinct nonzero syndromes (the injectivity that makes the correction
promise sound).  Any pattern outside the table either lands on syndrome
zero / an unused syndrome (detected or invisible) or *aliases* onto a
table entry and is miscorrected -- the same arithmetic-emergent SILENT
pathology the SECDED codec exhibits for triples.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Sequence, Tuple

from ..errors import CodecError
from ..sram.protection import Codec, CodecResult, DecodeStatus


def _parity(value: int) -> int:
    """Parity (popcount mod 2) of a nonnegative integer."""
    return bin(value).count("1") & 1


def patterns_up_to_weight(word_bits: int, max_weight: int) -> Iterator[int]:
    """All nonzero flip masks over *word_bits* with weight <= *max_weight*."""
    for weight in range(1, max_weight + 1):
        for indices in itertools.combinations(range(word_bits), weight):
            mask = 0
            for idx in indices:
                mask |= 1 << idx
            yield mask


def adjacent_pair_patterns(word_bits: int) -> Iterator[int]:
    """All flip masks of two adjacent codeword bits, including the
    ``word_bits - 1 -> 0`` wraparound pair (a word is a ring as far as
    physically adjacent cells are concerned once column muxing folds
    the array)."""
    for pos in range(word_bits - 1):
        yield 0b11 << pos
    yield (1 << (word_bits - 1)) | 1


class SyndromeTableCodec(Codec):
    """Systematic linear code with table-driven syndrome decoding.

    Parameters
    ----------
    data_bits, check_bits:
        The (k, r) geometry; the codeword is ``r + k`` bits with data in
        the low ``k`` positions.
    data_columns:
        ``k`` parity-check columns, one r-bit value per data position.
    correctable_patterns:
        Iterable of n-bit flip masks the code corrects.  Their syndromes
        must be distinct and nonzero or construction raises
        :class:`~repro.errors.CodecError`.
    """

    def __init__(
        self,
        data_bits: int,
        check_bits: int,
        data_columns: Sequence[int],
        correctable_patterns: Iterable[int],
    ) -> None:
        if data_bits <= 0 or check_bits <= 0:
            raise CodecError("codec needs positive data and check bit counts")
        if len(data_columns) != data_bits:
            raise CodecError(
                f"expected {data_bits} data columns, got {len(data_columns)}"
            )
        self.data_bits = int(data_bits)
        self.check_bits = int(check_bits)
        for i, column in enumerate(data_columns):
            if column <= 0 or column >> check_bits:
                raise CodecError(
                    f"data column {i} value {column:#x} outside "
                    f"(0, 2^{check_bits})"
                )
        self.data_columns: Tuple[int, ...] = tuple(int(c) for c in data_columns)
        # Row j of H as a codeword mask: the data positions whose column
        # has bit j set, plus the check position k + j itself.
        data_masks = []
        for j in range(check_bits):
            mask = 0
            for i, column in enumerate(self.data_columns):
                if (column >> j) & 1:
                    mask |= 1 << i
            data_masks.append(mask)
        self.data_masks: Tuple[int, ...] = tuple(data_masks)
        self.h_rows: Tuple[int, ...] = tuple(
            data_masks[j] | (1 << (data_bits + j)) for j in range(check_bits)
        )
        self.syndrome_table: Dict[int, int] = self._build_table(
            correctable_patterns
        )

    # -- construction --------------------------------------------------------

    def _column_syndrome(self, position: int) -> int:
        if position < self.data_bits:
            return self.data_columns[position]
        return 1 << (position - self.data_bits)

    def _pattern_syndrome(self, pattern: int) -> int:
        syndrome = 0
        remaining = pattern
        while remaining:
            low = remaining & -remaining
            syndrome ^= self._column_syndrome(low.bit_length() - 1)
            remaining ^= low
        return syndrome

    def _build_table(self, patterns: Iterable[int]) -> Dict[int, int]:
        table: Dict[int, int] = {}
        owners: Dict[int, int] = {}
        for pattern in patterns:
            if pattern <= 0 or pattern >> self.word_bits:
                raise CodecError(
                    f"correctable pattern {pattern:#x} outside the "
                    f"{self.word_bits}-bit codeword"
                )
            syndrome = self._pattern_syndrome(pattern)
            if syndrome == 0:
                raise CodecError(
                    f"correctable pattern {pattern:#x} has zero syndrome "
                    "(it is a codeword)"
                )
            if syndrome in owners and owners[syndrome] != pattern:
                raise CodecError(
                    f"patterns {owners[syndrome]:#x} and {pattern:#x} "
                    f"collide on syndrome {syndrome:#x}"
                )
            owners[syndrome] = pattern
            table[syndrome] = pattern
        return table

    # -- codec interface -----------------------------------------------------

    def encode(self, data: int) -> int:
        self._check_data(data)
        checks = 0
        for j, mask in enumerate(self.data_masks):
            checks |= _parity(data & mask) << j
        return data | (checks << self.data_bits)

    def decode(self, codeword: int) -> CodecResult:
        self._check_codeword(codeword)
        syndrome = 0
        for j, row in enumerate(self.h_rows):
            syndrome |= _parity(codeword & row) << j
        data_mask = (1 << self.data_bits) - 1
        if syndrome == 0:
            return CodecResult(DecodeStatus.CLEAN, codeword & data_mask)
        flips = self.syndrome_table.get(syndrome)
        if flips is not None:
            corrected = codeword ^ flips
            return CodecResult(DecodeStatus.CORRECTED, corrected & data_mask)
        return CodecResult(
            DecodeStatus.DETECTED_UNCORRECTABLE, codeword & data_mask
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(data_bits={self.data_bits}, "
            f"check_bits={self.check_bits}, "
            f"correctable={len(self.syndrome_table)})"
        )
