"""Extended BCH codes over GF(2^8), shortened to 64 data bits.

``BchCodec(t)`` corrects every pattern of weight <= t and *guarantees*
detection of weight t + 1: the generator includes the ``(x + 1)``
factor alongside the odd minimal polynomials ``m1, m3, ..., m_{2t-1}``,
giving roots ``alpha^0 .. alpha^{2t}`` and designed distance
``2t + 2`` (even-weight extended BCH).  Without that factor a plain
BCH code has distance ``2t + 1`` and a weight-(t+1) error can land
exactly between codewords; with it, weight t + 1 can neither be a
codeword offset nor alias onto a weight-<= t correction, so it always
raises DETECTED_UNCORRECTABLE.

Geometries (k = 64):

* ``t=2``: r = 1 + 8 + 8 = 17 check bits, (81,64), distance >= 6.
* ``t=3``: r = 1 + 8 + 8 + 8 = 25 check bits, (89,64), distance >= 8.

Weight t + 2 may miscorrect through a weight-(2t+2) codeword -- the
aliasing pathology, two weights beyond the correction radius.

The t = 3 syndrome table covers all ~117k weight-<=3 patterns over 89
bits; building it takes on the order of a second, which is why the
registry caches codec instances.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from ..errors import CodecError
from .gf import GF8_PRIM, GF2m, gf2_poly_degree, gf2_poly_mod, gf2_poly_mul, minimal_polynomial
from .linear import SyndromeTableCodec, patterns_up_to_weight

#: Data bits of the shortened organizations.
BCH_DATA_BITS = 64


@lru_cache(maxsize=None)
def _bch_generator(t: int) -> int:
    """Generator polynomial ``(x+1) * m1 * m3 * ... * m_{2t-1}``."""
    field = GF2m(8, GF8_PRIM)
    generator = minimal_polynomial(field, 0)
    for j in range(1, 2 * t, 2):
        generator = gf2_poly_mul(generator, minimal_polynomial(field, j))
    return generator


@lru_cache(maxsize=None)
def _bch_columns(t: int, data_bits: int) -> Tuple[int, ...]:
    """Systematic parity-check columns: ``x^(r + i) mod g(x)``."""
    generator = _bch_generator(t)
    r = gf2_poly_degree(generator)
    return tuple(
        gf2_poly_mod(1 << (r + i), generator) for i in range(data_bits)
    )


class BchCodec(SyndromeTableCodec):
    """Extended BCH(t): corrects weight <= t, detects weight t + 1."""

    def __init__(self, t: int = 2) -> None:
        if t not in (2, 3):
            raise CodecError(f"BchCodec supports t in (2, 3), got {t}")
        self.t = int(t)
        columns = _bch_columns(self.t, BCH_DATA_BITS)
        check_bits = gf2_poly_degree(_bch_generator(self.t))
        word_bits = BCH_DATA_BITS + check_bits
        super().__init__(
            BCH_DATA_BITS,
            check_bits,
            columns,
            patterns_up_to_weight(word_bits, self.t),
        )

    def __repr__(self) -> str:
        return (
            f"BchCodec(t={self.t}, data_bits={self.data_bits}, "
            f"check_bits={self.check_bits})"
        )
