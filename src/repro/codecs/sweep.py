"""The codec x voltage x workload explorer sweep.

Each sweep *cell* fixes one (codec, operating point, workload) triple
and pushes a batch of MBU-realistic strikes through the codec's real
encode/corrupt/decode arithmetic on the vectorized path: cluster sizes
come from the calibrated :class:`~repro.sram.mbu.MbuModel` at the
cell's undervolt, interleaving folds each physical cluster into
per-word adjacent runs, and the batched ``classify`` splits the
outcomes into clean / corrected / detected / silent.  SILENT events
are *emergent* -- they happen exactly when a pattern aliases onto the
codec's syndrome table (SECDED triples, DAEC non-adjacent doubles,
DEC-TED quads), never by postulate.

Cells are planned as ordinary scheduler work units, so a sweep shards,
leases, checkpoints, and resumes through the same
:class:`~repro.scheduler.Broker`/:class:`~repro.scheduler.DirectoryStore`
machinery as any campaign, and two brokers can share one on-disk sweep.

:func:`assemble_pareto` turns the committed cell payloads into per-cell
FIT estimates (Garwood intervals on event counts, Wilson interval on
the silent fraction, scaled by the calibrated L3 rate model and the
workload's detection efficiency down to NYC reference flux) and
extracts the per-(point, workload) Pareto front over
(FIT, area, energy).  Split-half Poisson pair gates ride along so a
sweep validates its own statistics.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..constants import (
    FIT_HOURS,
    NYC_FLUX_PER_CM2_HOUR,
    TNF_HALO_FLUX_PER_CM2_S,
)
from ..core.confidence import binomial_interval, poisson_interval
from ..engine.executor import WorkUnit
from ..errors import CodecError
from ..injection.calibration import LevelRateModel
from ..rng import RngStreams
from ..scheduler.planner import CampaignPlan, PlannedUnit
from ..soc.geometry import CacheLevel
from ..sram.mbu import MbuModel
from ..tech import DEFAULT_NODE, get_node
from ..validate.gates import GateResult, poisson_pair_gate
from ..workloads.profiles import PROFILES
from .registry import get_codec, list_codecs
from .vector import CLEAN, CORRECTED, DUE, SILENT, pack_masks

#: The paper's four operating points as (pmd_mv, soc_mv) pairs.
DEFAULT_POINTS: Tuple[Tuple[int, int], ...] = (
    (980, 950),
    (930, 925),
    (920, 920),
    (790, 950),
)
#: Default codec axis (bch-t3 is opt-in: its table build dominates).
DEFAULT_CODECS: Tuple[str, ...] = (
    "parity",
    "secded",
    "dected",
    "sec-daec",
    "bch-t2",
)
#: Default workload axis: reuse-heavy, streaming, and compute-bound.
DEFAULT_WORKLOADS: Tuple[str, ...] = ("CG", "FT", "EP")

#: Acceleration factor from beam flux down to NYC reference flux.
_ACCELERATION = TNF_HALO_FLUX_PER_CM2_S * 3600.0 / NYC_FLUX_PER_CM2_HOUR


@dataclass(frozen=True)
class SweepSpec:
    """Frozen, hashable description of one explorer sweep.

    The config hash (and hence the submission id and every unit id) is
    derived from the canonical JSON of all physics-relevant fields;
    ``name`` is display-only and excluded, mirroring
    :class:`~repro.scheduler.CampaignSpec`.
    """

    codecs: Tuple[str, ...] = DEFAULT_CODECS
    points: Tuple[Tuple[int, int], ...] = DEFAULT_POINTS
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    strikes: int = 2000
    seed: int = 2023
    interleave: int = 1
    nodes: Tuple[str, ...] = (DEFAULT_NODE,)
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "codecs", tuple(self.codecs))
        object.__setattr__(
            self, "points", tuple((int(p), int(s)) for p, s in self.points)
        )
        object.__setattr__(self, "workloads", tuple(self.workloads))
        if not self.nodes:
            raise CodecError("sweep needs at least one technology node")
        # Canonicalize through the registry ("28nm" -> "xgene2-28") so
        # aliases hash the same and unknown names fail at spec time.
        object.__setattr__(
            self, "nodes", tuple(get_node(n).name for n in self.nodes)
        )
        if len(set(self.nodes)) != len(self.nodes):
            raise CodecError("duplicate node in sweep spec")
        if not self.codecs:
            raise CodecError("sweep needs at least one codec")
        known = set(list_codecs())
        for codec in self.codecs:
            if codec not in known:
                raise CodecError(
                    f"unknown codec {codec!r}; registered: "
                    f"{', '.join(sorted(known))}"
                )
        if len(set(self.codecs)) != len(self.codecs):
            raise CodecError("duplicate codec in sweep spec")
        if not self.points:
            raise CodecError("sweep needs at least one operating point")
        for pmd_mv, soc_mv in self.points:
            if pmd_mv <= 0 or soc_mv <= 0:
                raise CodecError("operating-point voltages must be positive")
        if len(set(self.points)) != len(self.points):
            raise CodecError("duplicate operating point in sweep spec")
        if not self.workloads:
            raise CodecError("sweep needs at least one workload")
        for workload in self.workloads:
            if workload not in PROFILES:
                raise CodecError(
                    f"unknown workload {workload!r}; known: "
                    f"{', '.join(sorted(PROFILES))}"
                )
        if len(set(self.workloads)) != len(self.workloads):
            raise CodecError("duplicate workload in sweep spec")
        if self.strikes < 2:
            raise CodecError("sweep needs at least 2 strikes per cell")
        if self.interleave < 1:
            raise CodecError("interleave factor must be >= 1")

    @property
    def config_hash(self) -> str:
        data = {
            "kind": "codec-sweep",
            "codecs": list(self.codecs),
            "points": [list(p) for p in self.points],
            "workloads": list(self.workloads),
            "strikes": self.strikes,
            "seed": self.seed,
            "interleave": self.interleave,
        }
        # The node axis folds in only when non-default, so every
        # pre-existing sweep keeps its submission id and unit ids.
        if self.nodes != (DEFAULT_NODE,):
            data["nodes"] = list(self.nodes)
        canonical = json.dumps(
            data,
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @property
    def submission_id(self) -> str:
        return f"sub-{self.config_hash[:12]}"

    def to_dict(self) -> dict:
        data = {
            "codecs": list(self.codecs),
            "points": [list(p) for p in self.points],
            "workloads": list(self.workloads),
            "strikes": self.strikes,
            "seed": self.seed,
            "interleave": self.interleave,
            "name": self.name,
        }
        if self.nodes != (DEFAULT_NODE,):
            data["nodes"] = list(self.nodes)
        return data

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepSpec":
        known = {
            "codecs",
            "points",
            "workloads",
            "strikes",
            "seed",
            "interleave",
            "nodes",
            "name",
        }
        unknown = set(payload) - known
        if unknown:
            raise CodecError(
                f"unknown sweep spec keys: {', '.join(sorted(unknown))}"
            )
        kwargs = dict(payload)
        if "points" in kwargs:
            kwargs["points"] = tuple(tuple(p) for p in kwargs["points"])
        if "nodes" in kwargs:
            kwargs["nodes"] = tuple(kwargs["nodes"])
        return cls(**kwargs)


@dataclass(frozen=True)
class SweepCell:
    """One schedulable (codec, node, point, workload) cell -- picklable."""

    label: str
    codec: str
    pmd_mv: int
    soc_mv: int
    workload: str
    strikes: int
    seed: int
    interleave: int
    node: str = DEFAULT_NODE


def sweep_cells(spec: SweepSpec) -> List[SweepCell]:
    """Expand a spec into ordered cells (codec-major, plan order).

    The spec's points are 28 nm reference voltages; non-default nodes
    scale them onto their own regulator grid, and their cell labels
    carry the node name.  Default-node cells keep the historical label
    format and voltages exactly, so pre-existing sweeps re-plan to the
    same unit ids.
    """
    cells = []
    for codec in spec.codecs:
        for node_name in spec.nodes:
            node = get_node(node_name)
            for ref_pmd, ref_soc in spec.points:
                if node.is_default:
                    pmd_mv, soc_mv = ref_pmd, ref_soc
                    label_prefix = codec
                else:
                    pmd_mv = node.scale_pmd_mv(ref_pmd)
                    soc_mv = node.scale_soc_mv(ref_soc)
                    label_prefix = f"{codec}-{node_name}"
                for workload in spec.workloads:
                    cells.append(
                        SweepCell(
                            label=(
                                f"{label_prefix}-{pmd_mv}-{soc_mv}-"
                                f"{workload}"
                            ),
                            codec=codec,
                            pmd_mv=pmd_mv,
                            soc_mv=soc_mv,
                            workload=workload,
                            strikes=spec.strikes,
                            seed=spec.seed,
                            interleave=spec.interleave,
                            node=node_name,
                        )
                    )
    labels = [cell.label for cell in cells]
    if len(set(labels)) != len(labels):
        raise CodecError(
            "node scaling collapsed distinct sweep points onto the same "
            "cell label; spread the reference points further apart"
        )
    return cells


def _cluster_flip_lengths(
    sizes: np.ndarray, interleave: int
) -> np.ndarray:
    """Fold physical cluster sizes into per-word adjacent-run lengths.

    Mirrors :meth:`MbuModel.split_by_interleaving`: a physical run of
    ``size`` adjacent cells lands ``ceil((size - j) / interleave)``
    bits in the word at interleave offset ``j``.  The result is one
    run length per affected word, in a deterministic order (all
    offset-0 words first, then offset-1, ...), so each strike can
    produce several protected-word events.
    """
    lengths = []
    for j in range(interleave):
        in_word = np.ceil((sizes - j) / interleave).astype(np.int64)
        lengths.append(in_word[sizes > j])
    return np.concatenate(lengths)


def run_cell(cell: SweepCell) -> dict:
    """Execute one sweep cell: strike, fold, classify, count.

    Deterministic in the cell alone (seed + label derive the RNG
    stream), so any broker/worker/resume interleaving commits the same
    payload bytes -- the property the byte-identity CI check pins.
    """
    bundle = get_codec(cell.codec)
    vec = bundle.vectorized
    codec = bundle.codec
    rng = RngStreams(cell.seed).child("explorer", cell=cell.label)
    rates = LevelRateModel.for_node(get_node(cell.node))
    undervolt = rates.undervolt_fraction(
        CacheLevel.L3, float(cell.pmd_mv), float(cell.soc_mv)
    )
    sizes = MbuModel().sample_sizes(rng, undervolt, cell.strikes)
    lengths = _cluster_flip_lengths(sizes, cell.interleave)
    events = int(lengths.shape[0])
    word_bits = codec.word_bits
    lengths = np.minimum(lengths, word_bits)
    starts = rng.integers(0, word_bits - lengths + 1)
    if codec.data_bits >= 64:
        high = rng.integers(0, 1 << 32, size=events, dtype=np.uint64)
        low = rng.integers(0, 1 << 32, size=events, dtype=np.uint64)
        data = (high << np.uint64(32)) | low
    else:
        data = rng.integers(
            0, 1 << codec.data_bits, size=events, dtype=np.uint64
        )
    masks = [
        ((1 << int(length)) - 1) << int(start)
        for length, start in zip(lengths, starts)
    ]
    flips = pack_masks(masks, vec.limbs)
    status, _ = vec.classify_batch(data, flips)
    half = events // 2
    counts = np.bincount(status, minlength=4)
    first = np.bincount(status[:half], minlength=4)
    second = np.bincount(status[half:], minlength=4)

    def _split(portion: np.ndarray) -> dict:
        return {
            "clean": int(portion[CLEAN]),
            "corrected": int(portion[CORRECTED]),
            "detected": int(portion[DUE]),
            "silent": int(portion[SILENT]),
        }

    payload = {
        "label": cell.label,
        "codec": cell.codec,
        "pmd_mv": cell.pmd_mv,
        "soc_mv": cell.soc_mv,
        "workload": cell.workload,
        "strikes": cell.strikes,
        "interleave": cell.interleave,
        "events": events,
    }
    if cell.node != DEFAULT_NODE:
        payload["node"] = cell.node
    payload.update(_split(counts))
    payload["halves"] = {"first": _split(first), "second": _split(second)}
    return payload


def plan_sweep(spec: SweepSpec) -> CampaignPlan:
    """Plan a sweep as broker-schedulable units with stable ids."""
    config_hash = spec.config_hash
    prefix = config_hash[:12]
    units = tuple(
        PlannedUnit(
            unit_id=f"{prefix}/{cell.label}",
            label=cell.label,
            seq=seq,
            unit=WorkUnit(key=cell.label, fn=run_cell, args=(cell,)),
        )
        for seq, cell in enumerate(sweep_cells(spec))
    )
    return CampaignPlan(
        config_hash=config_hash,
        units=units,
        name=spec.name or f"explore-{prefix}",
        seed=spec.seed,
        time_scale=1.0,
    )


# -- FIT assembly and the Pareto front ----------------------------------------


def _interval_dict(interval) -> dict:
    return {
        "value": interval.value,
        "lower": interval.lower,
        "upper": interval.upper,
        "level": interval.level,
    }


def _cell_fit(payload: dict) -> Tuple[dict, List[GateResult]]:
    """FIT estimates (Garwood/Wilson) + split-half gates for one cell."""
    rates = LevelRateModel.for_node(
        get_node(payload.get("node", DEFAULT_NODE))
    )
    pmd_mv = float(payload["pmd_mv"])
    soc_mv = float(payload["soc_mv"])
    profile = PROFILES[payload["workload"]]
    # Raw detected-upset rate of the L3 (the codec-bearing array) at
    # this point, thinned by what this workload actually surfaces.
    raw_rate = rates.rate_per_min(
        CacheLevel.L3, True, pmd_mv, soc_mv
    ) + rates.rate_per_min(CacheLevel.L3, False, pmd_mv, soc_mv)
    surfaced_rate = raw_rate * profile.detection_efficiency("L3 Cache")
    events = max(int(payload["events"]), 1)
    # events/hour at NYC flux, split over this cell's strike batch.
    fit_factor = surfaced_rate * 60.0 / _ACCELERATION * FIT_HOURS / events
    detected = int(payload["detected"])
    silent = int(payload["silent"])
    fit_due = poisson_interval(detected).scaled(fit_factor)
    fit_sdc = poisson_interval(silent).scaled(fit_factor * profile.avf_sdc)
    fit_total = poisson_interval(detected + silent).scaled(fit_factor)
    silent_fraction = binomial_interval(silent, events)
    halves = payload["halves"]
    gates = [
        poisson_pair_gate(
            f"explore/{payload['label']}/detected-halves",
            halves["first"]["detected"],
            halves["second"]["detected"],
        ),
        poisson_pair_gate(
            f"explore/{payload['label']}/silent-halves",
            halves["first"]["silent"],
            halves["second"]["silent"],
        ),
    ]
    cell = dict(payload)
    cell["fit_due"] = _interval_dict(fit_due)
    cell["fit_sdc"] = _interval_dict(fit_sdc)
    cell["fit_total"] = _interval_dict(fit_total)
    cell["silent_fraction"] = _interval_dict(silent_fraction)
    return cell, gates


def _dominates(a: Tuple[float, ...], b: Tuple[float, ...]) -> bool:
    """Minimization dominance: a <= b everywhere, < somewhere."""
    return all(x <= y for x, y in zip(a, b)) and any(
        x < y for x, y in zip(a, b)
    )


def assemble_pareto(spec: SweepSpec, payloads: Sequence[dict]) -> dict:
    """Assemble committed cell payloads into the pareto.json document.

    Cells ride in plan order; the Pareto front minimizes
    (total FIT, area gates, energy pJ) independently per
    (operating point, workload) slice.  ``ok`` aggregates the
    split-half statistical gates.
    """
    expected = {cell.label for cell in sweep_cells(spec)}
    seen = {payload["label"] for payload in payloads}
    missing = expected - seen
    if missing:
        raise CodecError(
            f"sweep is missing {len(missing)} cell(s): "
            f"{', '.join(sorted(missing))}"
        )
    costs = {name: get_codec(name).cost.to_dict() for name in spec.codecs}
    cells = []
    gates: List[GateResult] = []
    for payload in payloads:
        cell, cell_gates = _cell_fit(payload)
        cell["cost"] = costs[cell["codec"]]
        cells.append(cell)
        gates.extend(cell_gates)
    # Pareto extraction per (node, point, workload) slice, over codecs.
    slices: Dict[Tuple[str, int, int, str], List[dict]] = {}
    for c in cells:
        key = (
            c.get("node", DEFAULT_NODE),
            c["pmd_mv"],
            c["soc_mv"],
            c["workload"],
        )
        slices.setdefault(key, []).append(c)
    front_labels = set()
    for slice_cells in slices.values():
        objectives = {
            c["label"]: (
                c["fit_total"]["value"],
                float(c["cost"]["area_gates"]),
                float(c["cost"]["energy_pj"]),
            )
            for c in slice_cells
        }
        for c in slice_cells:
            mine = objectives[c["label"]]
            if not any(
                _dominates(objectives[other["label"]], mine)
                for other in slice_cells
                if other is not c
            ):
                front_labels.add(c["label"])
    for c in cells:
        c["on_front"] = c["label"] in front_labels
    front = []
    for c in cells:
        if not c["on_front"]:
            continue
        entry = {
            "label": c["label"],
            "codec": c["codec"],
            "pmd_mv": c["pmd_mv"],
            "soc_mv": c["soc_mv"],
            "workload": c["workload"],
            "fit_total": c["fit_total"]["value"],
            "area_gates": c["cost"]["area_gates"],
            "energy_pj": c["cost"]["energy_pj"],
        }
        if "node" in c:
            entry["node"] = c["node"]
        front.append(entry)
    return {
        "schema": 1,
        "spec": spec.to_dict(),
        "config_hash": spec.config_hash,
        "submission_id": spec.submission_id,
        "cells": cells,
        "pareto": front,
        "costs": costs,
        "gates": [gate.to_dict() for gate in gates],
        "ok": all(gate.ok for gate in gates),
    }
