"""String-keyed codec registry: the stable plugin API of ``repro.codecs``.

The registry is the one place the rest of the system (explorer sweeps,
differential pairings, benchmarks, CLI) learns what codecs exist.  Each
entry bundles three factories:

* ``factory``        -- the scalar :class:`~repro.sram.protection.Codec`
  (always the semantic reference);
* ``vector_factory`` -- the batched decoder; defaults to
  :class:`~repro.codecs.vector.ScalarFallbackVectorized`, so a plugin
  is *correct* the moment it registers and fast when it cares;
* ``cost_factory``   -- the area/energy model; defaults to
  :func:`~repro.codecs.cost.probe_cost`.

Instances are built lazily and cached per registered name (BCH t=3
carries a ~117k-entry syndrome table; building it once is plenty).

The built-in ``parity`` and ``secded`` entries adapt the codecs from
:mod:`repro.sram.protection` **unchanged** -- they are the paper's
Table 1 protection and the conformance anchor; the registry wraps, it
does not fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import CodecError
from ..sram.protection import Codec, ParityCodec, SecdedCodec
from .bch import BchCodec
from .cost import (
    CodecCost,
    parity_cost,
    probe_cost,
    secded_cost,
    table_codec_cost,
)
from .dected import DecTedCodec
from .linear import SyndromeTableCodec
from .secdaec import SecDaecCodec
from .vector import (
    ScalarFallbackVectorized,
    VectorizedCodec,
    VectorizedParity,
    VectorizedSecded,
    VectorizedTableCodec,
)

CodecFactory = Callable[[], Codec]
VectorFactory = Callable[[Codec], VectorizedCodec]
CostFactory = Callable[[str, Codec], CodecCost]


@dataclass(frozen=True)
class CodecPlugin:
    """Immutable registration record for one codec name."""

    name: str
    description: str
    factory: CodecFactory
    vector_factory: VectorFactory
    cost_factory: CostFactory


class RegisteredCodec:
    """Lazily-built codec bundle: scalar + vectorized + cost model."""

    def __init__(self, plugin: CodecPlugin) -> None:
        self.plugin = plugin
        self._codec: Optional[Codec] = None
        self._vectorized: Optional[VectorizedCodec] = None
        self._cost: Optional[CodecCost] = None

    @property
    def name(self) -> str:
        return self.plugin.name

    @property
    def description(self) -> str:
        return self.plugin.description

    @property
    def codec(self) -> Codec:
        if self._codec is None:
            self._codec = self.plugin.factory()
        return self._codec

    @property
    def vectorized(self) -> VectorizedCodec:
        if self._vectorized is None:
            self._vectorized = self.plugin.vector_factory(self.codec)
        return self._vectorized

    @property
    def cost(self) -> CodecCost:
        if self._cost is None:
            self._cost = self.plugin.cost_factory(self.name, self.codec)
        return self._cost

    def __repr__(self) -> str:
        return f"RegisteredCodec({self.name!r})"


_REGISTRY: Dict[str, RegisteredCodec] = {}


def register_codec(
    name: str,
    factory: CodecFactory,
    *,
    description: str = "",
    vector_factory: Optional[VectorFactory] = None,
    cost_factory: Optional[CostFactory] = None,
    replace: bool = False,
) -> CodecPlugin:
    """Register a codec under a stable string key.

    Raises :class:`~repro.errors.CodecError` on a duplicate name unless
    ``replace=True`` (tests and downstream experiments swap entries in
    with that).
    """
    if not name or "/" in name or any(ch.isspace() for ch in name):
        raise CodecError(f"invalid codec name {name!r}")
    if name in _REGISTRY and not replace:
        raise CodecError(
            f"codec {name!r} is already registered; pass replace=True "
            "to override"
        )
    plugin = CodecPlugin(
        name=name,
        description=description,
        factory=factory,
        vector_factory=vector_factory or ScalarFallbackVectorized,
        cost_factory=cost_factory or probe_cost,
    )
    _REGISTRY[name] = RegisteredCodec(plugin)
    return plugin


def unregister_codec(name: str) -> None:
    """Remove a registered codec (primarily for test isolation)."""
    if name not in _REGISTRY:
        raise CodecError(f"unknown codec {name!r}")
    del _REGISTRY[name]


def get_codec(name: str) -> RegisteredCodec:
    """Look up a registered codec bundle by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise CodecError(
            f"unknown codec {name!r}; registered: {known}"
        ) from None


def list_codecs() -> List[str]:
    """Sorted names of all registered codecs."""
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    register_codec(
        "parity",
        lambda: ParityCodec(data_bits=32),
        description="Even parity (33,32): detect-only, refetch on error "
        "(paper Table 1, TLB/L1 arrays)",
        vector_factory=VectorizedParity,
        cost_factory=parity_cost,
    )
    register_codec(
        "secded",
        lambda: SecdedCodec(data_bits=64),
        description="Hamming SECDED(72,64): correct 1, detect 2 "
        "(paper Table 1, L2/L3 arrays)",
        vector_factory=VectorizedSecded,
        cost_factory=secded_cost,
    )

    def _table(name: str, factory: Callable[[], SyndromeTableCodec], desc: str) -> None:
        register_codec(
            name,
            factory,
            description=desc,
            vector_factory=VectorizedTableCodec,
            cost_factory=table_codec_cost,
        )

    _table(
        "dected",
        DecTedCodec,
        "DEC-TED(80,64): correct <= 2, detect 3 (shortened extended BCH)",
    )
    _table(
        "sec-daec",
        SecDaecCodec,
        "SEC-DAEC(72,64): correct singles + adjacent doubles "
        "(MBU-oriented, same overhead as SECDED)",
    )
    _table(
        "bch-t2",
        lambda: BchCodec(t=2),
        "Extended BCH(81,64) t=2: correct <= 2, detect 3",
    )
    _table(
        "bch-t3",
        lambda: BchCodec(t=3),
        "Extended BCH(89,64) t=3: correct <= 3, detect 4",
    )


_register_builtins()
