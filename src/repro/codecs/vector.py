"""Vectorized codec hot path: batched syndrome decoding over numpy.

The explorer sweeps classify tens of thousands of corrupted words per
cell; doing that through the scalar :class:`~repro.sram.protection.Codec`
interface would dominate the sweep.  This module mirrors the injector's
vectorization strategy: codewords are packed into ``(N, L)`` uint64
limb matrices (``L = ceil(word_bits / 64)``, so 1 or 2 for every
registered codec), the parity-check matrix is packed the same way, and
a decode is a handful of whole-batch popcount/XOR/searchsorted
operations instead of a per-word python loop.

Statuses travel as small integer codes (:data:`CLEAN` .. :data:`SILENT`)
so outcome counting is a ``bincount``; :data:`STATUS_OF_CODE` maps back
to :class:`~repro.sram.protection.DecodeStatus` at the boundary.

Every vectorized decoder keeps its scalar twin as the differential
reference -- the ``codec_scalar_vs_vectorized`` pairing in
:mod:`repro.validate.differential` asserts exact status and data
equality between the two paths for every registered codec.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..errors import CodecError
from ..sram.protection import (
    Codec,
    DecodeStatus,
    ParityCodec,
    SecdedCodec,
)
from .linear import SyndromeTableCodec

#: Integer status codes used on the batched path.
CLEAN = 0
CORRECTED = 1
DUE = 2
SILENT = 3

#: Batched status code -> DecodeStatus, index-aligned.
STATUS_OF_CODE: Tuple[DecodeStatus, ...] = (
    DecodeStatus.CLEAN,
    DecodeStatus.CORRECTED,
    DecodeStatus.DETECTED_UNCORRECTABLE,
    DecodeStatus.SILENT,
)
#: DecodeStatus -> batched status code.
CODE_OF_STATUS = {status: code for code, status in enumerate(STATUS_OF_CODE)}

_U64 = np.uint64


def limbs_for(word_bits: int) -> int:
    """Number of uint64 limbs needed for *word_bits*-bit codewords."""
    return (word_bits + 63) // 64


if hasattr(np, "bitwise_count"):

    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array, as int64."""
        return np.bitwise_count(values).astype(np.int64)

else:  # pragma: no cover - numpy < 2.0 fallback

    def popcount64(values: np.ndarray) -> np.ndarray:
        """Per-element popcount of a uint64 array (SWAR), as int64."""
        v = values.astype(np.uint64, copy=True)
        v -= (v >> _U64(1)) & _U64(0x5555555555555555)
        v = (v & _U64(0x3333333333333333)) + (
            (v >> _U64(2)) & _U64(0x3333333333333333)
        )
        v = (v + (v >> _U64(4))) & _U64(0x0F0F0F0F0F0F0F0F)
        return ((v * _U64(0x0101010101010101)) >> _U64(56)).astype(np.int64)


def pack_masks(masks: Sequence[int], limbs: int) -> np.ndarray:
    """Pack python-int bit masks into an ``(N, limbs)`` uint64 matrix."""
    packed = np.zeros((len(masks), limbs), dtype=_U64)
    for i, mask in enumerate(masks):
        for limb in range(limbs):
            packed[i, limb] = (mask >> (64 * limb)) & 0xFFFFFFFFFFFFFFFF
    return packed


def _pack_one(mask: int, limbs: int) -> np.ndarray:
    return pack_masks([mask], limbs)[0]


class VectorizedCodec:
    """Base class: batched encode/decode/classify over (N, L) limbs.

    ``classify_batch`` reproduces :meth:`Codec.classify` exactly:
    detected-uncorrectable passes through, any surviving data mismatch
    becomes SILENT, and flips that cancel inside the check bits stay
    CLEAN.
    """

    def __init__(self, scalar: Codec) -> None:
        self.scalar = scalar
        self.limbs = limbs_for(scalar.word_bits)

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        """Encode a (N,) uint64 data vector into (N, L) codeword limbs."""
        raise NotImplementedError

    def decode_batch(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decode (N, L) codeword limbs -> (status codes uint8, data uint64)."""
        raise NotImplementedError

    def classify_batch(
        self, data: np.ndarray, flips: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Oracle classification of (N,) data words under (N, L) flip limbs."""
        data = np.asarray(data, dtype=_U64)
        flips = np.asarray(flips, dtype=_U64)
        if flips.ndim == 1:
            # A flat mask vector is unambiguous for single-limb codes;
            # anything else would silently broadcast (N,1)^(N,) into an
            # (N,N) batch, so refuse instead.
            if self.limbs != 1:
                raise CodecError(
                    f"{self.scalar.word_bits}-bit codewords span "
                    f"{self.limbs} limbs; pack flip masks with "
                    f"pack_masks() into shape (N, {self.limbs})"
                )
            flips = flips[:, np.newaxis]
        codewords = self.encode_batch(data) ^ flips
        status, out = self.decode_batch(codewords)
        silent = (status != DUE) & (out != data)
        return np.where(silent, SILENT, status).astype(np.uint8), out


class ScalarFallbackVectorized(VectorizedCodec):
    """Batch adapter looping over the scalar codec (plugin default).

    Correct for any :class:`Codec`; offers no speedup.  Registered
    plugins that care about throughput supply a real ``vector_factory``.
    """

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        encoded = [self.scalar.encode(int(word)) for word in data]
        return pack_masks(encoded, self.limbs)

    def decode_batch(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        count = codewords.shape[0]
        status = np.zeros(count, dtype=np.uint8)
        out = np.zeros(count, dtype=_U64)
        for i in range(count):
            word = 0
            for limb in range(self.limbs):
                word |= int(codewords[i, limb]) << (64 * limb)
            result = self.scalar.decode(word)
            status[i] = CODE_OF_STATUS[result.status]
            out[i] = result.data
        return status, out


class VectorizedParity(VectorizedCodec):
    """Batched even parity: total-popcount oddness is the whole decode."""

    def __init__(self, scalar: ParityCodec) -> None:
        if scalar.word_bits > 64:
            raise CodecError("vectorized parity supports <= 63 data bits")
        super().__init__(scalar)
        self._data_mask = _U64((1 << scalar.data_bits) - 1)
        self._shift = _U64(scalar.data_bits)

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=_U64)
        parity = (popcount64(data) & 1).astype(_U64)
        return (data | (parity << self._shift))[:, np.newaxis]

    def decode_batch(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        words = codewords[:, 0]
        data = words & self._data_mask
        odd = (popcount64(words) & 1).astype(bool)
        status = np.where(odd, DUE, CLEAN).astype(np.uint8)
        return status, data.astype(_U64)


class VectorizedSecded(VectorizedCodec):
    """Batched SECDED mirroring :class:`SecdedCodec` bit-for-bit.

    The check masks are derived from the scalar codec's own Hamming
    layout (``_positions`` / ``_hamming_checks``), so the two paths
    cannot drift: syndrome-beyond-n phantom corrections, parity-bit
    self-flips, and the triple-error miscorrection pathology all fall
    out of the same positions.
    """

    def __init__(self, scalar: SecdedCodec) -> None:
        super().__init__(scalar)
        n = scalar.data_bits + scalar._hamming_checks
        if n + 1 > 128:
            raise CodecError("vectorized SECDED supports at most 127+1 bits")
        self._n = n
        self._checks = scalar._hamming_checks
        check_masks = []
        for c in range(self._checks):
            p = 1 << c
            mask = 0
            for pos in range(1, n + 1):
                if pos & p:
                    mask |= 1 << pos
            check_masks.append(_pack_one(mask, self.limbs))
        self._check_masks = np.stack(check_masks)
        self._overall_mask = _pack_one((1 << (n + 1)) - 1, self.limbs)
        # position -> data index scatter tables, split by limb.
        self._positions = sorted(scalar._positions.items())

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=_U64)
        codewords = np.zeros((data.shape[0], self.limbs), dtype=_U64)
        for pos, data_idx in self._positions:
            bit = (data >> _U64(data_idx)) & _U64(1)
            codewords[:, pos // 64] |= bit << _U64(pos % 64)
        for c in range(self._checks):
            p = 1 << c
            acc = np.zeros(data.shape[0], dtype=np.int64)
            for limb in range(self.limbs):
                acc += popcount64(codewords[:, limb] & self._check_masks[c, limb])
            # The check position itself is still zero, so the mask sum
            # over the other covered positions is the check-bit value.
            codewords[:, p // 64] |= ((acc & 1).astype(_U64)) << _U64(p % 64)
        overall = np.zeros(data.shape[0], dtype=np.int64)
        for limb in range(self.limbs):
            overall += popcount64(codewords[:, limb])
        codewords[:, 0] |= (overall & 1).astype(_U64)
        return codewords

    def decode_batch(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        count = codewords.shape[0]
        syndrome = np.zeros(count, dtype=np.int64)
        for c in range(self._checks):
            acc = np.zeros(count, dtype=np.int64)
            for limb in range(self.limbs):
                acc += popcount64(codewords[:, limb] & self._check_masks[c, limb])
            syndrome |= (acc & 1) << c
        overall = np.zeros(count, dtype=np.int64)
        for limb in range(self.limbs):
            overall += popcount64(codewords[:, limb] & self._overall_mask[limb])
        overall &= 1

        correct_single = (syndrome != 0) & (overall == 1)
        # Flip the syndrome position where it is a real one (<= n);
        # syndromes beyond n are phantom corrections that leave the
        # word untouched but still report CORRECTED (scalar semantics).
        corrected = codewords.copy()
        in_limb0 = correct_single & (syndrome < 64)
        shift0 = np.where(in_limb0, syndrome, 0).astype(_U64)
        corrected[:, 0] ^= np.where(in_limb0, _U64(1) << shift0, _U64(0))
        if self.limbs > 1:
            in_limb1 = correct_single & (syndrome >= 64) & (syndrome <= self._n)
            shift1 = np.where(in_limb1, syndrome - 64, 0).astype(_U64)
            corrected[:, 1] ^= np.where(in_limb1, _U64(1) << shift1, _U64(0))

        status = np.full(count, DUE, dtype=np.uint8)
        status[(syndrome == 0) & (overall == 0)] = CLEAN
        status[overall == 1] = CORRECTED

        data = np.zeros(count, dtype=_U64)
        for pos, data_idx in self._positions:
            bit = (corrected[:, pos // 64] >> _U64(pos % 64)) & _U64(1)
            data |= bit << _U64(data_idx)
        return status, data


class VectorizedTableCodec(VectorizedCodec):
    """Batched syndrome-table decode for :class:`SyndromeTableCodec`.

    The H rows come packed from the scalar codec; correction is a
    ``searchsorted`` into the sorted syndrome array followed by an XOR
    with the matching flip limbs.
    """

    def __init__(self, scalar: SyndromeTableCodec) -> None:
        if scalar.data_bits > 64:
            raise CodecError("vectorized table codec supports <= 64 data bits")
        if scalar.word_bits > 128:
            raise CodecError("vectorized table codec supports <= 128-bit words")
        super().__init__(scalar)
        self._k = scalar.data_bits
        self._r = scalar.check_bits
        self._rows = np.stack(
            [_pack_one(row, self.limbs) for row in scalar.h_rows]
        )
        self._data_masks = np.array(scalar.data_masks, dtype=_U64)
        syndromes = np.array(sorted(scalar.syndrome_table), dtype=np.int64)
        self._syndromes = syndromes
        self._flips = pack_masks(
            [scalar.syndrome_table[int(s)] for s in syndromes], self.limbs
        )
        if self._k == 64:
            self._data_mask = _U64(0xFFFFFFFFFFFFFFFF)
        else:
            self._data_mask = _U64((1 << self._k) - 1)

    def encode_batch(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=_U64)
        checks = np.zeros(data.shape[0], dtype=np.int64)
        for j in range(self._r):
            bit = popcount64(data & self._data_masks[j]) & 1
            checks |= bit << j
        codewords = np.zeros((data.shape[0], self.limbs), dtype=_U64)
        if self._k == 64:
            codewords[:, 0] = data
            if self.limbs > 1:
                codewords[:, 1] = checks.astype(_U64)
            else:  # pragma: no cover - no registered codec hits this
                raise CodecError("64 data bits need a second limb")
        else:
            codewords[:, 0] = data | (checks.astype(_U64) << _U64(self._k))
        return codewords

    def decode_batch(
        self, codewords: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        count = codewords.shape[0]
        syndrome = np.zeros(count, dtype=np.int64)
        for j in range(self._r):
            acc = np.zeros(count, dtype=np.int64)
            for limb in range(self.limbs):
                acc += popcount64(codewords[:, limb] & self._rows[j, limb])
            syndrome |= (acc & 1) << j
        index = np.searchsorted(self._syndromes, syndrome)
        clipped = np.minimum(index, len(self._syndromes) - 1)
        hit = (self._syndromes[clipped] == syndrome) & (syndrome != 0)
        flips = np.where(
            hit[:, np.newaxis], self._flips[clipped], _U64(0)
        )
        corrected = codewords ^ flips
        status = np.full(count, DUE, dtype=np.uint8)
        status[syndrome == 0] = CLEAN
        status[hit] = CORRECTED
        data = corrected[:, 0] & self._data_mask
        return status, data.astype(_U64)
