"""DEC-TED(80,64): double-error-correcting, triple-error-detecting BCH.

The code is the 2-error-correcting BCH code over GF(2^7) (natural
length 127), shortened to 64 data bits and extended with an overall
even-parity bit.  Generator ``g(x) = (x + 1) * m1(x) * m3(x)`` has
degree 15 and roots ``alpha^0 .. alpha^4``, so the BCH bound gives
designed distance >= 6: every pattern of weight <= 2 is correctable
with a distinct syndrome, and every weight-3 pattern is detected
(it cannot reach within distance 2 of another codeword).  Weight-4
patterns may alias onto a weight-<=2 table entry via a weight-6
codeword -- the documented miscorrection pathology of this code,
the DEC-TED analogue of SECDED's silent triples.

Shortening preserves minimum distance (a shortened codeword is a full
codeword with zeros in the dropped positions), and the extra overall
parity row only ever adds weight, so the distance argument carries to
the (80,64) geometry used here.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from .gf import (
    GF7_PRIM,
    GF2m,
    gf2_poly_mod,
    gf2_poly_mul,
    minimal_polynomial,
)
from .linear import SyndromeTableCodec, patterns_up_to_weight

#: Data bits of the (80,64) organization.
DECTED_DATA_BITS = 64
#: 15 BCH remainder bits + 1 overall parity bit.
DECTED_CHECK_BITS = 16


@lru_cache(maxsize=None)
def _dected_columns(data_bits: int) -> Tuple[int, ...]:
    """Parity-check columns for the shortened extended BCH code.

    Column ``i`` is the remainder of ``x^(15 + i)`` modulo ``g(x)``
    (the systematic-encoding remainder for data position ``i``) with
    bit 15 set for the overall parity row.
    """
    field = GF2m(7, GF7_PRIM)
    generator = gf2_poly_mul(
        gf2_poly_mul(minimal_polynomial(field, 0), minimal_polynomial(field, 1)),
        minimal_polynomial(field, 3),
    )
    r_cyclic = 15
    columns = []
    for i in range(data_bits):
        remainder = gf2_poly_mod(1 << (r_cyclic + i), generator)
        columns.append(remainder | (1 << r_cyclic))
    return tuple(columns)


class DecTedCodec(SyndromeTableCodec):
    """DEC-TED(80,64): corrects all weight-1/2 errors, detects weight 3."""

    def __init__(self) -> None:
        word_bits = DECTED_DATA_BITS + DECTED_CHECK_BITS
        super().__init__(
            DECTED_DATA_BITS,
            DECTED_CHECK_BITS,
            _dected_columns(DECTED_DATA_BITS),
            patterns_up_to_weight(word_bits, 2),
        )

    def __repr__(self) -> str:
        return "DecTedCodec(data_bits=64, check_bits=16)"
