"""SEC-DAEC(72,64): single-error + double-adjacent-error correction.

Same storage overhead as the platform's SECDED(72,64) -- 8 check bits
over 64 data bits -- but the check matrix is chosen so that every
single-bit error *and* every pair of physically adjacent bit flips has
a distinct nonzero syndrome.  Adjacent pairs are exactly what the MBU
cluster model in :mod:`repro.sram.mbu` produces when interleaving does
not fully split a spatial multi-bit upset, so this code trades
SECDED's guaranteed double-*detection* for correction of the double
patterns that actually occur.

The price is silent behaviour on what SECDED would have caught:
a *non-adjacent* double either lands on an unused syndrome (detected)
or aliases onto a single/adjacent-pair table entry and is miscorrected
-- the documented pathology of all DAEC constructions (Dutta & Touba
style).  There is no overall-parity bit, so no weight class is
guaranteed detected.

The 64 data columns are found by a deterministic lexicographic
backtracking search: check positions carry unit-vector columns, and
each candidate data column must give fresh syndromes for its single
and for the adjacent pairs it completes (the codeword is treated as a
ring, including the ``71 -> 0`` wraparound pair, matching
:func:`repro.codecs.linear.adjacent_pair_patterns`).  The search is
seed-free and order-deterministic, so the codec is byte-stable across
runs and platforms.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from ..errors import CodecError
from .linear import SyndromeTableCodec, adjacent_pair_patterns

#: The (72,64) geometry shared with the platform SECDED code.
SECDAEC_DATA_BITS = 64
SECDAEC_CHECK_BITS = 8


@lru_cache(maxsize=None)
def _secdaec_columns(data_bits: int, check_bits: int) -> Tuple[int, ...]:
    """Deterministic backtracking search for the DAEC data columns.

    Syndrome constraints: all ``n`` singles plus all ``n`` adjacent
    ring pairs must be distinct and nonzero.  Check columns are the
    unit vectors ``e_0 .. e_{r-1}`` at positions ``k .. k+r-1``; their
    singles and adjacent pairs are pre-seeded, then data columns
    ``c_0 .. c_{k-1}`` are assigned lexicographically from 1 upward,
    backtracking when a candidate exhausts the syndrome space.
    """
    order = 1 << check_bits
    seeded = set()
    for j in range(check_bits):
        seeded.add(1 << j)
    for j in range(check_bits - 1):
        seeded.add((1 << j) ^ (1 << (j + 1)))
    first_check = 1  # e_0: ring partner of the last data column
    last_check = 1 << (check_bits - 1)  # e_{r-1}: ring partner of c_0

    def new_syndromes(index: int, column: int, chosen: List[int]) -> List[int]:
        fresh = [column]
        if index == 0:
            fresh.append(column ^ last_check)
        else:
            fresh.append(column ^ chosen[index - 1])
        if index == data_bits - 1:
            fresh.append(column ^ first_check)
        return fresh

    chosen: List[int] = []
    # cursor[i]: next candidate value to try for data column i.
    cursor = [1]
    used = set(seeded)
    while len(chosen) < data_bits:
        index = len(chosen)
        candidate = cursor[index]
        placed = False
        while candidate < order:
            fresh = new_syndromes(index, candidate, chosen)
            if (
                all(s != 0 and s not in used for s in fresh)
                and len(set(fresh)) == len(fresh)
            ):
                chosen.append(candidate)
                used.update(fresh)
                cursor[index] = candidate + 1
                cursor.append(1)
                placed = True
                break
            candidate += 1
        if placed:
            continue
        # Dead end: retract the previous column and advance its cursor.
        cursor.pop()
        if not chosen:
            raise CodecError(
                f"no SEC-DAEC column assignment exists for "
                f"({data_bits + check_bits},{data_bits})"
            )
        previous = chosen.pop()
        for s in new_syndromes(len(chosen), previous, chosen):
            used.discard(s)
        cursor[len(chosen)] = previous + 1
    return tuple(chosen)


class SecDaecCodec(SyndromeTableCodec):
    """SEC-DAEC(72,64): corrects singles and adjacent doubles."""

    def __init__(self) -> None:
        columns = _secdaec_columns(SECDAEC_DATA_BITS, SECDAEC_CHECK_BITS)
        word_bits = SECDAEC_DATA_BITS + SECDAEC_CHECK_BITS
        patterns = [1 << p for p in range(word_bits)]
        patterns.extend(adjacent_pair_patterns(word_bits))
        super().__init__(
            SECDAEC_DATA_BITS, SECDAEC_CHECK_BITS, columns, patterns
        )

    def __repr__(self) -> str:
        return "SecDaecCodec(data_bits=64, check_bits=8)"
