"""Pluggable ECC design-space subsystem.

The paper fixes its protection axis -- even parity on the TLB/L1
arrays, SECDED(72,64) on L2/L3 (Table 1) -- and every headline FIT
number is conditioned on that choice.  This subpackage opens the axis
into a design space:

* :mod:`repro.codecs.registry` -- the stable string-keyed plugin API
  (:func:`register_codec` / :func:`get_codec` / :func:`list_codecs`);
  the built-in ``parity`` and ``secded`` entries adapt the codecs from
  :mod:`repro.sram.protection` unchanged, keeping the paper-conformance
  anchor intact.
* :mod:`repro.codecs.dected`, :mod:`repro.codecs.secdaec`,
  :mod:`repro.codecs.bch` -- DEC-TED(80,64), SEC-DAEC(72,64) (adjacent
  -error correction, exercised against the MBU cluster model), and
  extended BCH t=2/t=3, all built on the syndrome-table machinery in
  :mod:`repro.codecs.linear` over the GF(2^m) arithmetic in
  :mod:`repro.codecs.gf`.
* :mod:`repro.codecs.vector` -- the batched decode hot path (packed
  uint64 H matrices, whole-batch popcounts, searchsorted syndrome
  tables), with the scalar codecs retained as the differential
  reference (``codec_scalar_vs_vectorized`` pairing).
* :mod:`repro.codecs.cost` -- gate-counted area/energy models so
  sweeps can emit FIT-vs-area-vs-energy Pareto fronts.
* :mod:`repro.codecs.sweep` -- the codec x voltage x workload explorer
  sweep: broker-schedulable cells, FIT assembly with Garwood/Wilson
  intervals, Pareto-front extraction (``repro-campaign explore``).
"""

from .cost import CodecCost, parity_cost, probe_cost, secded_cost, table_codec_cost
from .bch import BchCodec
from .dected import DecTedCodec
from .linear import SyndromeTableCodec, adjacent_pair_patterns, patterns_up_to_weight
from .registry import (
    CodecPlugin,
    RegisteredCodec,
    get_codec,
    list_codecs,
    register_codec,
    unregister_codec,
)
from .secdaec import SecDaecCodec
from .sweep import (
    SweepCell,
    SweepSpec,
    assemble_pareto,
    plan_sweep,
    run_cell,
    sweep_cells,
)
from .vector import (
    CLEAN,
    CORRECTED,
    DUE,
    SILENT,
    STATUS_OF_CODE,
    ScalarFallbackVectorized,
    VectorizedCodec,
    VectorizedParity,
    VectorizedSecded,
    VectorizedTableCodec,
    pack_masks,
)

__all__ = [
    "BchCodec",
    "DecTedCodec",
    "SecDaecCodec",
    "SyndromeTableCodec",
    "adjacent_pair_patterns",
    "patterns_up_to_weight",
    "CodecCost",
    "parity_cost",
    "probe_cost",
    "secded_cost",
    "table_codec_cost",
    "CodecPlugin",
    "RegisteredCodec",
    "get_codec",
    "list_codecs",
    "register_codec",
    "unregister_codec",
    "SweepCell",
    "SweepSpec",
    "assemble_pareto",
    "plan_sweep",
    "run_cell",
    "sweep_cells",
    "CLEAN",
    "CORRECTED",
    "DUE",
    "SILENT",
    "STATUS_OF_CODE",
    "ScalarFallbackVectorized",
    "VectorizedCodec",
    "VectorizedParity",
    "VectorizedSecded",
    "VectorizedTableCodec",
    "pack_masks",
]
