"""Deterministic random-number stream management.

Every stochastic component of the simulator draws from a named child
stream of a single experiment seed, so that (a) whole campaigns are
reproducible from one integer and (b) adding draws to one subsystem does
not perturb the sequences seen by another.

Usage::

    streams = RngStreams(seed=42)
    beam_rng = streams.child("beam")
    inj_rng = streams.child("injector", session=3)
"""

from __future__ import annotations

from typing import Union

import numpy as np

_SeedLike = Union[int, np.random.Generator, "RngStreams", None]


class RngStreams:
    """A factory of independent, named :class:`numpy.random.Generator` streams.

    Child streams are derived with :class:`numpy.random.SeedSequence`
    spawned from a stable hash of the child's name and keyword
    qualifiers, so the same ``(seed, name, qualifiers)`` triple always
    yields the same stream regardless of creation order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def child(self, name: str, **qualifiers: object) -> np.random.Generator:
        """Return a generator for the named subsystem.

        Parameters
        ----------
        name:
            Subsystem label, e.g. ``"beam"`` or ``"vmin"``.
        qualifiers:
            Extra discriminators (session index, benchmark name, ...).
            The same name+qualifiers always maps to the same stream.
        """
        key = (name,) + tuple(sorted((k, repr(v)) for k, v in qualifiers.items()))
        # Stable, platform-independent hash of the key.
        digest = np.frombuffer(
            _stable_digest(repr(key).encode("utf-8")), dtype=np.uint32
        )
        seq = np.random.SeedSequence([self._seed] + digest.tolist())
        return np.random.default_rng(seq)

    def __repr__(self) -> str:
        return f"RngStreams(seed={self._seed})"


def _stable_digest(data: bytes) -> bytes:
    """Return a 16-byte stable digest of *data* (md5; not security-relevant)."""
    import hashlib

    return hashlib.md5(data).digest()


def as_generator(seed: _SeedLike, name: str = "default") -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts an integer seed, an existing generator (returned unchanged),
    an :class:`RngStreams` (a child named *name* is derived), or ``None``
    (seed 0).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, RngStreams):
        return seed.child(name)
    if seed is None:
        seed = 0
    return RngStreams(int(seed)).child(name)
