"""repro.validate: paper-conformance oracles, statistical gates, and
differential testing.

Public surface:

* :mod:`~repro.validate.gates` -- :class:`GateResult`, Poisson /
  proportion / dispersion gates, and the K-of-N :class:`SeedLadder`;
* :mod:`~repro.validate.oracles` -- the golden-value registry loaded
  from ``validate/golden/*.json``;
* :mod:`~repro.validate.differential` -- paired-configuration
  agreement checks and the canonical campaign serialization;
* :mod:`~repro.validate.conformance` -- the three suites behind
  ``repro-campaign validate``;
* :mod:`~repro.validate.postjob` -- the automatic per-submission gates
  behind ``repro-campaign serve --validate``.
"""

from .conformance import (
    SUITES,
    ConformanceReport,
    SuiteResult,
    run_conformance,
    run_differential,
    run_statistical,
    run_suites,
)
from .differential import (
    DifferentialRunner,
    DiffReport,
    FieldDiff,
    canonical_campaign_json,
    diff_encoded,
)
from .gates import (
    DEFAULT_ALPHA,
    DEFAULT_EPSILON,
    GateResult,
    LadderResult,
    SeedLadder,
    SeedTrial,
    interval_coverage_gate,
    poisson_bounds,
    poisson_count_gate,
    poisson_dispersion_gate,
    poisson_pair_gate,
    proportion_gate,
)
from .oracles import (
    ArtifactOracles,
    Oracle,
    OracleRegistry,
    Tolerance,
    default_registry,
)
from .postjob import postjob_gates, postjob_report

__all__ = [
    "SUITES",
    "ConformanceReport",
    "SuiteResult",
    "run_conformance",
    "run_differential",
    "run_statistical",
    "run_suites",
    "DifferentialRunner",
    "DiffReport",
    "FieldDiff",
    "canonical_campaign_json",
    "diff_encoded",
    "DEFAULT_ALPHA",
    "DEFAULT_EPSILON",
    "GateResult",
    "LadderResult",
    "SeedLadder",
    "SeedTrial",
    "interval_coverage_gate",
    "poisson_bounds",
    "poisson_count_gate",
    "poisson_dispersion_gate",
    "poisson_pair_gate",
    "proportion_gate",
    "ArtifactOracles",
    "Oracle",
    "OracleRegistry",
    "Tolerance",
    "default_registry",
    "postjob_gates",
    "postjob_report",
]
