"""The oracle registry: golden paper values with declared tolerances.

Every number the conformance suite checks against the MICRO '23 paper
lives in a versioned JSON file under ``validate/golden/`` -- one file
per artifact (``table1.json`` ... ``fig13.json``), each entry carrying
the expected value, an explicit tolerance, and a provenance note
saying where in the paper the number comes from and why the tolerance
is what it is.  Checks in benchmarks and in the conformance suite load
these files through :class:`OracleRegistry` instead of hard-coding
expectations, so "does this reproduce the paper?" has a single,
reviewable source of truth.

Tolerance kinds:

``exact``
    Bit-for-bit equality (geometry, operating points, safe Vmin).
``rel`` / ``abs``
    Relative / absolute numeric tolerance (rates, FIT values, powers).
``range``
    An explicit ``[lo, hi]`` acceptance band (headline multipliers).
``poisson``
    The measured value is an event *count*; accept iff it falls in the
    central Poisson interval around the expected mean (scaled by the
    flown ``time_scale``), per :func:`~repro.validate.gates
    .poisson_count_gate`.  The tolerance value is the tail mass
    ``epsilon``.
``wilson``
    The measured value is a ``[successes, trials]`` pair; accept iff
    the expected proportion lies in the measured Wilson interval.  The
    tolerance value is the confidence level.

Expected values may be scalars, lists (checked element-wise) or
string-keyed objects (checked key-wise); every leaf comparison yields
one :class:`~repro.validate.gates.GateResult` named
``artifact/key[index]``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

from ..errors import ValidationError
from .gates import GateResult, poisson_count_gate, proportion_gate

GOLDEN_SCHEMA = 1

#: Directory holding the versioned golden files.
GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

_TOLERANCE_KINDS = ("exact", "rel", "abs", "range", "poisson", "wilson")


@dataclass(frozen=True)
class Tolerance:
    """How far a measurement may stray from its golden value."""

    kind: str
    value: float = 0.0
    lo: float = 0.0
    hi: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _TOLERANCE_KINDS:
            raise ValidationError(
                f"unknown tolerance kind {self.kind!r}; "
                f"choose from {_TOLERANCE_KINDS}"
            )

    @classmethod
    def from_dict(cls, data: dict) -> "Tolerance":
        if not isinstance(data, dict) or len(data) != 1:
            raise ValidationError(
                f"tolerance must be a single-key object, got {data!r}"
            )
        kind, value = next(iter(data.items()))
        if kind == "range":
            if (
                not isinstance(value, (list, tuple))
                or len(value) != 2
                or value[0] > value[1]
            ):
                raise ValidationError(
                    f"range tolerance needs [lo, hi], got {value!r}"
                )
            return cls(kind=kind, lo=float(value[0]), hi=float(value[1]))
        if kind == "exact":
            return cls(kind=kind)
        return cls(kind=kind, value=float(value))

    def to_dict(self) -> dict:
        if self.kind == "range":
            return {"range": [self.lo, self.hi]}
        if self.kind == "exact":
            return {"exact": True}
        return {self.kind: self.value}


@dataclass(frozen=True)
class Oracle:
    """One golden value: artifact key, expectation, tolerance, provenance."""

    artifact: str
    key: str
    expected: object
    tolerance: Tolerance
    provenance: str = ""

    def check(self, measured: object, scale: float = 1.0) -> List[GateResult]:
        """Compare *measured* against the golden value, leaf by leaf.

        *scale* is the flown ``time_scale`` for count-like (``poisson``)
        oracles: golden counts are in paper units, measured counts in
        flown units, so the expected mean is scaled before gating.
        Scale-invariant kinds ignore it.
        """
        return list(self._walk(self.key, self.expected, measured, scale))

    def _walk(self, path, expected, measured, scale):
        name = f"{self.artifact}/{path}"
        if self.tolerance.kind == "wilson" and _is_pair(measured):
            yield self._leaf(name, expected, measured, scale)
            return
        if isinstance(expected, dict):
            if not isinstance(measured, dict):
                yield GateResult(
                    gate=name,
                    ok=False,
                    measured=_fmt(measured),
                    expected="an object",
                    detail="measured value is not key-addressable",
                )
                return
            for key, sub in expected.items():
                if key not in measured:
                    yield GateResult(
                        gate=f"{name}.{key}",
                        ok=False,
                        measured="missing",
                        expected=_fmt(sub),
                        detail="measured object lacks this key",
                    )
                    continue
                yield from self._walk(
                    f"{path}.{key}", sub, measured[key], scale
                )
            return
        if isinstance(expected, (list, tuple)):
            if not isinstance(measured, (list, tuple)) or len(measured) != len(
                expected
            ):
                yield GateResult(
                    gate=name,
                    ok=False,
                    measured=_fmt(measured),
                    expected=f"sequence of {len(expected)}",
                    detail="measured sequence length mismatch",
                )
                return
            for index, (sub, m) in enumerate(zip(expected, measured)):
                yield from self._walk(f"{path}[{index}]", sub, m, scale)
            return
        yield self._leaf(name, expected, measured, scale)

    def _leaf(self, name, expected, measured, scale) -> GateResult:
        tol = self.tolerance
        if tol.kind == "exact":
            return GateResult(
                gate=name,
                ok=measured == expected
                or (_both_numeric(measured, expected)
                    and float(measured) == float(expected)),
                measured=_fmt(measured),
                expected=_fmt(expected),
                detail="exact",
            )
        if tol.kind == "poisson":
            if not _is_count(measured):
                return self._type_failure(name, expected, measured, "a count")
            return poisson_count_gate(
                name,
                int(measured),
                float(expected) * scale,
                epsilon=tol.value,
            )
        if tol.kind == "wilson":
            if not _is_pair(measured):
                return self._type_failure(
                    name, expected, measured, "[successes, trials]"
                )
            successes, trials = int(measured[0]), int(measured[1])
            if trials == 0:
                return GateResult(
                    gate=name,
                    ok=False,
                    measured="0 trials",
                    expected=_fmt(expected),
                    detail="no events to form a proportion",
                )
            return proportion_gate(
                name, successes, trials, float(expected), level=tol.value
            )
        if not _both_numeric(measured, expected):
            return self._type_failure(name, expected, measured, "a number")
        m, e = float(measured), float(expected)
        if tol.kind == "rel":
            ok = abs(m - e) <= tol.value * abs(e)
            detail = f"rel tol {tol.value:g}"
        elif tol.kind == "abs":
            ok = abs(m - e) <= tol.value
            detail = f"abs tol {tol.value:g}"
        else:  # range
            ok = tol.lo <= m <= tol.hi
            detail = f"range [{tol.lo:g}, {tol.hi:g}]"
        return GateResult(
            gate=name, ok=ok, measured=_fmt(m), expected=_fmt(e), detail=detail
        )

    def _type_failure(self, name, expected, measured, wanted) -> GateResult:
        return GateResult(
            gate=name,
            ok=False,
            measured=_fmt(measured),
            expected=_fmt(expected),
            detail=f"measured value is not {wanted}",
        )


@dataclass
class ArtifactOracles:
    """All golden values of one paper artifact."""

    artifact: str
    title: str = ""
    provenance: str = ""
    oracles: Dict[str, Oracle] = field(default_factory=dict)

    def check(
        self, measured: Dict[str, object], scale: float = 1.0
    ) -> List[GateResult]:
        """Gate every measured key that has an oracle (extras ignored)."""
        results: List[GateResult] = []
        for key, oracle in self.oracles.items():
            if key not in measured:
                results.append(
                    GateResult(
                        gate=f"{self.artifact}/{key}",
                        ok=False,
                        measured="missing",
                        expected=_fmt(oracle.expected),
                        detail="extractor produced no measurement",
                    )
                )
                continue
            results.extend(oracle.check(measured[key], scale=scale))
        return results


class OracleRegistry:
    """Loads and serves the golden files under ``validate/golden/``."""

    def __init__(self, golden_dir: Optional[str] = None) -> None:
        self.golden_dir = golden_dir or GOLDEN_DIR
        self._artifacts: Dict[str, ArtifactOracles] = {}
        self._load()

    def _load(self) -> None:
        if not os.path.isdir(self.golden_dir):
            raise ValidationError(
                f"golden directory {self.golden_dir!r} does not exist"
            )
        for filename in sorted(os.listdir(self.golden_dir)):
            if not filename.endswith(".json"):
                continue
            path = os.path.join(self.golden_dir, filename)
            with open(path) as handle:
                try:
                    data = json.load(handle)
                except ValueError as exc:
                    raise ValidationError(
                        f"golden file {path!r} is not valid JSON: {exc}"
                    ) from exc
            self._add_artifact(path, data)

    def _add_artifact(self, path: str, data: dict) -> None:
        if data.get("schema") != GOLDEN_SCHEMA:
            raise ValidationError(
                f"golden file {path!r} has schema {data.get('schema')!r} "
                f"(expected {GOLDEN_SCHEMA})"
            )
        artifact = data.get("artifact")
        if not artifact:
            raise ValidationError(f"golden file {path!r} names no artifact")
        if artifact in self._artifacts:
            raise ValidationError(
                f"golden file {path!r} redefines artifact {artifact!r}"
            )
        entry = ArtifactOracles(
            artifact=artifact,
            title=data.get("title", ""),
            provenance=data.get("provenance", ""),
        )
        for key, spec in data.get("oracles", {}).items():
            if "expected" not in spec or "tol" not in spec:
                raise ValidationError(
                    f"golden file {path!r}, oracle {key!r}: needs "
                    f"'expected' and 'tol'"
                )
            entry.oracles[key] = Oracle(
                artifact=artifact,
                key=key,
                expected=spec["expected"],
                tolerance=Tolerance.from_dict(spec["tol"]),
                provenance=spec.get("provenance", ""),
            )
        self._artifacts[artifact] = entry

    def artifacts(self) -> List[str]:
        """Artifact ids with golden values, sorted."""
        return sorted(self._artifacts)

    def artifact(self, artifact_id: str) -> ArtifactOracles:
        """All oracles of one artifact."""
        if artifact_id not in self._artifacts:
            raise ValidationError(
                f"no golden values for artifact {artifact_id!r}; "
                f"known: {self.artifacts()}"
            )
        return self._artifacts[artifact_id]

    def oracle(self, artifact_id: str, key: str) -> Oracle:
        """One oracle by (artifact, key)."""
        entry = self.artifact(artifact_id)
        if key not in entry.oracles:
            raise ValidationError(
                f"artifact {artifact_id!r} has no oracle {key!r}; "
                f"known: {sorted(entry.oracles)}"
            )
        return entry.oracles[key]

    def expected(self, artifact_id: str, key: str) -> object:
        """The golden expected value (for benches that print/compare)."""
        return self.oracle(artifact_id, key).expected

    def check(
        self,
        artifact_id: str,
        measured: Dict[str, object],
        scale: float = 1.0,
    ) -> List[GateResult]:
        """Gate a measured dict against one artifact's oracles."""
        return self.artifact(artifact_id).check(measured, scale=scale)


@lru_cache(maxsize=1)
def default_registry() -> OracleRegistry:
    """The package's own golden registry (loaded once per process)."""
    return OracleRegistry()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    text = repr(value)
    return text if len(text) <= 60 else text[:57] + "..."


def _both_numeric(a: object, b: object) -> bool:
    return isinstance(a, (int, float)) and isinstance(b, (int, float))


def _is_count(value: object) -> bool:
    return isinstance(value, (int, float)) and float(value) >= 0


def _is_pair(value: object) -> bool:
    return (
        isinstance(value, (list, tuple))
        and len(value) == 2
        and all(isinstance(v, (int, float)) for v in value)
    )
