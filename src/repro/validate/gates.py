"""Statistical acceptance gates: assert distributions, not lucky draws.

Beam-test statistics are Poisson (event counts) and binomial (outcome
proportions); a reproduction check that compares one seed's draw
against a point value is really asserting "this seed was lucky".  The
gates here make the acceptance region explicit instead:

* :func:`poisson_count_gate` accepts a count iff it falls inside the
  central ``1 - epsilon`` probability interval of the expected Poisson
  mean -- the statistical analogue of an absolute tolerance;
* :func:`poisson_dispersion_gate` is the classic chi-square
  goodness-of-fit (dispersion index) test that a *set* of counts is
  Poisson-distributed at all;
* :func:`proportion_gate` accepts a measured proportion iff the
  expected one lies inside its Wilson (or exact Clopper-Pearson)
  confidence interval -- the paper's own 95 % error-bar discipline
  (Section 3.5) turned into an executable check;
* :class:`SeedLadder` replaces single-seed pinning with "K of N seeds
  must pass": each rung is an independent trial, the ladder's verdict
  is a binomial acceptance over the rungs.

Every gate returns a :class:`GateResult`, the common currency of the
validate subsystem (the oracle registry and the differential harness
emit them too), so one report format covers all three suites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Sequence, Tuple

from scipy import stats

from ..core.confidence import (
    ConfidenceInterval,
    binomial_interval,
    clopper_pearson_interval,
)
from ..errors import ValidationError

#: Default two-sided tail mass for Poisson count acceptance.  1e-5 per
#: side corresponds to ~+/-4.4 sigma -- wide enough that an unlucky but
#: healthy seed essentially never trips the gate, tight enough that a
#: calibration regression (rates off by tens of percent) always does.
DEFAULT_EPSILON = 1e-5

#: Default significance level for goodness-of-fit p-value gates.
DEFAULT_ALPHA = 1e-3


@dataclass(frozen=True)
class GateResult:
    """Outcome of one executable validation gate.

    Attributes
    ----------
    gate:
        Dotted/slashed identifier, e.g. ``"table2/upsets[2]"`` or
        ``"statistical/ci_coverage"``.
    ok:
        Did the measurement fall inside the acceptance region?
    measured / expected:
        Rendered values (strings, so every gate kind fits one schema).
    detail:
        The acceptance region or test statistic, human-readable.
    """

    gate: str
    ok: bool
    measured: str = ""
    expected: str = ""
    detail: str = ""

    def render(self) -> str:
        """One console line: ``[ ok ] gate: measured vs expected (detail)``."""
        verdict = " ok " if self.ok else "FAIL"
        text = f"[{verdict}] {self.gate}"
        if self.measured or self.expected:
            text += f": measured {self.measured} vs expected {self.expected}"
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> dict:
        """JSON-able encoding (what ``conformance.json`` stores)."""
        return {
            "gate": self.gate,
            "ok": self.ok,
            "measured": self.measured,
            "expected": self.expected,
            "detail": self.detail,
        }


# -- Poisson gates -------------------------------------------------------------


def poisson_bounds(mean: float, epsilon: float = DEFAULT_EPSILON) -> Tuple[int, int]:
    """Central ``1 - 2*epsilon`` acceptance interval for a Poisson count."""
    if mean < 0:
        raise ValidationError("Poisson mean must be nonnegative")
    if not 0 < epsilon < 0.5:
        raise ValidationError("epsilon must be in (0, 0.5)")
    if mean == 0:
        return (0, 0)
    lower = int(stats.poisson.ppf(epsilon, mean))
    upper = int(stats.poisson.ppf(1.0 - epsilon, mean))
    return lower, upper


def poisson_count_gate(
    name: str,
    count: int,
    mean: float,
    epsilon: float = DEFAULT_EPSILON,
) -> GateResult:
    """Accept *count* iff it is statistically consistent with Poisson(*mean*)."""
    if count < 0:
        raise ValidationError("count must be nonnegative")
    lower, upper = poisson_bounds(mean, epsilon)
    return GateResult(
        gate=name,
        ok=lower <= count <= upper,
        measured=str(int(count)),
        expected=f"{mean:g}",
        detail=f"Poisson[{lower}, {upper}] at eps={epsilon:g}",
    )


def poisson_pair_gate(
    name: str,
    count_a: int,
    count_b: int,
    sigmas: float = 6.0,
) -> GateResult:
    """Accept two counts as draws from the *same* Poisson distribution.

    The difference of two independent Poisson draws with common mean
    has variance ``a + b`` (estimated), so ``|a - b| / sqrt(a + b)`` is
    an approximate z-score.  This is the differential-testing gate for
    paths that sample the same distribution through different draw
    sequences (scalar vs vectorized injector).
    """
    if count_a < 0 or count_b < 0:
        raise ValidationError("counts must be nonnegative")
    spread = max(float(count_a + count_b), 1.0) ** 0.5
    z = abs(count_a - count_b) / spread
    return GateResult(
        gate=name,
        ok=z <= sigmas,
        measured=f"{count_a} vs {count_b}",
        expected="same distribution",
        detail=f"|a-b|/sqrt(a+b) = {z:.2f} <= {sigmas:g}",
    )


def poisson_dispersion_gate(
    name: str,
    counts: Sequence[int],
    alpha: float = DEFAULT_ALPHA,
) -> GateResult:
    """Chi-square goodness-of-fit: are *counts* Poisson-distributed?

    The dispersion index ``D = sum (c_i - cbar)^2 / cbar`` follows
    ``chi2(n - 1)`` under the Poisson hypothesis; both tails are
    rejected (over-dispersion means hidden correlation, under-dispersion
    means a broken or shared RNG stream).
    """
    if len(counts) < 2:
        raise ValidationError("dispersion test needs at least two counts")
    if any(c < 0 for c in counts):
        raise ValidationError("counts must be nonnegative")
    n = len(counts)
    mean = sum(counts) / n
    if mean == 0:
        return GateResult(
            gate=name,
            ok=all(c == 0 for c in counts),
            measured=str(list(counts)),
            expected="all zero",
            detail="zero-mean degenerate case",
        )
    dispersion = sum((c - mean) ** 2 for c in counts) / mean
    p_lower = float(stats.chi2.cdf(dispersion, n - 1))
    p_upper = float(stats.chi2.sf(dispersion, n - 1))
    p_value = 2.0 * min(p_lower, p_upper)
    return GateResult(
        gate=name,
        ok=p_value >= alpha,
        measured=f"D={dispersion:.2f} over n={n}",
        expected=f"chi2({n - 1})",
        detail=f"two-sided p={p_value:.3g} >= alpha={alpha:g}",
    )


# -- proportion gates ----------------------------------------------------------


def proportion_gate(
    name: str,
    successes: int,
    trials: int,
    expected_p: float,
    level: float = 0.95,
    method: str = "wilson",
) -> GateResult:
    """Accept iff *expected_p* lies inside the measured proportion's CI.

    ``method`` selects the Wilson score interval (the paper's Fig. 4
    workhorse) or the exact Clopper-Pearson interval (conservative at
    the tiny trial counts of Figs. 12-13).
    """
    if not 0.0 <= expected_p <= 1.0:
        raise ValidationError("expected proportion must be in [0, 1]")
    if method == "wilson":
        interval = binomial_interval(successes, trials, level)
    elif method == "clopper-pearson":
        interval = clopper_pearson_interval(successes, trials, level)
    else:
        raise ValidationError(
            f"unknown proportion method {method!r}; "
            f"choose 'wilson' or 'clopper-pearson'"
        )
    return GateResult(
        gate=name,
        ok=interval.lower <= expected_p <= interval.upper,
        measured=f"{successes}/{trials} = {interval.value:.3f}",
        expected=f"{expected_p:.3f}",
        detail=(
            f"{method} {level:.0%} CI "
            f"[{interval.lower:.3f}, {interval.upper:.3f}]"
        ),
    )


def interval_coverage_gate(
    name: str,
    interval: ConfidenceInterval,
    expected: float,
) -> GateResult:
    """Accept iff *expected* lies inside an already-computed interval."""
    return GateResult(
        gate=name,
        ok=interval.lower <= expected <= interval.upper,
        measured=f"{interval.value:g}",
        expected=f"{expected:g}",
        detail=(
            f"{interval.level:.0%} CI "
            f"[{interval.lower:g}, {interval.upper:g}]"
        ),
    )


# -- the seed ladder -----------------------------------------------------------


@dataclass(frozen=True)
class SeedTrial:
    """One rung of a ladder: the seed, its verdict, and why."""

    seed: int
    ok: bool
    detail: str = ""


@dataclass
class LadderResult:
    """Verdict of a K-of-N seed ladder."""

    name: str
    trials: List[SeedTrial] = field(default_factory=list)
    required: int = 0

    @property
    def passes(self) -> int:
        """Number of rungs that passed."""
        return sum(1 for t in self.trials if t.ok)

    @property
    def ok(self) -> bool:
        """Did at least ``required`` of the rungs pass?"""
        return self.passes >= self.required

    def to_gate(self) -> GateResult:
        """The ladder verdict as a :class:`GateResult`."""
        failed = [t for t in self.trials if not t.ok]
        detail = f"require {self.required} of {len(self.trials)} seeds"
        if failed:
            shown = ", ".join(
                f"seed {t.seed}" + (f": {t.detail}" if t.detail else "")
                for t in failed[:4]
            )
            detail += f"; failed rungs: {shown}"
            if len(failed) > 4:
                detail += f" (+{len(failed) - 4} more)"
        return GateResult(
            gate=self.name,
            ok=self.ok,
            measured=f"{self.passes}/{len(self.trials)} seeds pass",
            expected=f">= {self.required}",
            detail=detail,
        )


class SeedLadder:
    """K-of-N acceptance over a ladder of RNG seeds.

    A statistical property that holds for ~95 % of seeds fails a
    single pinned seed eventually (or, worse, silently *requires* a
    lucky pin).  The ladder runs the check at every rung and accepts
    when at least *required* rungs pass, so the test asserts the
    distribution of outcomes rather than one draw.

    Parameters
    ----------
    seeds:
        The rung seeds (distinct, deterministic; never random).
    required:
        Minimum number of passing rungs.  Pick it so the false-failure
        probability under the expected per-seed pass rate is
        negligible (e.g. 12 of 15 rungs for a ~95 % property).
    """

    def __init__(self, seeds: Iterable[int], required: int) -> None:
        self.seeds = list(seeds)
        if not self.seeds:
            raise ValidationError("seed ladder needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValidationError("seed ladder seeds must be distinct")
        if not 1 <= required <= len(self.seeds):
            raise ValidationError(
                f"required rung count {required} must be in "
                f"[1, {len(self.seeds)}]"
            )
        self.required = required

    def run(
        self,
        name: str,
        check: Callable[[int], object],
    ) -> LadderResult:
        """Run *check* at every rung.

        *check* receives a seed and returns either a bool or a
        ``(bool, detail)`` pair; exceptions are failures (with the
        exception text as detail), so a crash at one rung cannot pass a
        ladder.
        """
        result = LadderResult(name=name, required=self.required)
        for seed in self.seeds:
            try:
                verdict = check(seed)
            except Exception as exc:  # a crashed rung is a failed rung
                result.trials.append(
                    SeedTrial(seed=seed, ok=False, detail=f"raised {exc!r}")
                )
                continue
            if isinstance(verdict, tuple):
                ok, detail = verdict
            else:
                ok, detail = bool(verdict), ""
            result.trials.append(
                SeedTrial(seed=seed, ok=bool(ok), detail=detail)
            )
        return result

    def run_counting(
        self,
        name: str,
        trial: Callable[[int], Tuple[int, int]],
        required_hits: int,
    ) -> GateResult:
        """Run a ladder whose rungs each contribute (hits, total) events.

        All rungs' events pool into one binomial acceptance: at least
        *required_hits* of the pooled total must hit.  This is the
        right shape when each seed contributes several sub-checks (e.g.
        four per-session CI coverages per campaign) -- pooling keeps
        the acceptance statistical instead of per-seed brittle.  A
        crashed rung contributes its events as misses.
        """
        hits = 0
        total = 0
        rungs: List[str] = []
        for seed in self.seeds:
            try:
                seed_hits, seed_total = trial(seed)
            except Exception as exc:
                rungs.append(f"seed {seed} raised {exc!r}")
                continue
            hits += seed_hits
            total += seed_total
            if seed_hits != seed_total:
                rungs.append(f"seed {seed}: {seed_hits}/{seed_total}")
        detail = f"pooled over {len(self.seeds)} seeds"
        if rungs:
            detail += "; partial rungs: " + ", ".join(rungs[:4])
            if len(rungs) > 4:
                detail += f" (+{len(rungs) - 4} more)"
        return GateResult(
            gate=name,
            ok=hits >= required_hits and total > 0,
            measured=f"{hits}/{total} hits",
            expected=f">= {required_hits}",
            detail=detail,
        )
