"""The conformance, differential, and statistical validation suites.

Three executable answers to "does this reproduce the paper?":

* **conformance** -- re-measure every reproduced artifact (Table 1
  geometry through Fig. 13's FIT split) and gate each number against
  the golden registry (:mod:`repro.validate.oracles`) at its declared
  tolerance.  Count-like measurements use scale-aware Poisson gates, so
  the suite is meaningful at any ``time_scale``.
* **differential** -- fly the paired configurations of
  :class:`~repro.validate.differential.DifferentialRunner` and require
  each pairing's agreement promise to hold.
* **statistical** -- distribution-level checks over a seed ladder:
  Garwood CIs must cover the calibrated model rates at the advertised
  frequency, upset counts across seeds must pass a chi-square Poisson
  dispersion test, and pooled outcome proportions must match the
  calibrated mix model.

Every suite returns a :class:`SuiteResult` of
:class:`~repro.validate.gates.GateResult`; :func:`run_suites` bundles
them into a :class:`ConformanceReport` (the ``conformance.json``
payload of ``repro-campaign validate``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..core.analysis import CampaignAnalysis
from ..core.confidence import poisson_rate_interval
from ..errors import ValidationError
from ..injection.calibration import LevelRateModel, OutcomeMixModel
from ..injection.events import OutcomeKind
from ..soc.geometry import total_capacity_bits, xgene2_structures
from ..telemetry import Telemetry
from .differential import DifferentialRunner
from .gates import (
    GateResult,
    SeedLadder,
    interval_coverage_gate,
    poisson_dispersion_gate,
    proportion_gate,
)
from .oracles import OracleRegistry, default_registry

#: Suite names, in report order.
SUITES = ("conformance", "differential", "statistical")

#: Default configuration for the campaign-backed suites.
DEFAULT_SEED = 2023
DEFAULT_TIME_SCALE = 0.2

#: The statistical suite's defaults: a ladder of distinct seeds flown
#: at a reduced scale (each rung is a full four-session campaign).
STATISTICAL_SEEDS = (101, 102, 103, 104, 105)
STATISTICAL_TIME_SCALE = 0.05


@dataclass
class SuiteResult:
    """Verdict of one validation suite."""

    suite: str
    gates: List[GateResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(g.ok for g in self.gates)

    @property
    def failures(self) -> List[GateResult]:
        return [g for g in self.gates if not g.ok]

    def render(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [
            f"== {self.suite} suite: {verdict} "
            f"({len(self.gates) - len(self.failures)}/{len(self.gates)} "
            f"gates pass) =="
        ]
        lines.extend(g.render() for g in self.gates)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "suite": self.suite,
            "ok": self.ok,
            "gates": [g.to_dict() for g in self.gates],
        }


@dataclass
class ConformanceReport:
    """The full ``repro-campaign validate`` result (conformance.json)."""

    seed: int
    time_scale: float
    suites: List[SuiteResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(s.ok for s in self.suites)

    @property
    def failures(self) -> List[GateResult]:
        return [g for s in self.suites for g in s.failures]

    def render(self) -> str:
        lines = [s.render() for s in self.suites]
        verdict = "PASS" if self.ok else "FAIL"
        total = sum(len(s.gates) for s in self.suites)
        failed = len(self.failures)
        lines.append(
            f"validation: {verdict} ({total - failed}/{total} gates pass, "
            f"seed={self.seed}, time_scale={self.time_scale})"
        )
        if failed:
            lines.append("failed gates:")
            lines.extend(f"  {g.gate}" for g in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "ok": self.ok,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "suites": [s.to_dict() for s in self.suites],
        }


# -- conformance measurements --------------------------------------------------
#
# One extractor per artifact.  Each returns (measured dict, count_scale):
# the dict's keys match the artifact's golden oracles; count_scale is
# the factor Poisson oracles multiply their full-length expected means
# by (the flown time_scale for campaign counts, 1.0 for scale-invariant
# artifacts).


def _campaign_context(seed: int, time_scale: float):
    from ..experiments.config import shared_campaign

    campaign = shared_campaign(seed, time_scale)
    return campaign, CampaignAnalysis(campaign)


def _session_labels(campaign, freq_mhz: int) -> List[str]:
    return [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == freq_mhz
    ]


def _measure_table1(seed: int, time_scale: float) -> Tuple[dict, float]:
    specs = xgene2_structures()
    capacity: Dict[str, int] = {}
    protection: Dict[str, str] = {}
    interleave: Dict[str, int] = {}
    for spec in specs:
        level = spec.level.value
        capacity[level] = capacity.get(level, 0) + spec.capacity_bits
        protection[level] = spec.protection.value
        interleave[level] = spec.interleave
    return (
        {
            "capacity_bits": capacity,
            "protection": protection,
            "interleave": interleave,
            "total_capacity_bits": total_capacity_bits(specs),
        },
        1.0,
    )


def _measure_table2(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, analysis = _campaign_context(seed, time_scale)
    labels = campaign.labels()
    sessions = [campaign.session(label) for label in labels]
    # session3 stops on its (scaled) failure target, so its duration --
    # and with it fluence and raw counts -- is itself a random variable;
    # its conformance lives in the scale-invariant rate gates, while the
    # fixed-duration sessions (1, 2, 4) also gate raw counts.
    fixed = [s for s in sessions if s.plan.target_failures is None]
    measured = {
        "voltages_mv": [s.plan.point.pmd_mv for s in sessions],
        "upsets_fixed": [s.upset_count for s in fixed],
        "failures_fixed": [s.failure_count for s in fixed],
        "upset_rates": [
            analysis.upset_rate(label).per_minute for label in labels
        ],
        "failure_rates": [s.failure_rate_per_min for s in sessions],
        "failure_rate_session3": next(
            s.failure_rate_per_min
            for s in sessions
            if s.plan.target_failures is not None
        ),
        "ser_fit_per_mbit": [
            analysis.memory_ser(label) for label in labels
        ],
        "fluences_fixed": [
            s.fluence.fluence_per_cm2 / time_scale for s in fixed
        ],
        "fluence_session3": next(
            s.fluence.fluence_per_cm2 / time_scale
            for s in sessions
            if s.plan.target_failures is not None
        ),
    }
    return measured, time_scale


def _measure_table3(seed: int, time_scale: float) -> Tuple[dict, float]:
    from ..experiments import table3

    series = table3.run().series
    return {"points": [list(p) for p in series["points"]]}, 1.0


def _measure_fig4(seed: int, time_scale: float) -> Tuple[dict, float]:
    from ..experiments import fig4

    series = fig4.run(seed=seed).series
    return (
        {
            "safe_vmin_mv": {
                str(freq): vmin
                for freq, vmin in series["safe_vmin_mv"].items()
            },
            "guardbands_mv": {
                str(freq): gb for freq, gb in series["guardbands_mv"].items()
            },
        },
        1.0,
    )


def _measure_fig5(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, analysis = _campaign_context(seed, time_scale)
    labels = _session_labels(campaign, 2400)
    totals = [analysis.upset_rate(label).per_minute for label in labels]
    return {"total_rates": totals}, time_scale


def _level_counts(session) -> Dict[str, int]:
    # Start every Fig. 6/7 bar at zero: a session short enough to
    # observe no events of some (level, severity) still has a count --
    # 0 is inside any Poisson acceptance band with a small scaled mean.
    from ..experiments.fig6 import LEVEL_ORDER

    counts = {f"{level}/{severity}": 0 for level, severity in LEVEL_ORDER}
    for (level, severity), count in session.upsets.counts.items():
        counts[f"{level.value}/{severity.value}"] = count
    return counts


def _measure_fig6(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, _ = _campaign_context(seed, time_scale)
    labels = _session_labels(campaign, 2400)
    per_session = [
        _level_counts(campaign.session(label)) for label in labels
    ]
    measured = {
        "counts": {
            key: [counts[key] for counts in per_session]
            for key in per_session[0]
        }
    }
    return measured, time_scale


def _measure_fig7(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, _ = _campaign_context(seed, time_scale)
    label = _session_labels(campaign, 900)[0]
    return {"counts": _level_counts(campaign.session(label))}, time_scale


def _measure_fig8(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, _ = _campaign_context(seed, time_scale)
    mixes: Dict[str, Dict[str, List[int]]] = {}
    sdc_share_920 = 0.0
    for label in _session_labels(campaign, 2400):
        session = campaign.session(label)
        counts = session.failure_counts()
        total = sum(counts.values())
        voltage = session.plan.point.pmd_mv
        mixes[str(voltage)] = {
            kind.value: [count, total] for kind, count in counts.items()
        }
        if voltage == 920 and total:
            sdc_share_920 = counts.get(OutcomeKind.SDC, 0) / total
    return {"mixes": mixes, "sdc_share_920": sdc_share_920}, time_scale


def _measure_fig9(seed: int, time_scale: float) -> Tuple[dict, float]:
    from ..experiments import fig9

    series = fig9.run().series
    return (
        {
            "power_watts": series["power_watts"],
            "upsets_per_min": series["upsets_per_min"],
        },
        1.0,
    )


def _measure_fig10(seed: int, time_scale: float) -> Tuple[dict, float]:
    from ..experiments import fig10

    series = fig10.run().series
    return (
        {
            "power_savings_pct": series["power_savings_pct"],
            "susceptibility_increase_pct": series[
                "susceptibility_increase_pct"
            ],
            "outpaced": series["outpaced"],
        },
        1.0,
    )


def _measure_fig11(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, analysis = _campaign_context(seed, time_scale)
    labels = _session_labels(campaign, 2400)
    total_fit = {
        str(campaign.session(label).plan.point.pmd_mv): analysis.total_fit(
            label
        ).fit
        for label in labels
    }
    sdc_fit_920 = analysis.category_fit(labels[-1], OutcomeKind.SDC).fit
    return (
        {
            "total_fit": total_fit,
            "sdc_fit_920": sdc_fit_920,
            "sdc_increase_x": analysis.sdc_fit_increase(
                labels[-1], labels[0]
            ),
            "total_increase_x": analysis.total_fit_increase(
                labels[-1], labels[0]
            ),
        },
        time_scale,
    )


def _measure_fig12(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, analysis = _campaign_context(seed, time_scale)
    split: Dict[str, Dict[str, float]] = {}
    for label in _session_labels(campaign, 2400):
        fits = analysis.sdc_fit_by_notification(label)
        split[str(campaign.session(label).plan.point.pmd_mv)] = {
            "without": fits["without_notification"].fit,
            "with": fits["with_notification"].fit,
        }
    return {"sdc_fit_920_without": split["920"]["without"]}, time_scale


def _measure_tech(seed: int, time_scale: float) -> Tuple[dict, float]:
    # Deterministic model probes -- no campaign flights: the node axis
    # is pinned at the calibrated-model layer, the flown physics is
    # covered by the statistical suite's node-FIT gates.
    from ..sram.cross_section import CrossSectionModel
    from ..tech import get_node, list_nodes

    measured: Dict[str, Dict[str, object]] = {
        "total_rate_nominal_per_min": {},
        "outcome_rate_nominal_per_min": {},
        "sigma_mult_5pct_undervolt": {},
        "freq_at_nominal_mhz": {},
        "scaled_vmin": {},
        "nominal": {},
    }
    for name in list_nodes():
        node = get_node(name)
        rates = LevelRateModel.for_node(node)
        mix = OutcomeMixModel.for_node(node)
        xs = CrossSectionModel.for_node(node)
        nominal_mv = float(node.pmd_nominal_mv)
        measured["total_rate_nominal_per_min"][name] = (
            rates.total_rate_per_min(
                node.pmd_nominal_mv, node.soc_nominal_mv
            )
        )
        measured["outcome_rate_nominal_per_min"][name] = sum(
            mix.rates_per_min(
                node.nominal_freq_mhz, node.pmd_nominal_mv
            ).values()
        )
        measured["sigma_mult_5pct_undervolt"][name] = xs.sigma_cm2(
            nominal_mv * 0.95
        ) / xs.sigma_cm2(nominal_mv)
        measured["freq_at_nominal_mhz"][name] = node.freq_mhz_at(nominal_mv)
        measured["scaled_vmin"][name] = [
            node.scale_pmd_mv(920),
            node.scale_soc_mv(920),
        ]
        measured["nominal"][name] = [
            node.nominal_freq_mhz,
            node.pmd_nominal_mv,
            node.soc_nominal_mv,
        ]
    return measured, 1.0


def _measure_fig13(seed: int, time_scale: float) -> Tuple[dict, float]:
    campaign, analysis = _campaign_context(seed, time_scale)
    label = _session_labels(campaign, 900)[0]
    session = campaign.session(label)
    sdcs = session.failures_of_kind(OutcomeKind.SDC)
    notified = sum(1 for f in sdcs if f.hw_notified)
    return (
        {"notified_split": [notified, max(len(sdcs), 1)]},
        time_scale,
    )


#: Artifact id -> measurement extractor.
MEASUREMENTS: Dict[str, Callable[[int, float], Tuple[dict, float]]] = {
    "table1": _measure_table1,
    "table2": _measure_table2,
    "table3": _measure_table3,
    "fig4": _measure_fig4,
    "fig5": _measure_fig5,
    "fig6": _measure_fig6,
    "fig7": _measure_fig7,
    "fig8": _measure_fig8,
    "fig9": _measure_fig9,
    "fig10": _measure_fig10,
    "fig11": _measure_fig11,
    "fig12": _measure_fig12,
    "fig13": _measure_fig13,
    "tech": _measure_tech,
}


def run_conformance(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    artifacts: Optional[List[str]] = None,
    registry: Optional[OracleRegistry] = None,
    telemetry: Optional[Telemetry] = None,
) -> SuiteResult:
    """Measure the selected artifacts and gate them against the registry."""
    registry = registry or default_registry()
    selected = artifacts if artifacts is not None else registry.artifacts()
    unknown = [a for a in selected if a not in MEASUREMENTS]
    if unknown:
        raise ValidationError(
            f"no measurement extractor for {unknown}; "
            f"known: {sorted(MEASUREMENTS)}"
        )
    result = SuiteResult(suite="conformance")
    for artifact in selected:
        if telemetry is not None:
            with telemetry.span("validate.measure", artifact=artifact):
                measured, scale = MEASUREMENTS[artifact](seed, time_scale)
        else:
            measured, scale = MEASUREMENTS[artifact](seed, time_scale)
        gates = registry.check(artifact, measured, scale=scale)
        result.gates.extend(gates)
        if telemetry is not None:
            telemetry.count("validate.gates", n=len(gates))
    return result


def run_differential(
    seed: int = DEFAULT_SEED,
    time_scale: float = 0.01,
    pairings: Optional[List[str]] = None,
    workdir: Optional[str] = None,
    telemetry: Optional[Telemetry] = None,
) -> SuiteResult:
    """Fly the paired configurations and collect their agreement gates."""
    runner = DifferentialRunner(
        seed=seed, time_scale=time_scale, workdir=workdir
    )
    result = SuiteResult(suite="differential")
    for name in pairings if pairings is not None else runner.pairings():
        if telemetry is not None:
            with telemetry.span("validate.pairing", pairing=name):
                report = runner.run(name)
        else:
            report = runner.run(name)
        result.gates.extend(report.gates)
        # Field diffs are localization detail, folded into the gate's
        # detail line so the rendered report names the drifted paths.
        if report.field_diffs and result.gates:
            drifted = ", ".join(d.path for d in report.field_diffs[:3])
            last = result.gates[-1]
            result.gates[-1] = GateResult(
                gate=last.gate,
                ok=last.ok,
                measured=last.measured,
                expected=last.expected,
                detail=f"{last.detail}; drifted: {drifted}",
            )
        if telemetry is not None:
            telemetry.count("validate.pairings", pairing=name)
    return result


def run_statistical(
    seeds: Optional[Tuple[int, ...]] = None,
    time_scale: float = STATISTICAL_TIME_SCALE,
    required: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> SuiteResult:
    """Distribution-level gates over a ladder of seeds.

    Each rung flies the four-session campaign at *time_scale*; the
    gates then assert:

    * every session's Garwood 95 % CI on the upset rate covers the
      calibrated :class:`LevelRateModel` expectation -- pooled over
      rungs with one coverage miss tolerated per ~20 checks (the CI's
      own advertised miss rate);
    * session upset counts across rungs are Poisson-dispersed
      (chi-square, both tails);
    * the pooled SDC share at Vmin matches the calibrated
      :class:`OutcomeMixModel` proportion (exact Clopper-Pearson);
    * per registered technology node, Garwood CIs on Poisson-drawn
      nominal-rate counts cover each node's calibrated model rate
      (pooled K-of-N over the same ladder -- no extra flights).
    """
    from ..experiments.config import shared_campaign

    seeds = tuple(seeds) if seeds is not None else STATISTICAL_SEEDS
    ladder = SeedLadder(seeds, required=max(1, len(seeds) - 1))
    rate_model = LevelRateModel()
    mix_model = OutcomeMixModel()

    campaigns = {}

    def campaign_for(seed: int):
        if seed not in campaigns:
            if telemetry is not None:
                with telemetry.span("validate.rung", seed=seed):
                    campaigns[seed] = shared_campaign(seed, time_scale)
            else:
                campaigns[seed] = shared_campaign(seed, time_scale)
        return campaigns[seed]

    result = SuiteResult(suite="statistical")

    def ci_coverage_trial(seed: int) -> Tuple[int, int]:
        campaign = campaign_for(seed)
        hits, total = 0, 0
        for label in campaign.labels():
            session = campaign.session(label)
            point = session.plan.point
            expected = rate_model.total_rate_per_min(
                point.pmd_mv, point.soc_mv, session.plan.flux_per_cm2_s
            )
            interval = poisson_rate_interval(
                session.upset_count, session.duration_minutes
            )
            gate = interval_coverage_gate(
                f"statistical/ci/{seed}/{label}", interval, expected
            )
            hits += int(gate.ok)
            total += 1
        return hits, total

    checks = len(seeds) * 4
    result.gates.append(
        ladder.run_counting(
            "statistical/upset_ci_coverage",
            ci_coverage_trial,
            required_hits=checks - max(1, checks // 10),
        )
    )

    counts_by_label: Dict[str, List[int]] = {}
    sdc_hits, sdc_total = 0, 0
    for seed in seeds:
        campaign = campaign_for(seed)
        for label in campaign.labels():
            session = campaign.session(label)
            if session.plan.target_failures is None:
                counts_by_label.setdefault(label, []).append(
                    session.upset_count
                )
            if session.plan.point.pmd_mv == 920:
                counts = session.failure_counts()
                sdc_hits += counts.get(OutcomeKind.SDC, 0)
                sdc_total += sum(counts.values())

    for label, counts in sorted(counts_by_label.items()):
        result.gates.append(
            poisson_dispersion_gate(
                f"statistical/dispersion/{label}", counts
            )
        )

    expected_rates = mix_model.rates_per_min(2400, 920)
    expected_sdc = expected_rates["SDC"] / sum(expected_rates.values())
    result.gates.append(
        proportion_gate(
            "statistical/sdc_share_vmin",
            sdc_hits,
            sdc_total,
            expected_sdc,
            level=0.999,
            method="clopper-pearson",
        )
    )

    # -- cross-node FIT coverage.  The flown campaigns above are all
    # 28 nm; the node axis is gated at the model layer instead: per
    # rung and per registered node, draw a Poisson upset count from the
    # node's calibrated nominal rate over a fixed exposure, then require
    # the Garwood CI on the drawn rate to cover the model expectation.
    # Same CI machinery, same pooled K-of-N acceptance -- and no extra
    # campaign flights.
    from ..rng import RngStreams
    from ..tech import get_node, list_nodes

    node_names = list_nodes()
    node_exposure_min = 600.0

    def node_fit_trial(seed: int) -> Tuple[int, int]:
        hits, total = 0, 0
        streams = RngStreams(seed)
        for name in node_names:
            node = get_node(name)
            node_rates = LevelRateModel.for_node(node)
            expected = node_rates.total_rate_per_min(
                node.pmd_nominal_mv, node.soc_nominal_mv
            )
            rng = streams.child("validate-node-fit", node=name)
            count = int(rng.poisson(expected * node_exposure_min))
            interval = poisson_rate_interval(count, node_exposure_min)
            gate = interval_coverage_gate(
                f"statistical/node_fit/{seed}/{name}", interval, expected
            )
            hits += int(gate.ok)
            total += 1
        return hits, total

    node_checks = len(seeds) * len(node_names)
    result.gates.append(
        ladder.run_counting(
            "statistical/node_fit_ci_coverage",
            node_fit_trial,
            required_hits=node_checks - max(1, node_checks // 10),
        )
    )
    if telemetry is not None:
        telemetry.count("validate.gates", n=len(result.gates))
    return result


def run_suites(
    suites: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    telemetry: Optional[Telemetry] = None,
) -> ConformanceReport:
    """Run the named suites (default: all three) into one report."""
    selected = list(suites) if suites is not None else list(SUITES)
    unknown = [s for s in selected if s not in SUITES]
    if unknown:
        raise ValidationError(
            f"unknown suite(s) {unknown}; choose from {list(SUITES)}"
        )
    report = ConformanceReport(seed=seed, time_scale=time_scale)
    for suite in selected:
        if suite == "conformance":
            report.suites.append(
                run_conformance(
                    seed=seed, time_scale=time_scale, telemetry=telemetry
                )
            )
        elif suite == "differential":
            report.suites.append(
                run_differential(seed=seed, telemetry=telemetry)
            )
        else:
            report.suites.append(run_statistical(telemetry=telemetry))
    return report
