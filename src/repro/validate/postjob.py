"""Post-job gates: automatic validation of a just-assembled campaign.

``repro-campaign serve --validate`` runs these after every submission
is assembled, turning the service into a self-checking pipeline: a
result that drifts from the calibrated physics is flagged in
``validation.json`` (and in the broker's ``status.json``) the moment
it lands, instead of waiting for someone to run the conformance suite
by hand.

Two kinds of gate, both pure functions of the committed
``campaign.json`` dict:

* **roundtrip** -- the dict decodes through the session model and the
  decode/encode pair *converges*: one more hop reproduces the
  re-encoded dict exactly.  (Strict first-hop equality is deliberately
  not required -- the decoder documents two lossy fields: per-run
  failure lists collapse to session scope, and the fluence account is
  rebuilt as rate x seconds.)  A **invariants** companion gate pins
  the physics that must survive the first hop anyway: session labels,
  per-session failure counts, upset counts and durations.  A failure
  in either means the committed payloads and the in-memory model
  disagree about the serialization contract, which would silently
  poison every later ``analyze`` / ``export`` of the directory.
* **upsets** -- one Poisson count gate per session: the detected upset
  count must be statistically consistent with the calibrated
  :class:`~repro.injection.calibration.LevelRateModel` expectation for
  the session's operating point, flux and beam-on duration.  The
  acceptance region is the central Poisson interval at the gates
  module's ``DEFAULT_EPSILON``, so a healthy service essentially never
  trips it while a miscalibrated or corrupted run does.
"""

from __future__ import annotations

from typing import List

from ..injection.calibration import LevelRateModel
from ..io.json_store import campaign_from_dict, campaign_to_dict
from .gates import GateResult, poisson_count_gate


def postjob_gates(campaign_dict: dict) -> List[GateResult]:
    """All post-job gates for one assembled campaign dict."""
    campaign = campaign_from_dict(campaign_dict)
    encoded = campaign_to_dict(campaign)
    stable = campaign_to_dict(campaign_from_dict(encoded)) == encoded
    gates = [
        GateResult(
            gate="postjob/roundtrip",
            ok=stable,
            measured="converged" if stable else "divergent",
            expected="converged",
            detail=(
                "to_dict(from_dict(.)) is a fixed point after one hop"
                if stable
                else "decode/re-encode keeps changing the campaign "
                "dict; the committed payloads disagree with the "
                "session model"
            ),
        )
    ]
    drifted = []
    for label, data in sorted(campaign_dict["sessions"].items()):
        session = campaign.session(label)
        if len(data["failures"]) != session.failure_count:
            drifted.append(f"{label}: failure count")
        if len(data["upsets"]) != len(session.upsets.upsets):
            drifted.append(f"{label}: upset events")
        if sum(data["counts"].values()) != session.upset_count:
            drifted.append(f"{label}: upset counts")
        encoded_seconds = data["fluence"]["exposure_seconds"]
        if abs(encoded_seconds - session.fluence.exposure_seconds) > 1e-6:
            drifted.append(f"{label}: exposure")
    labels = sorted(campaign_dict["sessions"])
    if labels != sorted(campaign.labels()):
        drifted.append("session labels")
    gates.append(
        GateResult(
            gate="postjob/invariants",
            ok=not drifted,
            measured="preserved" if not drifted else "; ".join(drifted),
            expected="preserved",
            detail=(
                "labels, failure/upset counts and exposure survive "
                "decoding"
            ),
        )
    )
    model = LevelRateModel()
    for label in campaign.labels():
        session = campaign.session(label)
        point = session.plan.point
        mean = (
            model.total_rate_per_min(
                point.pmd_mv, point.soc_mv, session.plan.flux_per_cm2_s
            )
            * session.duration_minutes
        )
        gates.append(
            poisson_count_gate(
                f"postjob/upsets/{label}", session.upset_count, mean
            )
        )
    return gates


def postjob_report(campaign_dict: dict) -> dict:
    """The ``validation.json`` payload for one assembled campaign."""
    gates = postjob_gates(campaign_dict)
    return {
        "schema": 1,
        "ok": all(gate.ok for gate in gates),
        "gates": [gate.to_dict() for gate in gates],
    }
