"""Differential testing: paired configurations that must agree.

The engine, telemetry, and resilience layers each promise some flavour
of "this knob does not change the physics":

``executor``
    ``SerialExecutor`` vs ``ParallelExecutor(4)`` -- byte-identical
    campaigns (the engine's headline guarantee).
``telemetry``
    Telemetry off vs on -- byte-identical campaigns (observation is
    inert).
``resume``
    An uninterrupted ``ResilientCampaign`` vs one crashed after two
    journaled units and resumed -- byte-identical ``campaign.json``.
``broker``
    A plain serial campaign vs the same spec planned, submitted to a
    store-backed :class:`~repro.scheduler.Broker`, leased out in small
    batches to a supervised pool, and assembled from the committed
    payloads -- byte-identical (scheduling decides *when and where*
    units run, never what they compute).
``lease_resume``
    A broker that completes everything vs one that commits half the
    units and is abandoned mid-lease, with a *second* broker on the
    same shared directory adopting the commits and taking over the
    expired leases -- byte-identical assembled campaigns (the
    dead-worker pickup path).
``store_chaos``
    A plain serial campaign vs *two* brokers draining the same plan
    through one :class:`~repro.scheduler.FaultyStore` that injects
    torn writes, post-commit corruption, a ghost duplicate-link win,
    a stale read and a transient errno -- byte-identical assembled
    campaigns, with every corrupted record recovered through
    ``quarantine/`` + re-commit (the store-hardening guarantee).
``injector``
    Vectorized vs scalar injection.  These deliberately consume their
    RNG streams differently (one draw layout per path), so the promise
    is *statistical*, not byte: both sample the same calibrated
    distributions, checked with Poisson same-distribution gates on
    per-session upset and failure counts.
``codec_scalar_vs_vectorized``
    For every codec in the :mod:`repro.codecs` registry: the scalar
    per-word ``classify`` vs the batched numpy path, over a mixed
    population of error weights including adjacent runs.  Unlike the
    injector pairing this promise *is* exact -- both paths decode the
    same corrupted codewords, so status codes and returned data must
    match word-for-word.

:class:`DifferentialRunner` flies each pairing from one seed and diffs
the results.  Byte pairings that disagree are decoded and diffed
field-by-field (:func:`diff_encoded`), so the report names the exact
JSON paths that drifted instead of "bytes differ".

This module is also the shared home of :func:`canonical_campaign_json`,
the canonical serialized form that the engine/telemetry/chaos test
suites previously each re-implemented inline.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..engine import ExecutionContext, ParallelExecutor, SerialExecutor
from ..errors import ValidationError
from ..harness.campaign import Campaign, CampaignResult
from ..io.json_store import (
    campaign_dict_from_entries,
    campaign_to_dict,
    session_to_dict,
)
from ..io.results_dir import ResultsDirectory
from ..resilient import (
    ChaosSpec,
    ResilientCampaign,
    SimulatedCrash,
    SupervisedExecutor,
    SupervisionPolicy,
)
from ..telemetry import Telemetry
from .gates import GateResult, poisson_pair_gate

#: Pairing names, in report order.
PAIRINGS = (
    "executor",
    "telemetry",
    "injector",
    "codec_scalar_vs_vectorized",
    "resume",
    "broker",
    "lease_resume",
    "store_chaos",
    "tech_anchor",
)

#: Maximum leaf diffs a report keeps per pairing (enough to localize a
#: divergence without dumping two whole campaigns).
MAX_FIELD_DIFFS = 10


def canonical_campaign_json(campaign: CampaignResult) -> str:
    """The canonical byte form of a campaign: sorted-key JSON.

    Every byte-identity promise in the repo (serial == parallel,
    telemetry inert, resumed == uninterrupted) is stated over this
    serialization -- it captures every upset, failure, EDAC record and
    run outcome.
    """
    return json.dumps(campaign_to_dict(campaign), sort_keys=True)


@dataclass(frozen=True)
class FieldDiff:
    """One leaf where two paired results disagree."""

    path: str
    a: str
    b: str

    def render(self) -> str:
        return f"  {self.path}: {self.a} != {self.b}"


def diff_encoded(a: object, b: object, path: str = "$") -> List[FieldDiff]:
    """Field-by-field diff of two JSON-able trees (depth-first).

    Returns at most :data:`MAX_FIELD_DIFFS` leaf differences; a type or
    shape mismatch is reported at the node where it occurs.
    """
    diffs: List[FieldDiff] = []
    _walk_diff(a, b, path, diffs)
    return diffs


def _walk_diff(a, b, path, diffs: List[FieldDiff]) -> None:
    if len(diffs) >= MAX_FIELD_DIFFS:
        return
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                diffs.append(FieldDiff(f"{path}.{key}", "<absent>", _short(b[key])))
            elif key not in b:
                diffs.append(FieldDiff(f"{path}.{key}", _short(a[key]), "<absent>"))
            else:
                _walk_diff(a[key], b[key], f"{path}.{key}", diffs)
            if len(diffs) >= MAX_FIELD_DIFFS:
                return
        return
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(
                FieldDiff(path, f"list[{len(a)}]", f"list[{len(b)}]")
            )
            return
        for index, (x, y) in enumerate(zip(a, b)):
            _walk_diff(x, y, f"{path}[{index}]", diffs)
            if len(diffs) >= MAX_FIELD_DIFFS:
                return
        return
    if a != b:
        diffs.append(FieldDiff(path, _short(a), _short(b)))


def _short(value: object) -> str:
    text = json.dumps(value, sort_keys=True) if not isinstance(value, str) else value
    return text if len(text) <= 48 else text[:45] + "..."


@dataclass
class DiffReport:
    """Verdict of one pairing: its gates plus any localized field diffs."""

    pairing: str
    gates: List[GateResult] = field(default_factory=list)
    field_diffs: List[FieldDiff] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(g.ok for g in self.gates)

    def render(self) -> str:
        lines = [g.render() for g in self.gates]
        lines.extend(d.render() for d in self.field_diffs)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "pairing": self.pairing,
            "ok": self.ok,
            "gates": [g.to_dict() for g in self.gates],
            "field_diffs": [
                {"path": d.path, "a": d.a, "b": d.b} for d in self.field_diffs
            ],
        }


class DifferentialRunner:
    """Flies the paired configurations and diffs their results.

    Parameters
    ----------
    seed / time_scale:
        The single configuration every pairing flies (both sides of a
        pair always share them).
    workdir:
        Where the ``resume`` pairing keeps its journaled runs; a
        temporary directory is created (and reused across pairings)
        when omitted.
    """

    def __init__(
        self,
        seed: int = 2023,
        time_scale: float = 0.01,
        workdir: Optional[str] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValidationError("time_scale must be positive")
        self.seed = int(seed)
        self.time_scale = float(time_scale)
        self._workdir = workdir
        self._pairings: Dict[str, Callable[[], DiffReport]] = {
            "executor": self._pair_executor,
            "telemetry": self._pair_telemetry,
            "injector": self._pair_injector,
            "codec_scalar_vs_vectorized": self._pair_codecs,
            "resume": self._pair_resume,
            "broker": self._pair_broker,
            "lease_resume": self._pair_lease_resume,
            "store_chaos": self._pair_store_chaos,
            "tech_anchor": self._pair_tech_anchor,
        }

    def pairings(self) -> List[str]:
        """Pairing names, in report order."""
        return [name for name in PAIRINGS if name in self._pairings]

    def run(self, pairing: str) -> DiffReport:
        """Fly one pairing and diff it."""
        if pairing not in self._pairings:
            raise ValidationError(
                f"unknown pairing {pairing!r}; choose from {self.pairings()}"
            )
        return self._pairings[pairing]()

    def run_all(self, names: Optional[List[str]] = None) -> List[DiffReport]:
        """Fly the named pairings (default: all) in report order."""
        selected = names if names is not None else self.pairings()
        return [self.run(name) for name in selected]

    # -- pairing implementations -------------------------------------------------

    def _fly(self, executor=None, telemetry=None) -> CampaignResult:
        context = ExecutionContext(
            seed=self.seed, time_scale=self.time_scale, telemetry=telemetry
        )
        return Campaign(context=context, executor=executor).run()

    def _byte_report(
        self, pairing, label_a, a, label_b, b, bytes_b: Optional[str] = None
    ) -> DiffReport:
        bytes_a = canonical_campaign_json(a)
        if bytes_b is None:
            bytes_b = canonical_campaign_json(b)
        ok = bytes_a == bytes_b
        report = DiffReport(
            pairing=pairing,
            gates=[
                GateResult(
                    gate=f"differential/{pairing}",
                    ok=ok,
                    measured=f"{len(bytes_a)} vs {len(bytes_b)} bytes",
                    expected="byte-identical campaigns",
                    detail=f"{label_a} vs {label_b}, canonical JSON",
                )
            ],
        )
        if not ok:
            report.field_diffs = diff_encoded(
                json.loads(bytes_a), json.loads(bytes_b)
            )
        return report

    def _pair_executor(self) -> DiffReport:
        serial = self._fly(executor=SerialExecutor())
        parallel = self._fly(executor=ParallelExecutor(4))
        return self._byte_report(
            "executor", "serial", serial, "parallel(4)", parallel
        )

    def _pair_tech_anchor(self) -> DiffReport:
        # The 28 nm anchor node must be invisible: a campaign pinned to
        # "xgene2-28" is the same physics as one with no node at all,
        # down to the config hash (so journals, submission ids and
        # checkpoints written before the node axis existed stay valid).
        context = ExecutionContext(seed=self.seed, time_scale=self.time_scale)
        plain = Campaign(context=context)
        anchored = Campaign(context=context, tech_node="xgene2-28")
        hash_a, hash_b = plain.config_hash(), anchored.config_hash()
        report = self._byte_report(
            "tech_anchor",
            "no node",
            plain.run(),
            'tech_node="xgene2-28"',
            anchored.run(),
        )
        report.gates.append(
            GateResult(
                gate="differential/tech_anchor/config_hash",
                ok=hash_a == hash_b,
                measured=f"{hash_a[:12]} vs {hash_b[:12]}",
                expected="identical config hashes",
                detail="anchor node must not move the campaign identity",
            )
        )
        return report

    def _pair_telemetry(self) -> DiffReport:
        silent = self._fly()
        observed = self._fly(telemetry=Telemetry())
        return self._byte_report(
            "telemetry", "telemetry off", silent, "telemetry on", observed
        )

    def _pair_injector(self) -> DiffReport:
        # The scalar and vectorized injectors consume their streams in
        # different draw layouts, so identical bytes are impossible by
        # design; the promise is that both sample the same calibrated
        # distributions.
        context = ExecutionContext(seed=self.seed, time_scale=self.time_scale)
        vectorized = Campaign(context=context, vectorized=True).run()
        scalar = Campaign(context=context, vectorized=False).run()
        report = DiffReport(pairing="injector")
        for label in vectorized.labels():
            a, b = vectorized.session(label), scalar.session(label)
            report.gates.append(
                poisson_pair_gate(
                    f"differential/injector/{label}/upsets",
                    a.upset_count,
                    b.upset_count,
                )
            )
            report.gates.append(
                poisson_pair_gate(
                    f"differential/injector/{label}/failures",
                    a.failure_count,
                    b.failure_count,
                )
            )
        return report

    def _pair_codecs(self) -> DiffReport:
        # Imported lazily: repro.codecs.sweep itself imports the gates
        # from this package, so a module-level import would be cyclic.
        import numpy as np

        from ..codecs import STATUS_OF_CODE, get_codec, list_codecs, pack_masks
        from ..rng import RngStreams

        samples = 256
        report = DiffReport(pairing="codec_scalar_vs_vectorized")
        for name in list_codecs():
            bundle = get_codec(name)
            codec, vectorized = bundle.codec, bundle.vectorized
            rng = RngStreams(self.seed).child("codec-diff", codec=name)
            if codec.data_bits >= 64:
                high = rng.integers(0, 1 << 32, size=samples, dtype=np.uint64)
                low = rng.integers(0, 1 << 32, size=samples, dtype=np.uint64)
                data = (high << np.uint64(32)) | low
            else:
                data = rng.integers(
                    0, 1 << codec.data_bits, size=samples, dtype=np.uint64
                )
            masks = []
            for i in range(samples):
                if i % 2 == 0:
                    # Scattered flips of weight 0..4 (covers clean,
                    # correct, detect, and aliasing regimes).
                    weight = i % 5
                    positions = rng.choice(
                        codec.word_bits, size=weight, replace=False
                    )
                    mask = 0
                    for pos in positions:
                        mask |= 1 << int(pos)
                else:
                    # Adjacent runs, the MBU-shaped patterns.
                    length = (i % 4) + 1
                    start = int(rng.integers(0, codec.word_bits - length + 1))
                    mask = ((1 << length) - 1) << start
                masks.append(mask)
            status_vec, data_vec = vectorized.classify_batch(
                data, pack_masks(masks, vectorized.limbs)
            )
            mismatches = 0
            for i in range(samples):
                scalar = codec.classify(int(data[i]), masks[i])
                if (
                    scalar.status is not STATUS_OF_CODE[int(status_vec[i])]
                    or scalar.data != int(data_vec[i])
                ):
                    mismatches += 1
            report.gates.append(
                GateResult(
                    gate=f"differential/codec/{name}",
                    ok=mismatches == 0,
                    measured=f"{mismatches} mismatching words",
                    expected=f"0 of {samples}",
                    detail="scalar classify vs batched classify "
                    "(status + data, exact)",
                )
            )
        return report

    def _pair_resume(self) -> DiffReport:
        workdir = self._workdir or tempfile.mkdtemp(prefix="repro-diff-")
        policy = SupervisionPolicy(backoff_s=0.0)

        def flight(name, chaos=None, resume=False):
            results = ResultsDirectory(os.path.join(workdir, name))
            runner = ResilientCampaign(
                context=ExecutionContext(
                    seed=self.seed, time_scale=self.time_scale
                ),
                policy=policy,
                chaos=chaos,
                fsync="never",
            )
            report = runner.run(results, resume=resume)
            report.persist(results)
            path = os.path.join(workdir, name, "campaign.json")
            with open(path, "rb") as handle:
                return handle.read()

        fresh_bytes = flight("fresh")
        try:
            flight("resumed", chaos=ChaosSpec(crash_after_units=2))
        except SimulatedCrash:
            pass  # the deliberate mid-campaign crash
        resumed_bytes = flight("resumed", resume=True)

        ok = fresh_bytes == resumed_bytes
        report = DiffReport(
            pairing="resume",
            gates=[
                GateResult(
                    gate="differential/resume",
                    ok=ok,
                    measured=f"{len(fresh_bytes)} vs {len(resumed_bytes)} bytes",
                    expected="byte-identical campaign.json",
                    detail="uninterrupted vs crash-after-2-units + resume",
                )
            ],
        )
        if not ok:
            report.field_diffs = diff_encoded(
                json.loads(fresh_bytes), json.loads(resumed_bytes)
            )
        return report

    # -- scheduler pairings ------------------------------------------------------

    def _campaign_plan(self):
        from ..scheduler import CampaignSpec, plan_campaign

        return plan_campaign(
            CampaignSpec(seed=self.seed, time_scale=self.time_scale)
        )

    @staticmethod
    def _run_leases(broker, leases, executor) -> None:
        """Fly one leased batch on a supervised pool; commit payloads."""

        def settle(index, report, result):
            lease = leases[index]
            if report.ok:
                session_result, sram_bits, snapshot = result
                broker.complete(
                    lease,
                    result,
                    payload={
                        "key": lease.label,
                        "attempts": report.attempts,
                        "sram_bits": sram_bits,
                        "session": session_to_dict(session_result),
                        "metrics": snapshot,
                    },
                )
            else:
                broker.fail(lease, report.error or "failed")

        executor.map([lease.unit for lease in leases], on_result=settle)

    def _drain_in_batches(self, broker, worker: str, batch: int = 2) -> None:
        # One warm executor across every lease batch: the pairing then
        # proves pool *reuse* (not just pooled execution) preserves
        # byte-identity with the serial reference.
        executor = SupervisedExecutor(
            policy=SupervisionPolicy(backoff_s=0.0), workers=2
        )
        try:
            while True:
                leases = broker.lease(worker, limit=batch)
                if not leases:
                    break
                self._run_leases(broker, leases, executor)
        finally:
            executor.close()

    @staticmethod
    def _assembled_json(broker, plan) -> str:
        entries = broker.entries_for(plan.submission_id)
        return json.dumps(
            campaign_dict_from_entries(entries), sort_keys=True
        )

    def _pair_broker(self) -> DiffReport:
        from ..scheduler import Broker, DirectoryStore

        serial = self._fly(executor=SerialExecutor())
        workdir = tempfile.mkdtemp(
            prefix="repro-diff-broker-", dir=self._workdir
        )
        store = DirectoryStore(os.path.join(workdir, "store"))
        plan = self._campaign_plan()
        broker = Broker(store=store, broker_id="diff-broker")
        broker.submit(plan)
        # Two-unit lease batches: the campaign crosses the broker in
        # shards, not one map call, and still must not change a byte.
        self._drain_in_batches(broker, "diff-broker", batch=2)
        return self._byte_report(
            "broker",
            "serial Campaign.run",
            serial,
            "broker-sharded (batches of 2, supervised pool)",
            None,
            bytes_b=self._assembled_json(broker, plan),
        )

    def _pair_lease_resume(self) -> DiffReport:
        from ..scheduler import Broker, DirectoryStore

        base = tempfile.mkdtemp(
            prefix="repro-diff-lease-", dir=self._workdir
        )
        clock = {"now": 1_000_000.0}

        def now() -> float:
            return clock["now"]

        # Fresh flight: one broker on its own store completes all units.
        plan_fresh = self._campaign_plan()
        fresh_broker = Broker(
            store=DirectoryStore(os.path.join(base, "fresh"), clock=now),
            broker_id="fresh",
            clock=now,
        )
        fresh_broker.submit(plan_fresh)
        self._drain_in_batches(fresh_broker, "fresh")
        fresh_json = self._assembled_json(fresh_broker, plan_fresh)

        # Shared store: broker A commits the first two units, leases the
        # next two, then is abandoned with those leases still published.
        shared = DirectoryStore(os.path.join(base, "shared"), clock=now)
        plan_a = self._campaign_plan()
        broker_a = Broker(
            store=shared, broker_id="dead", clock=now, lease_ttl_s=30.0
        )
        broker_a.submit(plan_a)
        executor_a = SupervisedExecutor(
            policy=SupervisionPolicy(backoff_s=0.0), workers=2
        )
        try:
            self._run_leases(
                broker_a, broker_a.lease("dead", limit=2), executor_a
            )
        finally:
            executor_a.close()
        abandoned = broker_a.lease("dead", limit=2)

        # Broker B on the same store: adopts A's commits at submit time,
        # must NOT lease past A's live leases, and takes them over only
        # once they expire.
        plan_b = self._campaign_plan()
        broker_b = Broker(
            store=shared, broker_id="survivor", clock=now, lease_ttl_s=30.0
        )
        broker_b.submit(plan_b)
        adopted = sum(
            1
            for unit in plan_b.units
            if broker_b.unit_status(unit.unit_id) == "done"
        )
        blocked = broker_b.lease("survivor", limit=4)
        for lease in blocked:  # should be none -- A's leases are live
            broker_b.fail(lease, "leased past a live foreign lease")
        clock["now"] += 31.0  # A's leases expire
        self._drain_in_batches(broker_b, "survivor")
        resumed_json = self._assembled_json(broker_b, plan_b)

        ok_bytes = fresh_json == resumed_json
        ok_pickup = (
            len(abandoned) == 2 and adopted == 2 and not blocked
        )
        report = DiffReport(
            pairing="lease_resume",
            gates=[
                GateResult(
                    gate="differential/lease_resume",
                    ok=ok_bytes,
                    measured=(
                        f"{len(fresh_json)} vs {len(resumed_json)} bytes"
                    ),
                    expected="byte-identical assembled campaigns",
                    detail="single broker vs abandoned-lease takeover",
                ),
                GateResult(
                    gate="differential/lease_resume/pickup",
                    ok=ok_pickup,
                    measured=(
                        f"adopted={adopted}, abandoned={len(abandoned)}, "
                        f"leased-past-live={len(blocked)}"
                    ),
                    expected="adopted=2, abandoned=2, leased-past-live=0",
                    detail="commit adoption + lease-expiry takeover",
                ),
            ],
        )
        if not ok_bytes:
            report.field_diffs = diff_encoded(
                json.loads(fresh_json), json.loads(resumed_json)
            )
        return report

    def _pair_store_chaos(self) -> DiffReport:
        from ..scheduler import Broker, FaultyStore, StoreChaosSpec

        serial = self._fly(executor=SerialExecutor())
        workdir = tempfile.mkdtemp(
            prefix="repro-diff-chaos-", dir=self._workdir
        )
        # One fault of every kind, placed early so the very first
        # commit survives a torn write, a transient EIO on its link,
        # and post-commit bit rot (driving the broker's full
        # quarantine + re-commit loop), plus a ghost link win and a
        # stale read later in the drain.
        chaos = StoreChaosSpec(
            torn_write=(0,),
            transient_errno=(1,),
            corrupt_commit=(2,),
            duplicate_link=(6,),
            stale_read=(12,),
        )
        store = FaultyStore(
            os.path.join(workdir, "store"), chaos, sleep=lambda _s: None
        )
        plan_a, plan_b = self._campaign_plan(), self._campaign_plan()
        broker_a = Broker(store=store, broker_id="chaos-a")
        broker_b = Broker(store=store, broker_id="chaos-b")
        broker_a.submit(plan_a)
        broker_b.submit(plan_b)
        executor = SupervisedExecutor(
            policy=SupervisionPolicy(backoff_s=0.0), workers=2
        )
        max_rounds, rounds = 12, 0
        try:
            while rounds < max_rounds and not (
                broker_a.is_complete(plan_a.submission_id)
                and broker_b.is_complete(plan_b.submission_id)
            ):
                rounds += 1
                for broker, worker in (
                    (broker_a, "chaos-a"),
                    (broker_b, "chaos-b"),
                ):
                    leases = broker.lease(worker, limit=2)
                    if leases:
                        self._run_leases(broker, leases, executor)
        finally:
            executor.close()
        assembled_a = self._assembled_json(broker_a, plan_a)
        assembled_b = self._assembled_json(broker_b, plan_b)
        report = self._byte_report(
            "store_chaos",
            "serial Campaign.run",
            serial,
            "2 brokers over a FaultyStore",
            None,
            bytes_b=assembled_a,
        )
        agree = assembled_a == assembled_b
        report.gates.append(
            GateResult(
                gate="differential/store_chaos/convergence",
                ok=rounds < max_rounds and agree,
                measured=f"rounds={rounds}, brokers agree={agree}",
                expected=(
                    f"both brokers complete in < {max_rounds} rounds "
                    f"and assemble the same bytes"
                ),
                detail="alternating 2-unit batches over one faulted store",
            )
        )
        health = store.health()
        reasons = store.quarantined_units()
        ok_quarantine = (
            health["quarantined"] >= 2
            and len(reasons) == health["quarantined"]
            and all(r.get("reason") for r in reasons)
        )
        report.gates.append(
            GateResult(
                gate="differential/store_chaos/quarantine",
                ok=ok_quarantine,
                measured=(
                    f"quarantined={health['quarantined']}, "
                    f"reason files={len(reasons)}, "
                    f"injected={sum(store.injected.values())}"
                ),
                expected=">= 2 quarantined records, each with a reason",
                detail="torn/corrupt records recovered via quarantine "
                "+ re-commit",
            )
        )
        return report
