"""Calibration anchors: the paper's measured rates and their interpolators.

Every stochastic model in the simulator is pinned to the numbers the
paper actually reports:

* **Per-level upset rates** (Figs. 6-7): detected upsets/minute per
  cache level at 980 mV / 2.4 GHz, with per-level exponential voltage
  slopes fit from the undervolted measurements.  The levels live in
  different voltage domains (TLB/L1/L2 in the PMD, L3 in the SoC), so
  the 790 mV @ 900 MHz point exercises the domain split: the L3's rate
  barely moves while the PMD arrays' rates jump -- exactly the paper's
  Section 4.3 observation.
* **Outcome mixes** (Fig. 8, Table 2, Figs. 11-13): software-failure
  rates per minute by category, and the probability that an SDC comes
  with a corrected-error notification.

Interpolation between anchors is log-linear in voltage (rates are
positive and the paper's own Fig. 11 shows super-exponential SDC growth
near Vmin, which a log-linear spline tracks faithfully).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..constants import (
    PMD_NOMINAL_MV,
    SOC_NOMINAL_MV,
    TNF_HALO_FLUX_PER_CM2_S,
)
from ..errors import ConfigurationError
from ..soc.geometry import CacheLevel

# --- Per-level upset-rate anchors (Fig. 6, 980 mV / 2.4 GHz) -----------------

#: Suite-average detected upsets per minute at the nominal setting,
#: keyed by (level, corrected?).  The L3 is the only level reporting
#: uncorrected errors (no interleaving; Section 4.3).
LEVEL_BASE_RATES_980MV: Dict[Tuple[CacheLevel, bool], float] = {
    (CacheLevel.TLB, True): 0.016,
    (CacheLevel.L1, True): 0.028,
    (CacheLevel.L2, True): 0.157,
    (CacheLevel.L3, True): 0.765,
    (CacheLevel.L3, False): 0.038,
}

#: Exponential voltage sensitivity per level, fit from Figs. 6-7:
#: rate(V) = rate_980 * exp(k * (V_nom - V) / V_nom) over the level's
#: own domain nominal.  The deep-undervolt 790 mV point dominates the
#: PMD fits; the SoC (L3) fit comes from the 925/920 mV SoC settings.
LEVEL_VOLTAGE_SLOPES: Dict[CacheLevel, float] = {
    CacheLevel.TLB: 3.2,
    CacheLevel.L1: 4.3,
    CacheLevel.L2: 3.3,
    CacheLevel.L3: 2.6,
}

#: Which voltage domain each level draws from.
LEVEL_DOMAIN: Dict[CacheLevel, str] = {
    CacheLevel.TLB: "pmd",
    CacheLevel.L1: "pmd",
    CacheLevel.L2: "pmd",
    CacheLevel.L3: "soc",
}

@dataclass(frozen=True)
class LevelRateModel:
    """Expected detected-upset rates per cache level and severity.

    The anchors are suite averages under the halo flux
    (1.5e6 n/cm^2/s); rates scale linearly with flux.
    """

    base_rates: Dict[Tuple[CacheLevel, bool], float] = field(
        default_factory=lambda: dict(LEVEL_BASE_RATES_980MV)
    )
    slopes: Dict[CacheLevel, float] = field(
        default_factory=lambda: dict(LEVEL_VOLTAGE_SLOPES)
    )
    reference_flux: float = TNF_HALO_FLUX_PER_CM2_S
    pmd_nominal_mv: float = float(PMD_NOMINAL_MV)
    soc_nominal_mv: float = float(SOC_NOMINAL_MV)

    @classmethod
    def for_node(cls, node) -> "LevelRateModel":
        """The rate model at a technology node.

        Base rates scale with the node's per-bit cross-section (times
        the core count for the replicated PMD-side structures), voltage
        slopes with its sensitivity factor, and undervolt fractions are
        taken against the node's own domain nominals.  The default
        28 nm anchor returns the paper-calibrated model unchanged.
        """
        if node is None or getattr(node, "is_default", False):
            return cls()
        base_rates = {
            (level, corrected): rate * node.rate_scale(LEVEL_DOMAIN[level])
            for (level, corrected), rate in LEVEL_BASE_RATES_980MV.items()
        }
        slopes = {
            level: slope * node.slope_scale
            for level, slope in LEVEL_VOLTAGE_SLOPES.items()
        }
        return cls(
            base_rates=base_rates,
            slopes=slopes,
            pmd_nominal_mv=float(node.pmd_nominal_mv),
            soc_nominal_mv=float(node.soc_nominal_mv),
        )

    def undervolt_fraction(self, level: CacheLevel, pmd_mv: float, soc_mv: float) -> float:
        """Relative undervolt of the domain feeding *level*."""
        domain = LEVEL_DOMAIN[level]
        nominal = (
            self.pmd_nominal_mv if domain == "pmd" else self.soc_nominal_mv
        )
        voltage = pmd_mv if domain == "pmd" else soc_mv
        if voltage <= 0:
            raise ConfigurationError("voltages must be positive")
        return (nominal - voltage) / nominal

    def rate_per_min(
        self,
        level: CacheLevel,
        corrected: bool,
        pmd_mv: float,
        soc_mv: float,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
    ) -> float:
        """Expected detected upsets/minute for one (level, severity)."""
        base = self.base_rates.get((level, corrected), 0.0)
        if base == 0.0:
            return 0.0
        u = self.undervolt_fraction(level, pmd_mv, soc_mv)
        slope = self.slopes[level]
        return base * float(np.exp(slope * u)) * (
            flux_per_cm2_s / self.reference_flux
        )

    def total_rate_per_min(
        self,
        pmd_mv: float,
        soc_mv: float,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
    ) -> float:
        """Chip-level detected upsets/minute, all levels and severities."""
        return sum(
            self.rate_per_min(level, corrected, pmd_mv, soc_mv, flux_per_cm2_s)
            for (level, corrected) in self.base_rates
        )


# --- Software-outcome anchors (Fig. 8, Table 2, Figs. 12-13) ------------------

#: Measured failure rates per minute by category, keyed by
#: (freq_MHz, pmd_mV).  Derived from Table 2's "SDCs and crashes rate"
#: multiplied by Fig. 8's category percentages; the 790 mV split uses
#: Fig. 13's SDC FIT share (46 % SDC) with the crash remainder divided
#: app:sys ~ 1:4.4 as at neighbouring settings (documented assumption,
#: see EXPERIMENTS.md).
OUTCOME_RATE_ANCHORS: Dict[Tuple[int, int], Dict[str, float]] = {
    (2400, 980): {
        "AppCrash": 0.0575 * 0.179,
        "SysCrash": 0.0575 * 0.516,
        "SDC": 0.0575 * 0.305,
    },
    (2400, 930): {
        "AppCrash": 0.0599 * 0.072,
        "SysCrash": 0.0599 * 0.371,
        "SDC": 0.0599 * 0.557,
    },
    (2400, 920): {
        "AppCrash": 0.311 * 0.021,
        "SysCrash": 0.311 * 0.057,
        "SDC": 0.311 * 0.922,
    },
    (900, 790): {
        "AppCrash": 0.0787 * 0.10,
        "SysCrash": 0.0787 * 0.44,
        "SDC": 0.0787 * 0.46,
    },
}

#: Probability that an SDC is accompanied by a corrected-error
#: notification, from Figs. 12-13 (w/ notification FIT / total SDC FIT).
SDC_NOTIFICATION_PROBABILITY: Dict[Tuple[int, int], float] = {
    (2400, 980): 0.70 / 2.54,
    (2400, 930): 0.98 / 4.82,
    (2400, 920): 2.23 / 41.43,
    (900, 790): 0.88 / 5.27,
}


@dataclass(frozen=True)
class OutcomeMixModel:
    """Interpolates failure rates per category across operating points.

    Within one frequency, category rates are interpolated log-linearly
    in PMD voltage between the measured anchors (clamped outside).
    An unmeasured frequency falls back to the nearest measured one.
    """

    anchors: Dict[Tuple[int, int], Dict[str, float]] = field(
        default_factory=lambda: {
            k: dict(v) for k, v in OUTCOME_RATE_ANCHORS.items()
        }
    )
    notification: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: dict(SDC_NOTIFICATION_PROBABILITY)
    )

    @classmethod
    def for_node(cls, node) -> "OutcomeMixModel":
        """The outcome-mix model at a technology node.

        The measured (frequency, PMD voltage) anchor keys are mapped
        through the node's operating-point scaling so interpolation
        happens in the node's own voltage range, and the category
        rates scale with the node's chip-level upset rate (the failures
        are downstream of the upsets).  Notification probabilities are
        conditional and carry over unscaled.  The default 28 nm anchor
        returns the paper-calibrated model unchanged.
        """
        if node is None or getattr(node, "is_default", False):
            return cls()
        rate_scale = node.rate_scale("pmd")
        anchors = {
            (node.scale_freq_mhz(freq), node.scale_pmd_mv(pmd)): {
                cat: rate * rate_scale for cat, rate in rates.items()
            }
            for (freq, pmd), rates in OUTCOME_RATE_ANCHORS.items()
        }
        notification = {
            (node.scale_freq_mhz(freq), node.scale_pmd_mv(pmd)): prob
            for (freq, pmd), prob in SDC_NOTIFICATION_PROBABILITY.items()
        }
        if len(anchors) != len(OUTCOME_RATE_ANCHORS):
            raise ConfigurationError(
                f"node {node.name!r} collapses outcome anchors onto the "
                "same scaled operating point"
            )
        return cls(anchors=anchors, notification=notification)

    def _anchors_for_freq(self, freq_mhz: int) -> Dict[int, Dict[str, float]]:
        freqs = sorted({f for (f, _v) in self.anchors})
        nearest = min(freqs, key=lambda f: abs(f - freq_mhz))
        return {
            v: rates for (f, v), rates in self.anchors.items() if f == nearest
        }

    def rate_per_min(self, category: str, freq_mhz: int, pmd_mv: int) -> float:
        """Expected failures/minute in *category* at an operating point."""
        by_voltage = self._anchors_for_freq(freq_mhz)
        voltages = sorted(by_voltage)
        rates = [by_voltage[v].get(category, 0.0) for v in voltages]
        if any(r <= 0 for r in rates):
            raise ConfigurationError(
                f"anchor rates for {category!r} must be positive"
            )
        log_rate = np.interp(
            float(pmd_mv), voltages, np.log([float(r) for r in rates])
        )
        return float(np.exp(log_rate))

    def rates_per_min(self, freq_mhz: int, pmd_mv: int) -> Dict[str, float]:
        """All three category rates at an operating point."""
        return {
            cat: self.rate_per_min(cat, freq_mhz, pmd_mv)
            for cat in ("AppCrash", "SysCrash", "SDC")
        }

    def total_rate_per_min(self, freq_mhz: int, pmd_mv: int) -> float:
        """Total software-failure rate at an operating point."""
        return sum(self.rates_per_min(freq_mhz, pmd_mv).values())

    def sdc_notification_probability(self, freq_mhz: int, pmd_mv: int) -> float:
        """P(corrected-error notification | SDC) at an operating point."""
        by_voltage = {
            v: p
            for (f, v), p in self.notification.items()
            if f
            == min(
                {f2 for (f2, _v) in self.notification},
                key=lambda f2: abs(f2 - freq_mhz),
            )
        }
        voltages = sorted(by_voltage)
        probs = [by_voltage[v] for v in voltages]
        return float(np.interp(float(pmd_mv), voltages, probs))
