"""Microarchitecture-level statistical fault injection.

Design implication #3 of the paper: the reported cache upset-rate
multipliers "can be used in microarchitecture-level fault injection
studies to estimate the application FIT rates of different
microprocessor designs at scaled supply voltage levels."  This module
is that consumer: a statistical fault-injection campaign over the
*core* structures (register file, ROB, load/store queue, ...), in the
style of [42]/[46], whose per-structure AVFs combine with the raw
technology FIT/bit and this library's voltage susceptibility
multipliers into chip FIT estimates at any studied voltage.

The statistical machinery follows Leveugle et al. [42]: the number of
injections needed for a target error margin at a confidence level is

    n = N / (1 + e^2 * (N - 1) / (z^2 * p * (1 - p)))

for population N (bits x cycles), margin e, and estimated proportion p.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..constants import RAW_SRAM_XS_CM2_PER_BIT
from ..engine import ExecutionContext, Executor, SerialExecutor, WorkUnit
from ..errors import InjectionError
from ..injection.events import OutcomeKind
from ..rng import as_generator
from ..units import bits_to_mbit


@dataclass(frozen=True)
class CoreStructure:
    """One injectable core-logic structure.

    Attributes
    ----------
    name:
        Structure label, e.g. ``"int_rf"``.
    bits:
        Storage capacity in bits (per core).
    protected:
        Whether the structure carries parity/ECC.  Unprotected
        structures are the paper's suspected SDC source (Section 6.2).
    outcome_profile:
        Probability of each outcome given a raw fault -- the
        structure's derating/AVF vector.  Must sum to <= 1; the
        remainder is masked.
    """

    name: str
    bits: int
    protected: bool
    outcome_profile: Dict[OutcomeKind, float]

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise InjectionError(f"{self.name}: bits must be positive")
        total = sum(self.outcome_profile.values())
        if total > 1.0 + 1e-9:
            raise InjectionError(
                f"{self.name}: outcome probabilities sum to {total} > 1"
            )
        if any(p < 0 for p in self.outcome_profile.values()):
            raise InjectionError(f"{self.name}: negative outcome probability")

    @property
    def avf(self) -> float:
        """Architectural vulnerability: P(fault corrupts the output)."""
        return sum(self.outcome_profile.values())

    def masked_probability(self) -> float:
        """P(fault has no architectural effect)."""
        return 1.0 - self.avf


#: A representative Armv8 out-of-order core's injectable structures,
#: sizes in the ballpark of a Cortex-A72-class design, with AVF vectors
#: in the range microarchitectural FI studies report ([18], [53]).
DEFAULT_CORE_STRUCTURES: List[CoreStructure] = [
    CoreStructure(
        name="int_rf",
        bits=160 * 64,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.18,
            OutcomeKind.APP_CRASH: 0.07,
            OutcomeKind.SYS_CRASH: 0.02,
        },
    ),
    CoreStructure(
        name="fp_rf",
        bits=128 * 128,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.22,
            OutcomeKind.APP_CRASH: 0.02,
            OutcomeKind.SYS_CRASH: 0.005,
        },
    ),
    CoreStructure(
        name="rob",
        bits=128 * 76,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.06,
            OutcomeKind.APP_CRASH: 0.12,
            OutcomeKind.SYS_CRASH: 0.05,
        },
    ),
    CoreStructure(
        name="lsq",
        bits=64 * 96,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.10,
            OutcomeKind.APP_CRASH: 0.09,
            OutcomeKind.SYS_CRASH: 0.03,
        },
    ),
    CoreStructure(
        name="issue_queue",
        bits=48 * 88,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.05,
            OutcomeKind.APP_CRASH: 0.10,
            OutcomeKind.SYS_CRASH: 0.04,
        },
    ),
    CoreStructure(
        name="btb",
        bits=4096 * 48,
        protected=False,
        # Branch predictor state is performance-only: wrong predictions
        # are architecturally masked ([21] studied exactly this).
        outcome_profile={},
    ),
    CoreStructure(
        name="fetch_queue",
        bits=32 * 140,
        protected=False,
        outcome_profile={
            OutcomeKind.SDC: 0.03,
            OutcomeKind.APP_CRASH: 0.08,
            OutcomeKind.SYS_CRASH: 0.02,
        },
    ),
]


def required_injections(
    population: int,
    margin: float = 0.01,
    confidence_z: float = 1.96,
    proportion: float = 0.5,
) -> int:
    """Sample size for a statistical FI campaign (Leveugle et al. [42])."""
    if population <= 0:
        raise InjectionError("population must be positive")
    if not 0 < margin < 1:
        raise InjectionError("margin must be in (0, 1)")
    if not 0 < proportion < 1:
        raise InjectionError("proportion must be in (0, 1)")
    z2pq = confidence_z ** 2 * proportion * (1 - proportion)
    n = population / (1 + margin ** 2 * (population - 1) / z2pq)
    return int(math.ceil(n))


@dataclass
class FiCampaignResult:
    """Outcome histogram of one statistical FI campaign."""

    structure: str
    injections: int
    outcomes: Dict[OutcomeKind, int] = field(default_factory=dict)

    def fraction(self, kind: OutcomeKind) -> float:
        """Observed fraction of one outcome."""
        if self.injections <= 0:
            raise InjectionError("campaign has no injections")
        return self.outcomes.get(kind, 0) / self.injections

    @property
    def measured_avf(self) -> float:
        """Observed non-masked fraction."""
        return 1.0 - self.fraction(OutcomeKind.MASKED)


def _run_structure_campaign(
    structures: List[CoreStructure],
    cores: int,
    structure_name: str,
    injections: int,
    seed: int,
) -> FiCampaignResult:
    """Run one structure's FI campaign (module-level: must pickle)."""
    injector = MicroarchInjector(structures, cores=cores)
    rng = as_generator(seed, f"fi-{structure_name}")
    return injector.run_campaign(structure_name, injections, rng)


class MicroarchInjector:
    """Statistical fault injection over the core structures.

    Parameters
    ----------
    structures:
        Structures to target (defaults to the representative core).
    cores:
        Number of cores (the chip replicates each structure).
    """

    def __init__(
        self,
        structures: List[CoreStructure] = None,
        cores: int = 8,
    ) -> None:
        if cores < 1:
            raise InjectionError("need at least one core")
        self.structures = (
            list(structures) if structures is not None else list(DEFAULT_CORE_STRUCTURES)
        )
        if not self.structures:
            raise InjectionError("need at least one structure")
        self.cores = cores

    def structure(self, name: str) -> CoreStructure:
        """Look a structure up by name."""
        for s in self.structures:
            if s.name == name:
                return s
        raise InjectionError(f"no such structure: {name!r}")

    @property
    def total_bits(self) -> int:
        """Injectable bits over the whole chip."""
        return self.cores * sum(s.bits for s in self.structures)

    def run_campaign(
        self,
        structure_name: str,
        injections: int,
        rng: np.random.Generator,
    ) -> FiCampaignResult:
        """Inject *injections* uniform faults into one structure."""
        if injections <= 0:
            raise InjectionError("injection count must be positive")
        structure = self.structure(structure_name)
        kinds = list(structure.outcome_profile) + [OutcomeKind.MASKED]
        probs = list(structure.outcome_profile.values())
        probs.append(1.0 - sum(probs))
        draws = rng.choice(len(kinds), size=injections, p=probs)
        counts = np.bincount(draws, minlength=len(kinds))
        outcomes: Dict[OutcomeKind, int] = {
            kinds[idx]: int(count)
            for idx, count in enumerate(counts)
            if count
        }
        return FiCampaignResult(
            structure=structure_name,
            injections=injections,
            outcomes=outcomes,
        )

    def run_batch(
        self,
        injections_per_structure: int,
        context: Optional[ExecutionContext] = None,
        executor: Optional[Executor] = None,
    ) -> Dict[str, FiCampaignResult]:
        """One FI campaign per structure, fanned out through the engine.

        Every structure's stream is derived from the context seed and
        the structure name alone, so serial and parallel executors
        produce identical histograms.
        """
        if injections_per_structure <= 0:
            raise InjectionError("injection count must be positive")
        context = context or ExecutionContext()
        executor = executor or SerialExecutor()
        telemetry = context.telemetry
        names = [s.name for s in self.structures]
        units = [
            WorkUnit(
                key=f"fi-{name}",
                fn=_run_structure_campaign,
                args=(
                    self.structures,
                    self.cores,
                    name,
                    injections_per_structure,
                    context.derive_seed("microarch-fi", structure=name),
                ),
            )
            for name in names
        ]
        results = executor.map(
            units, logbook=context.logbook, telemetry=telemetry
        )
        if telemetry is not None:
            # Counted from the merged results on the submitting side,
            # so executor choice cannot change the totals.
            for result in results:
                telemetry.count("microarch.campaigns")
                telemetry.count("microarch.injections", result.injections)
                for kind, n in sorted(
                    result.outcomes.items(), key=lambda kv: kv[0].value
                ):
                    telemetry.count(
                        "microarch.outcomes", n, kind=kind.value
                    )
        return dict(zip(names, results))

    # -- FIT estimation (design implication #3) ---------------------------------

    def structure_fit(
        self,
        structure_name: str,
        kind: OutcomeKind,
        susceptibility_multiplier: float = 1.0,
        raw_fit_per_mbit: float = None,
    ) -> float:
        """Chip-level FIT contribution of one structure and outcome.

        FIT = cores x bits/Mbit x rawFIT/Mbit x P(outcome | fault)
                    x susceptibility_multiplier(V)
        """
        if susceptibility_multiplier < 0:
            raise InjectionError("multiplier must be nonnegative")
        structure = self.structure(structure_name)
        if raw_fit_per_mbit is None:
            # Raw SER implied by the 28 nm per-bit cross-section at NYC.
            raw_fit_per_mbit = (
                RAW_SRAM_XS_CM2_PER_BIT * 13.0 * 1e9 * 1e6
            )
        probability = structure.outcome_profile.get(kind, 0.0)
        return (
            self.cores
            * bits_to_mbit(structure.bits)
            * raw_fit_per_mbit
            * probability
            * susceptibility_multiplier
        )

    def chip_fit(
        self,
        kind: OutcomeKind,
        susceptibility_multiplier: float = 1.0,
        raw_fit_per_mbit: float = None,
    ) -> float:
        """Summed FIT over every structure for one outcome."""
        return sum(
            self.structure_fit(
                s.name, kind, susceptibility_multiplier, raw_fit_per_mbit
            )
            for s in self.structures
        )

    def sdc_fit_by_voltage(
        self,
        multipliers: Dict[int, float],
        raw_fit_per_mbit: float = None,
    ) -> Dict[int, float]:
        """SDC FIT estimates across voltage settings.

        Parameters
        ----------
        multipliers:
            Voltage (mV) -> susceptibility multiplier, e.g. produced
            from :class:`repro.injection.calibration.LevelRateModel`
            or the Fig. 10 series.
        """
        return {
            mv: self.chip_fit(OutcomeKind.SDC, multiplier, raw_fit_per_mbit)
            for mv, multiplier in multipliers.items()
        }
