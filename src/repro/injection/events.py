"""Event taxonomy of the study.

Two event families exist (Section 2.1):

* **memory upsets** -- bit flips in protected SRAM arrays, observed via
  EDAC notifications (corrected or uncorrected); and
* **software-level failures** -- the end-to-end abnormal behaviours:
  silent data corruption (output mismatch, no indication), application
  crash (program hang / abort, Linux alive), and system crash (board
  unresponsive, needs power cycle).

A bit upset may also be *masked*: logically dropped or overwritten
before use, affecting nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

class OutcomeKind(enum.Enum):
    """End-to-end classification of one radiation-induced event."""

    #: The fault never reached the output.
    MASKED = "Masked"
    #: Output mismatch with no failure indication.
    SDC = "SDC"
    #: The program hung or aborted; the OS survived.
    APP_CRASH = "AppCrash"
    #: The machine became unresponsive or rebooted.
    SYS_CRASH = "SysCrash"

    @property
    def is_failure(self) -> bool:
        """True for the three abnormal behaviours counted in Table 2."""
        return self is not OutcomeKind.MASKED


#: The three failure categories, in the paper's display order (Fig. 8).
FAILURE_KINDS = (OutcomeKind.APP_CRASH, OutcomeKind.SYS_CRASH, OutcomeKind.SDC)


@dataclass(frozen=True)
class UpsetEvent:
    """One beam-induced SRAM upset, as seen at the array level.

    Attributes
    ----------
    time_s:
        Seconds since session start.
    array:
        Struck array instance name.
    level:
        Reporting cache level value (e.g. ``"L2 Cache"``).
    bits:
        Stored bits flipped in the affected word.
    corrected:
        Whether the protection machinery corrected (or transparently
        invalidated+refetched) the word.
    """

    time_s: float
    array: str
    level: str
    bits: int
    corrected: bool


@dataclass(frozen=True)
class FailureEvent:
    """One software-level failure.

    Attributes
    ----------
    time_s:
        Seconds since session start.
    benchmark:
        Benchmark running when the failure occurred.
    kind:
        SDC / AppCrash / SysCrash.
    hw_notified:
        For SDCs: whether a corrected-error notification accompanied
        the output mismatch (the rare Fig. 12/13 cases); always False
        for crashes.
    """

    time_s: float
    benchmark: str
    kind: OutcomeKind
    hw_notified: bool = False

    def __post_init__(self) -> None:
        if not self.kind.is_failure:
            raise ValueError("FailureEvent must carry a failure kind")
