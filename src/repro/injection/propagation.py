"""Upset-to-software outcome model.

The paper's crucial end-to-end observation (Sections 4.4 and 6) is that
while cache upsets are almost always absorbed by parity/SECDED, the
*software-visible* failure mix shifts dramatically with voltage: crash
rates fall and SDC rates explode as the PMD approaches Vmin -- because
the SDC-producing faults live in unprotected core logic whose soft-error
susceptibility grows with undervolt (design implication #4).

This model samples software failures directly from the calibrated
category rates (:class:`~repro.injection.calibration.OutcomeMixModel`),
independent of the SRAM upset stream -- matching the paper's finding
that SDCs are *not* caused by SRAM upsets (the protected arrays recover
them), with the rare "SDC with corrected-error notification" overlap
drawn from the Fig. 12/13 probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..constants import TNF_HALO_FLUX_PER_CM2_S
from ..errors import InjectionError
from ..soc.dvfs import OperatingPoint
from .calibration import OutcomeMixModel
from .events import FailureEvent, OutcomeKind

_CATEGORY_TO_KIND = {
    "AppCrash": OutcomeKind.APP_CRASH,
    "SysCrash": OutcomeKind.SYS_CRASH,
    "SDC": OutcomeKind.SDC,
}


@dataclass(frozen=True)
class OutcomeModel:
    """Samples software-level failure events for an exposure segment."""

    mix: OutcomeMixModel = OutcomeMixModel()
    reference_flux: float = TNF_HALO_FLUX_PER_CM2_S

    def __post_init__(self) -> None:
        # A session evaluates the same (freq, pmd, flux) key for every
        # one of its thousands of benchmark runs; the log-linear interp
        # behind it dominated the campaign profile before caching.  The
        # dataclass is frozen, so the cache is attached via the
        # object-level escape hatch.
        object.__setattr__(self, "_rate_cache", {})

    def rates_per_min(
        self,
        point: OperatingPoint,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
    ) -> Dict[OutcomeKind, float]:
        """Expected failures/minute per category at an operating point."""
        if flux_per_cm2_s < 0:
            raise InjectionError("flux must be nonnegative")
        key = (point.freq_mhz, point.pmd_mv, flux_per_cm2_s)
        cached = self._rate_cache.get(key)
        if cached is None:
            scale = flux_per_cm2_s / self.reference_flux
            raw = self.mix.rates_per_min(point.freq_mhz, point.pmd_mv)
            cached = {
                _CATEGORY_TO_KIND[cat]: rate * scale
                for cat, rate in raw.items()
            }
            self._rate_cache[key] = cached
        return dict(cached)

    def _notification_probability(
        self, freq_mhz: int, pmd_mv: int
    ) -> float:
        """Cached P(corrected-error notification | SDC)."""
        key = ("notify", freq_mhz, pmd_mv)
        cached = self._rate_cache.get(key)
        if cached is None:
            cached = self.mix.sdc_notification_probability(freq_mhz, pmd_mv)
            self._rate_cache[key] = cached
        return cached

    def sample_failures(
        self,
        point: OperatingPoint,
        duration_s: float,
        benchmark: str,
        rng: np.random.Generator,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
        time_offset_s: float = 0.0,
    ) -> List[FailureEvent]:
        """Sample the failure events of one exposure segment.

        Counts per category are Poisson with the calibrated rates;
        event times are uniform over the segment; SDCs carry a
        hardware-notification flag with the Fig. 12/13 probability.
        """
        if duration_s < 0:
            raise InjectionError("duration must be nonnegative")
        events: List[FailureEvent] = []
        rates = self.rates_per_min(point, flux_per_cm2_s)
        p_notify = self._notification_probability(
            point.freq_mhz, point.pmd_mv
        )
        kinds = list(rates)
        # One batched Poisson draw across the three categories.
        counts = rng.poisson(
            np.array(
                [rates[kind] * duration_s / 60.0 for kind in kinds]
            )
        )
        for kind, count in zip(kinds, counts):
            count = int(count)
            if count == 0:
                continue
            times = rng.uniform(0.0, duration_s, size=count)
            if kind is OutcomeKind.SDC:
                notified = rng.random(count) < p_notify
            else:
                notified = np.zeros(count, dtype=bool)
            for t, n in zip(times, notified):
                events.append(
                    FailureEvent(
                        time_s=float(t) + time_offset_s,
                        benchmark=benchmark,
                        kind=kind,
                        hw_notified=bool(n),
                    )
                )
        events.sort(key=lambda e: e.time_s)
        return events
