"""Beam-driven Monte-Carlo upset injection over the chip's SRAM arrays.

For one exposure segment the injector:

1. computes the expected *detected* upset rate per cache level from the
   calibrated :class:`~repro.injection.calibration.LevelRateModel`
   (scaled by the actual beam flux and the running benchmark's Fig. 5
   share),
2. draws a Poisson event count per level,
3. realizes each event as a physical MBU cluster striking a uniformly
   chosen word of a capacity-weighted array of that level,
4. pushes the flips through the array's interleaving and protection
   codec (so CE/UE severity *emerges* from the bit math), and
5. logs the resulting EDAC records.

The emergent uncorrected-error fraction lands on the paper's ~4.7 %
L3-only UE share because the L3 is the one non-interleaved array and
the MBU model's multi-cell probability is calibrated to that figure.

Two realization paths exist:

* the **vectorized** path (default) batches the Poisson draws across
  levels, the array/word selection, and the cluster-size sampling into
  whole-array numpy operations, caches the per-(operating point,
  benchmark, flux) rate vectors, and classifies severities through
  :meth:`~repro.sram.array.SramArray.classify_flip_count` -- falling
  back to the real codec only for the rare multi-bit words where the
  outcome depends on concrete bit positions;
* the **scalar** path is the original per-event loop through
  :meth:`SramArray.strike`/:meth:`SramArray.access`, kept as the
  reference implementation and as the baseline for the engine
  benchmarks.

Both paths sample the same distributions (the benches pin those, not
the draw sequences), and each is individually deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import TNF_HALO_FLUX_PER_CM2_S
from ..errors import InjectionError
from ..soc.edac import EdacSeverity
from ..soc.geometry import CacheLevel
from ..soc.xgene2 import XGene2
from ..sram.array import UpsetRecord
from ..sram.mbu import MbuCluster, MbuModel
from ..sram.protection import DecodeStatus
from ..telemetry import MetricsRegistry
from ..workloads.profiles import benchmark_rate_share
from .calibration import LevelRateModel
from .events import UpsetEvent

#: The per-word fold of a single-cell cluster -- precomputed because
#: the overwhelming majority of strikes are single-bit.
_SINGLE_CELL: Tuple[Tuple[int, int], ...] = ((0, 1),)


@dataclass
class InjectionSummary:
    """Aggregate result of one exposure segment.

    Attributes
    ----------
    upsets:
        Every realized upset event (one per affected word).
    duration_s:
        Exposure length in seconds.
    counts:
        Histogram over (cache level, severity).
    """

    upsets: List[UpsetEvent] = field(default_factory=list)
    duration_s: float = 0.0
    counts: Dict[Tuple[CacheLevel, EdacSeverity], int] = field(
        default_factory=dict
    )

    @property
    def total_upsets(self) -> int:
        """Total detected upsets in the segment.

        Live summaries carry the full event list; summaries reloaded
        from disk (:mod:`repro.io`) may carry only the per-level counts
        -- the two agree whenever both are present, since every appended
        event also increments its count bucket.
        """
        if self.upsets:
            return len(self.upsets)
        return sum(self.counts.values())

    @property
    def upsets_per_minute(self) -> float:
        """Detected upset rate over the segment."""
        if self.duration_s <= 0:
            return 0.0
        return self.total_upsets / (self.duration_s / 60.0)

    def count(
        self,
        level: Optional[CacheLevel] = None,
        severity: Optional[EdacSeverity] = None,
    ) -> int:
        """Count upsets filtered by level and/or severity."""
        return sum(
            n
            for (lvl, sev), n in self.counts.items()
            if (level is None or lvl == level)
            and (severity is None or sev == severity)
        )

    def merge(self, other: "InjectionSummary") -> None:
        """Fold another segment's results into this one, in place."""
        self.upsets.extend(other.upsets)
        self.duration_s += other.duration_s
        for key, n in other.counts.items():
            self.counts[key] = self.counts.get(key, 0) + n


class BeamInjector:
    """Samples beam-induced SRAM upsets into an :class:`XGene2` model.

    Parameters
    ----------
    chip:
        The chip model to strike.
    rate_model:
        Calibrated per-level rate model (defaults to the paper fit).
    mbu_model:
        Physical cluster model (defaults calibrated to the L3 UE share).
    vectorized:
        Use the batched numpy realization path (default).  ``False``
        selects the original per-event loop; both sample the same
        distributions.
    metrics:
        Optional :class:`~repro.telemetry.MetricsRegistry` the injector
        counts exposures, drawn events and realized upsets into.
        Purely observational: it reads results, never an RNG stream, so
        injection output is byte-identical with or without it.
    """

    def __init__(
        self,
        chip: XGene2,
        rate_model: LevelRateModel = None,
        mbu_model: MbuModel = None,
        vectorized: bool = True,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.chip = chip
        self.rate_model = rate_model or LevelRateModel()
        self.mbu_model = mbu_model or MbuModel()
        self.vectorized = vectorized
        self.metrics = metrics
        # Capacity-weighted array choice within each level.
        self._level_arrays: Dict[CacheLevel, Tuple[List[str], np.ndarray]] = {}
        self._arrays: Dict[CacheLevel, list] = {}
        self._words: Dict[CacheLevel, np.ndarray] = {}
        for level in CacheLevel:
            arrays = chip.arrays_by_level(level)
            if not arrays:
                continue
            names = [a.name for a in arrays]
            weights = np.array([a.stored_bits for a in arrays], dtype=float)
            self._level_arrays[level] = (names, weights / weights.sum())
            self._arrays[level] = list(arrays)
            self._words[level] = np.array(
                [a.geometry.words for a in arrays], dtype=np.int64
            )
        #: Levels with at least one array, in enum (flight) order.
        self._levels: List[CacheLevel] = list(self._level_arrays)
        # (benchmark, pmd_mv, soc_mv, flux) -> expected upsets/min per
        # level, aligned with self._levels.  Rates are pure functions of
        # that key, and a session re-runs the same handful of keys
        # thousands of times.
        self._rate_cache: Dict[tuple, np.ndarray] = {}
        # Pre-bound counter handles: the hot path pays one attribute
        # load and an integer add, never a registry lookup.
        self._exposures_counter = None
        self._event_counters: Dict[CacheLevel, object] = {}
        self._upset_counters: Dict[tuple, object] = {}
        if metrics is not None:
            self._exposures_counter = metrics.counter("injector.exposures")
            self._event_counters = {
                level: metrics.counter("injector.events", level=level.value)
                for level in self._levels
            }

    def expected_rate_per_min(
        self,
        level: CacheLevel,
        benchmark: Optional[str] = None,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
    ) -> float:
        """Expected detected upsets/minute at one level, current voltages."""
        point = self.chip.operating_point()
        rate = sum(
            self.rate_model.rate_per_min(
                level, corrected, point.pmd_mv, point.soc_mv, flux_per_cm2_s
            )
            for corrected in (True, False)
        )
        if benchmark is not None:
            rate *= benchmark_rate_share(benchmark, point.pmd_mv)
        return rate

    def _expected_rates(
        self,
        benchmark: Optional[str],
        flux_per_cm2_s: float,
    ) -> np.ndarray:
        """Cached expected upsets/minute for every level (flight order)."""
        point = self.chip.operating_point()
        key = (benchmark, point.pmd_mv, point.soc_mv, flux_per_cm2_s)
        rates = self._rate_cache.get(key)
        if rates is None:
            rates = np.array(
                [
                    self.expected_rate_per_min(
                        level, benchmark, flux_per_cm2_s
                    )
                    for level in self._levels
                ],
                dtype=float,
            )
            self._rate_cache[key] = rates
        return rates

    def _undervolt_fraction(self, level: CacheLevel, pmd_mv: float, soc_mv: float) -> float:
        """Relative undervolt of the domain feeding *level*.

        Delegated to the rate model so the fraction is taken against
        whatever domain nominals the model was built for (the paper's
        980/950 mV by default, the node's own on scaled chips).
        """
        return self.rate_model.undervolt_fraction(level, pmd_mv, soc_mv)

    def expose(
        self,
        duration_s: float,
        rng: np.random.Generator,
        benchmark: Optional[str] = None,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
        time_offset_s: float = 0.0,
    ) -> InjectionSummary:
        """Run one exposure segment and return its upset summary.

        Every realized upset is also appended to the chip's EDAC log.
        """
        if duration_s < 0:
            raise InjectionError("exposure duration must be nonnegative")
        if self.vectorized:
            summary = self._expose_vectorized(
                duration_s, rng, benchmark, flux_per_cm2_s, time_offset_s
            )
        else:
            summary = self._expose_scalar(
                duration_s, rng, benchmark, flux_per_cm2_s, time_offset_s
            )
        if self._exposures_counter is not None:
            self._exposures_counter.inc()
            self._count_upsets(summary)
        return summary

    def _count_upsets(self, summary: InjectionSummary) -> None:
        """Meter the realized upsets, batched per (level, severity).

        Counting off ``summary.counts`` after the segment (rather than
        per event inside :meth:`_log_and_collect`) keeps the hot loop
        free of instrumentation; the totals are identical because every
        collected upset also bumps its count bucket.
        """
        for (level, severity), n in summary.counts.items():
            key = (level, severity)
            counter = self._upset_counters.get(key)
            if counter is None:
                counter = self._upset_counters[key] = self.metrics.counter(
                    "injector.upsets",
                    level=level.value,
                    severity=severity.value,
                )
            counter.inc(n)

    # -- vectorized hot path ----------------------------------------------------

    def _expose_vectorized(
        self,
        duration_s: float,
        rng: np.random.Generator,
        benchmark: Optional[str],
        flux_per_cm2_s: float,
        time_offset_s: float,
    ) -> InjectionSummary:
        summary = InjectionSummary(duration_s=duration_s)
        point = self.chip.operating_point()
        expected = self._expected_rates(benchmark, flux_per_cm2_s) * (
            duration_s / 60.0
        )
        # One batched Poisson draw across all levels.
        n_events = rng.poisson(expected) if expected.size else np.empty(0)
        for level, n in zip(self._levels, n_events):
            n = int(n)
            if n == 0:
                continue
            if self._event_counters:
                self._event_counters[level].inc(n)
            arrays = self._arrays[level]
            _names, probs = self._level_arrays[level]
            times = np.sort(rng.uniform(0.0, duration_s, size=n))
            undervolt = self._undervolt_fraction(
                level, point.pmd_mv, point.soc_mv
            )
            if len(arrays) > 1:
                arr_idx = rng.choice(len(arrays), size=n, p=probs)
            else:
                arr_idx = np.zeros(n, dtype=np.int64)
            struck = rng.integers(0, self._words[level][arr_idx])
            sizes = self.mbu_model.sample_sizes(rng, undervolt, n)
            for i in range(n):
                array = arrays[int(arr_idx[i])]
                time_s = float(times[i]) + time_offset_s
                size = int(sizes[i])
                if size == 1:
                    per_word = _SINGLE_CELL
                else:
                    per_word = self.mbu_model.split_by_interleaving(
                        MbuCluster(size=size, offsets=tuple(range(size))),
                        array.geometry.interleave,
                        array.codec.word_bits,
                    )
                for word_delta, nbits in per_word:
                    target = (int(struck[i]) + word_delta) % array.geometry.words
                    status = array.classify_flip_count(nbits, rng)
                    if status in (DecodeStatus.SILENT, DecodeStatus.CLEAN):
                        continue
                    record = UpsetRecord(
                        array=array.name,
                        word=target,
                        flipped_bits=min(nbits, array.codec.word_bits),
                        status=status,
                    )
                    self._log_and_collect(record, time_s, level, summary)
        return summary

    # -- scalar reference path --------------------------------------------------

    def _expose_scalar(
        self,
        duration_s: float,
        rng: np.random.Generator,
        benchmark: Optional[str],
        flux_per_cm2_s: float,
        time_offset_s: float,
    ) -> InjectionSummary:
        summary = InjectionSummary(duration_s=duration_s)
        point = self.chip.operating_point()
        for level, (names, probs) in self._level_arrays.items():
            rate_per_min = self.expected_rate_per_min(
                level, benchmark, flux_per_cm2_s
            )
            expected = rate_per_min * duration_s / 60.0
            n_events = int(rng.poisson(expected))
            if n_events == 0:
                continue
            if self._event_counters:
                self._event_counters[level].inc(n_events)
            times = np.sort(rng.uniform(0.0, duration_s, size=n_events))
            undervolt = self._undervolt_fraction(
                level, point.pmd_mv, point.soc_mv
            )
            for t in times:
                self._realize_event(
                    level, names, probs, float(t) + time_offset_s,
                    undervolt, rng, summary,
                )
        return summary

    def _realize_event(
        self,
        level: CacheLevel,
        names: List[str],
        probs: np.ndarray,
        time_s: float,
        undervolt: float,
        rng: np.random.Generator,
        summary: InjectionSummary,
    ) -> None:
        array = self.chip.array(names[int(rng.choice(len(names), p=probs))])
        word = int(rng.integers(0, array.geometry.words))
        cluster = self.mbu_model.sample_cluster(rng, undervolt)
        affected = array.strike(word, cluster, self.mbu_model, rng)
        for target_word, _bits in affected:
            _result, record = array.access(target_word)
            if record is None:
                continue
            self._log_and_collect(record, time_s, level, summary)

    # -- shared bookkeeping -----------------------------------------------------

    def _log_and_collect(
        self,
        record: UpsetRecord,
        time_s: float,
        level: CacheLevel,
        summary: InjectionSummary,
    ) -> None:
        """Push one upset record through the EDAC log into the summary."""
        edac_record = self.chip.edac.log_upset(time_s, record, level)
        if edac_record is None:
            return
        summary.upsets.append(
            UpsetEvent(
                time_s=time_s,
                array=record.array,
                level=level.value,
                bits=record.flipped_bits,
                corrected=edac_record.severity is EdacSeverity.CE,
            )
        )
        key = (level, edac_record.severity)
        summary.counts[key] = summary.counts.get(key, 0) + 1
