"""Concrete fault injection into live workload data.

The statistical models above reproduce the *rates* of the beam
campaign; this module reproduces its *mechanism* end-to-end for a
single fault: flip a real bit in a real numpy array of a running
kernel, execute the kernel, and classify the outcome by comparing
against the golden reference -- precisely the SDC-detection procedure
of Section 3.6.

Masking emerges naturally: flips in the mantissa tail of a value that
is later overwritten, or in a key that never affects the probe set,
change nothing; flips in high exponent bits blow the output up or NaN
it; index-array flips can crash the kernel outright (our AppCrash
analogue).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..errors import InjectionError
from ..workloads.base import Workload, WorkloadResult
from .events import OutcomeKind


@dataclass(frozen=True)
class DirectInjectionResult:
    """Outcome of one concrete injected fault.

    Attributes
    ----------
    outcome:
        MASKED / SDC / APP_CRASH classification.
    array_name:
        State-dict key of the corrupted array.
    byte_offset / bit:
        Where the flip landed inside that array's buffer.
    error:
        The exception message when the kernel crashed.
    """

    outcome: OutcomeKind
    array_name: str
    byte_offset: int
    bit: int
    error: Optional[str] = None


class DirectInjector:
    """Flips real bits in a workload's state and classifies the outcome."""

    def __init__(self, workload: Workload, rtol: float = 1e-10) -> None:
        self.workload = workload
        self.rtol = rtol
        # Golden computed up front, in fault-free conditions.
        self._golden: WorkloadResult = workload.golden()

    def inject_one(self, rng: np.random.Generator) -> DirectInjectionResult:
        """Build fresh state, flip one uniformly chosen bit, run, classify."""
        state = self.workload.build_state()
        names = [
            k for k, v in state.items() if isinstance(v, np.ndarray) and v.nbytes
        ]
        if not names:
            raise InjectionError("workload exposes no injectable arrays")
        sizes = np.array([state[k].nbytes for k in names], dtype=float)
        name = names[int(rng.choice(len(names), p=sizes / sizes.sum()))]
        target = np.ascontiguousarray(state[name])
        state[name] = target
        byte_offset = int(rng.integers(0, target.nbytes))
        bit = int(rng.integers(0, 8))
        flat = target.view(np.uint8).reshape(-1)
        flat[byte_offset] ^= np.uint8(1 << bit)

        try:
            # Corrupted operands legitimately overflow / produce NaN;
            # those are data outcomes (classified below), not warnings.
            with np.errstate(all="ignore"):
                result = self.workload.run(state)
        except Exception as exc:  # genuine kernel crash from corrupt state
            return DirectInjectionResult(
                outcome=OutcomeKind.APP_CRASH,
                array_name=name,
                byte_offset=byte_offset,
                bit=bit,
                error=f"{type(exc).__name__}: {exc}",
            )
        if not np.all(np.isfinite(result.verification)):
            outcome = OutcomeKind.SDC
        elif self._golden.matches(result, rtol=self.rtol):
            outcome = OutcomeKind.MASKED
        else:
            outcome = OutcomeKind.SDC
        return DirectInjectionResult(
            outcome=outcome, array_name=name, byte_offset=byte_offset, bit=bit
        )

    def campaign(
        self, injections: int, rng: np.random.Generator
    ) -> Dict[OutcomeKind, int]:
        """Run a whole direct-injection campaign; returns outcome counts."""
        if injections < 0:
            raise InjectionError("injection count must be nonnegative")
        counts: Dict[OutcomeKind, int] = {
            OutcomeKind.MASKED: 0,
            OutcomeKind.SDC: 0,
            OutcomeKind.APP_CRASH: 0,
        }
        for _ in range(injections):
            result = self.inject_one(rng)
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def masking_factor(self, injections: int, rng: np.random.Generator) -> float:
        """Fraction of injected faults that were masked."""
        counts = self.campaign(injections, rng)
        total = sum(counts.values())
        if total == 0:
            raise InjectionError("no injections performed")
        return counts[OutcomeKind.MASKED] / total

    def results(
        self, injections: int, rng: np.random.Generator
    ) -> List[DirectInjectionResult]:
        """Run a campaign keeping every individual result."""
        return [self.inject_one(rng) for _ in range(injections)]
