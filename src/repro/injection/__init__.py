"""Fault injection and error-propagation models.

Connects the beam to the chip and the chip to the software layer:

* :mod:`repro.injection.calibration` -- the paper-measured anchor
  tables (per-level upset rates, outcome mixes, notification rates)
  and their interpolators.
* :mod:`repro.injection.injector` -- Poisson sampling of beam-induced
  SRAM upsets over the chip's arrays, through the MBU and protection
  models into the EDAC log.
* :mod:`repro.injection.propagation` -- upset-to-software outcome model
  (masked / SDC / application crash / system crash).
* :mod:`repro.injection.avf` -- architectural-vulnerability-factor
  utilities (design implication #3 of the paper).
* :mod:`repro.injection.direct` -- concrete bit flips in live numpy
  arrays of a running workload, with golden-compare classification.
"""

from .events import OutcomeKind, FailureEvent, UpsetEvent
from .calibration import (
    LevelRateModel,
    OutcomeMixModel,
    LEVEL_BASE_RATES_980MV,
    LEVEL_VOLTAGE_SLOPES,
)
from .injector import BeamInjector, InjectionSummary
from .propagation import OutcomeModel
from .avf import AvfEstimate, structure_fit, scale_avf_fit
from .direct import DirectInjector, DirectInjectionResult
from .microarch import (
    CoreStructure,
    FiCampaignResult,
    MicroarchInjector,
    required_injections,
)

__all__ = [
    "OutcomeKind",
    "FailureEvent",
    "UpsetEvent",
    "LevelRateModel",
    "OutcomeMixModel",
    "LEVEL_BASE_RATES_980MV",
    "LEVEL_VOLTAGE_SLOPES",
    "BeamInjector",
    "InjectionSummary",
    "OutcomeModel",
    "AvfEstimate",
    "structure_fit",
    "scale_avf_fit",
    "DirectInjector",
    "DirectInjectionResult",
    "CoreStructure",
    "FiCampaignResult",
    "MicroarchInjector",
    "required_injections",
]
