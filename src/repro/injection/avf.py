"""Architectural-vulnerability-factor (AVF) utilities.

Design implication #3 of the paper: the measured cache susceptibility
increases can be combined with a structure's size, a technology's raw
FIT/bit, and a microarchitectural-fault-injection AVF to estimate the
structure's FIT at scaled voltages:

    FIT(structure, V) = bits/Mbit * rawFIT_per_Mbit * AVF
                                  * susceptibility_multiplier(V)

These helpers implement that pipeline so fault-injection studies can
consume the reproduction's susceptibility curves directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..units import bits_to_mbit


@dataclass(frozen=True)
class AvfEstimate:
    """AVF of one hardware structure under one workload.

    Attributes
    ----------
    structure:
        Structure name, e.g. ``"L2 Cache"``.
    workload:
        Workload the AVF was measured under.
    avf:
        Probability that a raw fault in the structure corrupts the
        program output, in [0, 1].
    """

    structure: str
    workload: str
    avf: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.avf <= 1.0:
            raise AnalysisError("AVF must be in [0, 1]")


def structure_fit(
    bits: int,
    raw_fit_per_mbit: float,
    avf: float,
) -> float:
    """Baseline FIT of a structure at nominal voltage.

    Parameters
    ----------
    bits:
        Structure capacity in bits.
    raw_fit_per_mbit:
        Technology raw SER, FIT per Mbit (~15 for a static 28 nm test
        per the [83] reference; this library measures 2.08-2.45 under
        workload masking).
    avf:
        Architectural vulnerability factor in [0, 1].
    """
    if bits < 0:
        raise AnalysisError("bits must be nonnegative")
    if raw_fit_per_mbit < 0:
        raise AnalysisError("raw FIT must be nonnegative")
    if not 0.0 <= avf <= 1.0:
        raise AnalysisError("AVF must be in [0, 1]")
    return bits_to_mbit(bits) * raw_fit_per_mbit * avf


def scale_avf_fit(nominal_fit: float, susceptibility_multiplier: float) -> float:
    """Scale a nominal-voltage FIT by a measured susceptibility increase.

    *susceptibility_multiplier* is rate(V)/rate(V_nom) as produced by
    :class:`repro.injection.calibration.LevelRateModel` or the Fig. 10
    susceptibility series.
    """
    if nominal_fit < 0:
        raise AnalysisError("FIT must be nonnegative")
    if susceptibility_multiplier < 0:
        raise AnalysisError("multiplier must be nonnegative")
    return nominal_fit * susceptibility_multiplier
