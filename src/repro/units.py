"""Small unit-conversion helpers.

The codebase standardizes on:

* voltages in **millivolts** (integers, matching the 5 mV regulator step),
* frequencies in **MHz** (integers),
* durations in **seconds** (floats),
* fluence in **neutrons / cm^2** (floats),
* flux in **neutrons / cm^2 / s** (floats).

These helpers exist so call sites read unambiguously and conversions are
done in exactly one place.
"""

from __future__ import annotations

from .constants import SECONDS_PER_HOUR, SECONDS_PER_MINUTE, HOURS_PER_YEAR


def mv_to_volts(millivolts: float) -> float:
    """Convert millivolts to volts."""
    return millivolts / 1000.0


def volts_to_mv(volts: float) -> float:
    """Convert volts to millivolts."""
    return volts * 1000.0


def mhz_to_hz(mhz: float) -> float:
    """Convert MHz to Hz."""
    return mhz * 1.0e6


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def seconds_to_minutes(seconds: float) -> float:
    """Convert seconds to minutes."""
    return seconds / SECONDS_PER_MINUTE


def hours_to_seconds(hours: float) -> float:
    """Convert hours to seconds."""
    return hours * SECONDS_PER_HOUR


def seconds_to_hours(seconds: float) -> float:
    """Convert seconds to hours."""
    return seconds / SECONDS_PER_HOUR


def hours_to_years(hours: float) -> float:
    """Convert hours to (Julian) years."""
    return hours / HOURS_PER_YEAR


def bytes_to_bits(num_bytes: int) -> int:
    """Convert a byte count to a bit count."""
    return int(num_bytes) * 8


def bits_to_mbit(bits: float) -> float:
    """Convert bits to megabits (10^6 bits, the SER convention)."""
    return bits / 1.0e6


def per_second_to_per_minute(rate_per_s: float) -> float:
    """Convert an event rate from 1/s to 1/min."""
    return rate_per_s * SECONDS_PER_MINUTE


def per_minute_to_per_second(rate_per_min: float) -> float:
    """Convert an event rate from 1/min to 1/s."""
    return rate_per_min / SECONDS_PER_MINUTE
