"""``repro-campaign``: run, persist, and analyze campaigns from the shell.

Subcommands::

    repro-campaign run OUTDIR [--seed N] [--time-scale X] [--workers N]
                              [--telemetry] [--resume | --fresh] [--strict]
                              [--timeout S] [--retries N] [--chaos SPEC]
        Fly the Table 2 campaign and persist everything under OUTDIR
        (campaign.json + per-session dmesg captures + manifest.json +
        the checkpoint journal + failures.json).
        --workers N > 1 flies sessions on separate processes; the
        output is bit-identical to the serial run.  --telemetry records
        metrics and spans into the manifest and prints a summary
        (campaign.json stays byte-identical either way).
        Every completed work unit is checkpointed to journal.jsonl; an
        interrupted run (SIGTERM/SIGINT, exit 143/130) resumes with
        --resume, producing campaign.json byte-identical to an
        uninterrupted run.  Rerunning an OUTDIR that already holds a
        journal without --resume is refused (it would destroy the
        checkpoints); pass --fresh to discard them deliberately.  Work units fly under supervision: --timeout
        bounds each unit, --retries bounds transient-failure retries
        (deterministic exponential backoff), and persistently failing
        units are quarantined.  Without --strict a partial campaign
        still exits 0 (with a failure table); --strict exits 3 when any
        unit ended quarantined.  --chaos JSON|FILE injects
        deterministic faults into the harness itself (self-test /CI).

    repro-campaign analyze OUTDIR [--artifact table2|fig8|fig11|summary]
        Reload a stored campaign and print an analysis artifact.

    repro-campaign export OUTDIR
        Write the campaign's tables as CSVs next to the raw data.

    repro-campaign report OUTDIR
        Write the full markdown campaign report (REPORT.md).

    repro-campaign stats OUTDIR [--format console|json|prometheus]
        Render a stored run's manifest and telemetry.  Refuses (exit 1)
        when the manifest's config hash disagrees with the checkpoint
        journal's -- mixed-provenance results directories lie about
        which configuration produced the numbers.

    repro-campaign validate [--suite conformance|differential|statistical]
                            [--seed N] [--time-scale X] [--out FILE]
        Run the paper-conformance gates (repro.validate): golden-value
        oracles, differential pairings, and seed-ladder statistical
        checks.  Prints the gate report, writes it as JSON (default
        conformance.json), and exits 4 if any gate fails.

    repro-campaign explore OUTDIR [--codecs LIST] [--points LIST]
                                  [--workloads LIST] [--strikes N]
                                  [--seed N] [--interleave N] [--name S]
                                  [--workers N] [--resume | --fresh]
        Run a codec x voltage x workload design-space sweep
        (repro.codecs) through the scheduler broker: every cell is a
        leased work unit committed to OUTDIR/scheduler, so an
        interrupted sweep (exit 143) resumes with --resume and loses
        at most the in-flight cells.  Cells run real
        encode/corrupt/decode arithmetic against the calibrated MBU
        cluster model; the output is pareto.json (per-cell FIT tables
        with Garwood/Wilson intervals plus the FIT-vs-area-vs-energy
        Pareto front per operating point and workload) and
        fit_cells.csv.  Split-half consistency gates guard every cell;
        exit 4 when any fails.  --workers N runs cells on separate
        processes; pareto.json is byte-identical to the serial run.

    repro-campaign serve ROOT [--workers N] [--capacity N] [--lease-ttl S]
                              [--http PORT] [--idle-exit S] [--validate]
        Run a campaign service on ROOT: watch ROOT/jobs for dropped
        spec files (and optionally a local HTTP port), lease units
        from the bounded priority queue to a supervised worker pool,
        and assemble each finished submission under
        ROOT/results/<submission>/ -- byte-identical to a plain `run`
        of the same spec.  Two `serve` processes on one ROOT shard the
        queue; a killed one's leases expire and are picked up.
        SIGTERM drains in-flight leases, flushes the scheduling
        journal, and exits 143 with a resume hint.  --validate runs
        the post-job gates (repro.validate.postjob) on every assembled
        submission, writing validation.json next to campaign.json and
        surfacing the verdict in status.json.

    repro-campaign submit ROOT [--spec FILE | --seed N --time-scale X
                               --priority P --name NAME] [--wait [S]]
        Queue one campaign spec (job file drop, or --url for HTTP).
        Submissions dedupe on the config hash; a full queue is refused
        with exit 5 (SchedulerBusy) and nothing enqueued.

    repro-campaign status ROOT [--json]
        Show the serving broker's queue/submission snapshot.

    repro-campaign cancel ROOT SUBMISSION
        Drop a submission's queued units (in-flight ones finish).

The separation mirrors real campaign practice: `run` burns (simulated)
beam time once; `analyze`/`export`/`stats`/`validate` are free and
repeatable.
"""

from __future__ import annotations

import argparse
import signal
import sys
from contextlib import contextmanager
from typing import Dict

from . import __version__
from .core.analysis import CampaignAnalysis
from .core.report import Table
from .engine import ExecutionContext
from .errors import (
    CampaignInterrupted,
    ConfigurationError,
    ReproError,
    SchedulerBusy,
)
from .harness.campaign import CampaignResult
from .injection.events import OutcomeKind
from .io.results_dir import ResultsDirectory
from .resilient import ChaosSpec, ResilientCampaign, SupervisionPolicy
from .telemetry import (
    RunManifest,
    Telemetry,
    console_summary,
    metrics_to_prometheus,
)

#: Exit codes beyond the usual 0/1/2: a strict run with quarantined
#: units, failed validation gates, a submission refused by a full
#: scheduler queue, and an interrupted (resumable) run.
EXIT_STRICT_FAILURES = 3
EXIT_GATE_FAILURES = 4
EXIT_SCHEDULER_BUSY = 5
EXIT_INTERRUPTED = 143


@contextmanager
def _interruptible():
    """Turn SIGTERM/SIGINT into :class:`CampaignInterrupted`.

    The journal is fsynced after every completed unit, so raising out
    of the run loop (instead of dying mid-write) just stops cleanly at
    the last checkpoint; ``--resume`` picks the run back up.
    """

    def _handler(signum, frame):
        raise CampaignInterrupted(f"received signal {signum}")

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # non-main thread / exotic platform
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _cmd_run(args: argparse.Namespace) -> int:
    telemetry = Telemetry() if args.telemetry else None
    context = ExecutionContext(
        seed=args.seed, time_scale=args.time_scale, telemetry=telemetry
    )
    policy = SupervisionPolicy(
        timeout_s=args.timeout, max_retries=args.retries
    )
    chaos = ChaosSpec.from_json(args.chaos) if args.chaos else None
    runner = ResilientCampaign(
        context=context,
        workers=args.workers,
        policy=policy,
        chaos=chaos,
        tech_node=args.node,
    )
    results = ResultsDirectory(args.outdir)
    if args.resume and not results.has_journal():
        print(
            f"error: no journal under {args.outdir!r} to resume from "
            f"(run without --resume first)",
            file=sys.stderr,
        )
        return 1
    if not args.resume and not args.fresh and results.has_journal():
        # Starting over silently truncates the journal -- for a
        # multi-day campaign that destroys every checkpoint before a
        # single new unit completes, so make the operator choose.
        print(
            f"error: {args.outdir!r} already holds a checkpoint journal; "
            f"resume it with --resume, or pass --fresh to discard the "
            f"checkpoints and start over",
            file=sys.stderr,
        )
        return 1
    try:
        with _interruptible():
            if telemetry is not None:
                with telemetry.span("cli.fly"):
                    report = runner.run(results, resume=args.resume)
            else:
                report = runner.run(results, resume=args.resume)
    except CampaignInterrupted as exc:
        print(
            f"interrupted ({exc}); completed units are journaled under "
            f"{args.outdir} -- resume with:\n"
            f"  repro-campaign run {args.outdir} --resume "
            f"--seed {args.seed} --time-scale {args.time_scale}"
            + (f" --node {args.node}" if args.node else ""),
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if telemetry is not None:
        with telemetry.span("cli.persist"):
            written = report.persist(results)
    else:
        written = report.persist(results)
    executor = runner.executor
    manifest = RunManifest(
        seed=args.seed,
        time_scale=args.time_scale,
        executor=executor.name,
        workers=max(getattr(executor, "workers", 1), 1),
        version=__version__,
        config_hash=runner.config_hash(),
        stages=telemetry.tracer.stage_durations() if telemetry else {},
        metrics=telemetry.metrics.to_dict() if telemetry else {},
        spans=telemetry.tracer.to_list() if telemetry else [],
        command=_render_command(args),
    )
    written.append(results.save_manifest(manifest))
    resumed = (
        f", resumed {report.resumed_units} unit(s)"
        if report.resumed_units
        else ""
    )
    print(
        f"campaign flown (seed={args.seed}, "
        f"time_scale={args.time_scale}, executor={executor.name}{resumed})"
    )
    for path in written:
        print(f"  wrote {path}")
    if telemetry is not None:
        print()
        print(console_summary(manifest=manifest))
    if not report.ok:
        print()
        print(report.failure_table().render())
        failed = ", ".join(r.key for r in report.failed_units)
        print(
            f"warning: {len(report.failed_units)} work unit(s) "
            f"quarantined ({failed}); campaign.json holds the "
            f"surviving sessions only",
            file=sys.stderr,
        )
        if args.strict:
            return EXIT_STRICT_FAILURES
    return 0


def _render_command(args: argparse.Namespace) -> str:
    command = (
        f"repro-campaign run {args.outdir} --seed {args.seed} "
        f"--time-scale {args.time_scale} --workers {args.workers}"
    )
    if args.node:
        command += f" --node {args.node}"
    if args.telemetry:
        command += " --telemetry"
    if args.resume:
        command += " --resume"
    if args.fresh:
        command += " --fresh"
    if args.strict:
        command += " --strict"
    if args.timeout is not None:
        command += f" --timeout {args.timeout}"
    if args.retries != 2:
        command += f" --retries {args.retries}"
    return command


def _summary_table(analysis: CampaignAnalysis, campaign: CampaignResult) -> Table:
    table = Table(
        title="Campaign summary",
        header=[
            "Session",
            "PMD (mV)",
            "Freq (MHz)",
            "Upsets/min",
            "Failures",
            "SDC FIT",
            "Total FIT",
        ],
    )
    for label in campaign.labels():
        session = campaign.session(label)
        point = session.plan.point
        table.add_row(
            label,
            point.pmd_mv,
            point.freq_mhz,
            analysis.upset_rate(label).per_minute,
            session.failure_count,
            analysis.category_fit(label, OutcomeKind.SDC).fit,
            analysis.total_fit(label).fit,
        )
    return table


def _analysis_tables(
    analysis: CampaignAnalysis, campaign: CampaignResult
) -> Dict[str, Table]:
    tables = {"table2": analysis.table2()}
    tables["summary"] = _summary_table(analysis, campaign)

    fig8 = Table(
        title="Failure mix per session (%)",
        header=["Session", "AppCrash", "SysCrash", "SDC"],
    )
    for label in campaign.labels():
        if campaign.session(label).failure_count == 0:
            continue
        mix = analysis.failure_mix(label)
        fig8.add_row(
            label,
            mix[OutcomeKind.APP_CRASH],
            mix[OutcomeKind.SYS_CRASH],
            mix[OutcomeKind.SDC],
        )
    tables["fig8"] = fig8

    fig11 = Table(
        title="FIT per category",
        header=["Session", "AppCrash", "SysCrash", "SDC", "Total"],
    )
    for label in campaign.labels():
        fig11.add_row(
            label,
            analysis.category_fit(label, OutcomeKind.APP_CRASH).fit,
            analysis.category_fit(label, OutcomeKind.SYS_CRASH).fit,
            analysis.category_fit(label, OutcomeKind.SDC).fit,
            analysis.total_fit(label).fit,
        )
    tables["fig11"] = fig11
    return tables


def _cmd_analyze(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    analysis = CampaignAnalysis(campaign)
    tables = _analysis_tables(analysis, campaign)
    if args.artifact not in tables:
        print(
            f"unknown artifact {args.artifact!r}; "
            f"choose from {sorted(tables)}",
            file=sys.stderr,
        )
        return 2
    print(tables[args.artifact].render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    analysis = CampaignAnalysis(campaign)
    for name, table in _analysis_tables(analysis, campaign).items():
        path = results.save_table(name, table)
        print(f"  wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from .core.reporting import CampaignReport

    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    path = CampaignReport(campaign).write(
        os.path.join(args.outdir, "REPORT.md")
    )
    print(f"  wrote {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    manifest = results.load_manifest()
    if results.has_journal():
        # The manifest claims a configuration; the journal proves one.
        # Disagreement means the directory mixes artifacts from
        # different runs (e.g. a re-run under new settings that died
        # before rewriting the manifest) -- any stats rendered from it
        # would attribute one configuration's numbers to another.
        from .resilient.journal import read_journal_header

        header = read_journal_header(results.journal_path())
        if header.config_hash != manifest.config_hash:
            print(
                f"error: {args.outdir!r} holds artifacts from different "
                f"runs: manifest.json was written by config "
                f"{manifest.config_hash[:12]} (seed={manifest.seed}, "
                f"time_scale={manifest.time_scale}) but the checkpoint "
                f"journal belongs to config {header.config_hash[:12]} "
                f"(seed={header.seed}, time_scale={header.time_scale}); "
                f"re-run with --fresh, or resume the journaled run to "
                f"completion, before reading stats",
                file=sys.stderr,
            )
            return 1
    if args.format == "json":
        print(manifest.to_json())
    elif args.format == "prometheus":
        text = metrics_to_prometheus(manifest.metrics)
        if not text:
            print(
                "no metrics recorded (re-run with --telemetry)",
                file=sys.stderr,
            )
            return 1
        print(text, end="")
    else:
        print(console_summary(manifest=manifest))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json

    from .validate import SUITES, run_suites

    suites = list(args.suite) if args.suite else list(SUITES)
    telemetry = Telemetry()
    with telemetry.span("cli.validate"):
        report = run_suites(
            suites=suites,
            seed=args.seed,
            time_scale=args.time_scale,
            telemetry=telemetry,
        )
    payload = report.to_dict()
    payload["metrics"] = telemetry.metrics.to_dict()
    payload["spans"] = telemetry.tracer.to_list()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"  wrote {args.out}")
    return 0 if report.ok else EXIT_GATE_FAILURES


def _sweep_spec_from_args(args: argparse.Namespace):
    """A codecs SweepSpec from the explore flags (None = default axis)."""
    from .codecs import SweepSpec

    kwargs = {}
    if args.codecs:
        kwargs["codecs"] = tuple(
            token.strip() for token in args.codecs.split(",") if token.strip()
        )
    if args.points:
        points = []
        for token in args.points.split(","):
            token = token.strip()
            if not token:
                continue
            pmd, sep, soc = token.partition(":")
            try:
                if not sep:
                    raise ValueError(token)
                points.append((int(pmd), int(soc)))
            except ValueError:
                raise ConfigurationError(
                    f"malformed operating point {token!r}; --points wants "
                    f"PMD:SOC millivolt pairs like 980:950,930:925"
                ) from None
        kwargs["points"] = tuple(points)
    if args.workloads:
        kwargs["workloads"] = tuple(
            token.strip()
            for token in args.workloads.split(",")
            if token.strip()
        )
    if args.strikes is not None:
        kwargs["strikes"] = args.strikes
    if args.interleave is not None:
        kwargs["interleave"] = args.interleave
    if args.node:
        kwargs["nodes"] = tuple(
            token.strip() for token in args.node.split(",") if token.strip()
        )
    return SweepSpec(seed=args.seed, name=args.name or "", **kwargs)


def _explore_flags(args: argparse.Namespace) -> str:
    """The explore flags to repeat in a resume hint."""
    flags = ""
    for name in ("codecs", "points", "workloads", "node", "name"):
        value = getattr(args, name)
        if value:
            flags += f" --{name} {value}"
    for name in ("strikes", "interleave"):
        value = getattr(args, name)
        if value is not None:
            flags += f" --{name} {value}"
    flags += f" --seed {args.seed}"
    if args.workers > 1:
        flags += f" --workers {args.workers}"
    return flags


def _write_fit_cells(outdir: str, document: dict) -> str:
    """Flatten pareto.json's cells into fit_cells.csv; returns the path."""
    import os

    path = os.path.join(outdir, "fit_cells.csv")
    header = [
        "label",
        "codec",
        "pmd_mv",
        "soc_mv",
        "workload",
        "events",
        "fit_due",
        "fit_sdc",
        "fit_total",
        "fit_total_lower",
        "fit_total_upper",
        "silent_fraction",
        "area_gates",
        "energy_pj",
        "on_front",
    ]
    lines = [",".join(header)]
    for cell in document["cells"]:
        lines.append(
            ",".join(
                str(value)
                for value in (
                    cell["label"],
                    cell["codec"],
                    cell["pmd_mv"],
                    cell["soc_mv"],
                    cell["workload"],
                    cell["events"],
                    cell["fit_due"]["value"],
                    cell["fit_sdc"]["value"],
                    cell["fit_total"]["value"],
                    cell["fit_total"]["lower"],
                    cell["fit_total"]["upper"],
                    cell["silent_fraction"]["value"],
                    cell["cost"]["area_gates"],
                    cell["cost"]["energy_pj"],
                    int(cell["on_front"]),
                )
            )
        )
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    return path


def _cmd_explore(args: argparse.Namespace) -> int:
    import json
    import os
    import shutil

    from .codecs import assemble_pareto, plan_sweep
    from .engine.executor import resolve_executor
    from .engine.pool import WarmupSpec
    from .scheduler import Broker, DirectoryStore
    from .tech import DEFAULT_NODE

    spec = _sweep_spec_from_args(args)
    scheduler_dir = os.path.join(args.outdir, "scheduler")
    committed = (
        DirectoryStore(scheduler_dir).committed_units()
        if os.path.isdir(scheduler_dir)
        else []
    )
    if args.resume and not committed:
        print(
            f"error: no committed cells under {scheduler_dir!r} to resume "
            f"from (run without --resume first)",
            file=sys.stderr,
        )
        return 1
    if committed and not args.resume and not args.fresh:
        # Rerunning over a half-swept directory silently mixes two
        # sweeps' commits; make the operator choose, exactly like
        # `run` does for its checkpoint journal.
        print(
            f"error: {args.outdir!r} already holds {len(committed)} "
            f"committed sweep cell(s); resume the sweep with --resume, or "
            f"pass --fresh to discard the commits and start over",
            file=sys.stderr,
        )
        return 1
    if args.fresh and os.path.isdir(scheduler_dir):
        shutil.rmtree(scheduler_dir)
    os.makedirs(scheduler_dir, exist_ok=True)
    broker = Broker(
        lease_ttl_s=3600.0,
        store=DirectoryStore(scheduler_dir),
        broker_id=f"explore-{os.getpid()}",
    )
    plan = plan_sweep(spec)
    submission = broker.submit(plan)
    sid = submission.submission_id
    total = len(plan.units)
    recovered = total - broker.pending_count()
    # Cell units re-enter the same codecs every lease batch; warming
    # their tables once per worker keeps the pool's reuse win honest.
    executor = resolve_executor(
        args.workers, warmup=WarmupSpec(codecs=tuple(spec.codecs))
    )
    axes = (
        f"{len(spec.codecs)} codec(s) x {len(spec.points)} point(s) x "
        f"{len(spec.workloads)} workload(s)"
    )
    if spec.nodes != (DEFAULT_NODE,):
        axes += f" x {len(spec.nodes)} node(s)"
    print(
        f"exploring {total} cell(s): {axes}, "
        f"{spec.strikes} strikes/cell, executor={executor.name}, "
        f"submission {sid}"
    )
    if recovered:
        print(f"  recovered {recovered} committed cell(s) from {scheduler_dir}")
    batch = max(args.workers, 1)
    done = recovered
    try:
        with _interruptible():
            while True:
                leases = broker.lease("explore-cli", limit=batch)
                if not leases:
                    break
                results = executor.map([lease.unit for lease in leases])
                for lease, result in zip(leases, results):
                    # run_cell payloads are JSON-shaped; committing them
                    # verbatim makes the store the checkpoint journal.
                    broker.complete(lease, result, payload=result)
                done += len(leases)
                print(f"  {done}/{total} cell(s) committed")
    except CampaignInterrupted as exc:
        print(
            f"interrupted ({exc}); completed cells are committed under "
            f"{scheduler_dir} -- resume with:\n"
            f"  repro-campaign explore {args.outdir} --resume"
            f"{_explore_flags(args)}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    finally:
        executor.close()
    document = assemble_pareto(spec, broker.entries_for(sid))
    pareto_path = os.path.join(args.outdir, "pareto.json")
    with open(pareto_path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    csv_path = _write_fit_cells(args.outdir, document)
    print(f"  wrote {pareto_path}")
    print(f"  wrote {csv_path}")
    front_codecs = sorted({c["codec"] for c in document["pareto"]})
    print(
        f"pareto front: {len(document['pareto'])} of "
        f"{len(document['cells'])} cell(s), codecs "
        f"{', '.join(front_codecs)}"
    )
    failed = [gate for gate in document["gates"] if not gate["ok"]]
    if failed:
        for gate in failed:
            print(
                f"gate FAILED: {gate['gate']}: {gate['detail']}",
                file=sys.stderr,
            )
        return EXIT_GATE_FAILURES
    return 0


def _spec_from_args(args: argparse.Namespace):
    """A CampaignSpec from --spec FILE or the loose submit flags."""
    from .scheduler import CampaignSpec

    if args.spec:
        with open(args.spec) as handle:
            return CampaignSpec.from_json(handle.read())
    return CampaignSpec(
        seed=args.seed,
        time_scale=args.time_scale,
        flux_per_cm2_s=args.flux,
        vectorized=not args.no_vectorized,
        priority=args.priority,
        max_workers=args.max_workers,
        tech_node=args.tech_node,
        name=args.name or "",
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import CampaignService, ServiceConfig

    config = ServiceConfig(
        root=args.root,
        workers=args.workers,
        capacity=args.capacity,
        lease_ttl_s=args.lease_ttl,
        poll_s=args.poll,
        http_port=args.http,
        idle_exit_s=args.idle_exit,
        broker_id=args.broker_id,
        timeout_s=args.timeout,
        retries=args.retries,
        validate=args.validate,
        store_chaos=args.store_chaos,
    )
    service = CampaignService(config, telemetry=Telemetry())
    where = (
        f", http on 127.0.0.1:{args.http}" if args.http is not None else ""
    )
    print(
        f"serving campaigns from {args.root} "
        f"(broker {service.broker_id}, {args.workers} worker(s), "
        f"capacity {args.capacity}{where})"
    )
    return service.serve()


def _http_submit(url: str, spec) -> int:
    """POST a spec to a live service; the HTTP road to exit 5."""
    import json
    import urllib.error
    import urllib.request

    request = urllib.request.Request(
        url.rstrip("/") + "/submit",
        data=spec.to_json().encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        if exc.code == 503:
            raise SchedulerBusy(
                f"service at {url} refused the submission (queue full): "
                f"{detail}"
            ) from exc
        print(f"error: service returned {exc.code}: {detail}", file=sys.stderr)
        return 1
    except urllib.error.URLError as exc:
        print(f"error: cannot reach service at {url}: {exc}", file=sys.stderr)
        return 1
    deduped = " (deduplicated: already queued)" if payload.get("deduped") else ""
    print(f"submitted {payload['submission_id']}{deduped}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json
    import os
    import time

    from .service import check_backpressure, jobs_dir, results_dir

    spec = _spec_from_args(args)
    if args.url:
        status = _http_submit(args.url, spec)
        if status != 0:
            return status
        sid = spec.submission_id
    else:
        # File-based: the queue bound is enforced against the live
        # broker's status snapshot, then the job is dropped atomically
        # into ROOT/jobs for the watcher.
        check_backpressure(args.root, incoming_units=4)
        sid = spec.submission_id
        jobs = jobs_dir(args.root)
        os.makedirs(jobs, exist_ok=True)
        path = os.path.join(jobs, f"job-{sid}.json")
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w") as handle:
            handle.write(spec.to_json())
        os.replace(tmp, path)
        print(f"submitted {sid} ({path})")
    outdir = results_dir(args.root, sid)
    print(f"  results will land in {outdir}")
    if args.wait is None:
        return 0
    deadline = time.monotonic() + args.wait if args.wait > 0 else None
    campaign_path = os.path.join(outdir, "campaign.json")
    while not os.path.exists(campaign_path):
        if deadline is not None and time.monotonic() > deadline:
            print(
                f"error: timed out after {args.wait}s waiting for {sid} "
                f"(is a `repro-campaign serve {args.root}` running?)",
                file=sys.stderr,
            )
            return 1
        time.sleep(0.2)
    failures_path = os.path.join(outdir, "failures.json")
    try:
        with open(failures_path) as handle:
            ok = bool(json.load(handle).get("ok", True))
    except (OSError, json.JSONDecodeError, ValueError):
        ok = True
    print(f"  {sid} complete ({campaign_path})")
    return 0 if ok else EXIT_STRICT_FAILURES


def _cmd_status(args: argparse.Namespace) -> int:
    import json
    import time

    from .service import status_path

    try:
        with open(status_path(args.root)) as handle:
            status = json.load(handle)
    except FileNotFoundError:
        print(
            f"error: no status snapshot under {args.root!r} "
            f"(start one with `repro-campaign serve {args.root}`)",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    age = time.time() - status.get("updated_unix", 0)
    print(
        f"broker {status.get('broker')} [{status.get('state')}] -- "
        f"{status.get('queued_units')} queued, "
        f"{status.get('inflight_units')} in flight, "
        f"capacity {status.get('capacity')}, "
        f"updated {age:.0f}s ago"
    )
    store = status.get("store")
    if isinstance(store, dict):
        epochs = ", ".join(
            f"{broker}={epoch}"
            for broker, epoch in sorted(
                (store.get("epochs") or {}).items()
            )
        )
        print(
            f"store: epochs [{epochs or 'none'}], "
            f"{store.get('quarantined', 0)} quarantined, "
            f"{store.get('retries', 0)} retried I/O op(s), "
            f"{store.get('fenced', 0)} fenced write(s)"
        )
    table = Table(
        title="Submissions",
        header=["Submission", "Name", "Priority", "Units", "State"],
    )
    for sub in status.get("submissions", []):
        units = sub.get("units", {})
        total = sum(units.values())
        done = units.get("done", 0)
        if sub.get("cancelled"):
            state = "cancelled"
        elif done == total and total:
            state = "complete"
        elif units.get("failed"):
            state = "failed"
        else:
            state = "running"
        table.add_row(
            sub.get("submission_id"),
            sub.get("name"),
            sub.get("priority"),
            f"{done}/{total}",
            state,
        )
    print(table.render())
    return 0


def _cmd_cancel(args: argparse.Namespace) -> int:
    import json
    import os

    from .service import jobs_dir

    if args.url:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            args.url.rstrip("/") + "/cancel",
            data=json.dumps({"submission_id": args.submission}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                payload = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace").strip()
            print(
                f"error: cancel failed ({exc.code}): {detail}",
                file=sys.stderr,
            )
            return 1
        print(
            f"cancelled {args.submission} "
            f"({payload.get('dropped', 0)} queued unit(s) dropped)"
        )
        return 0
    jobs = jobs_dir(args.root)
    os.makedirs(jobs, exist_ok=True)
    path = os.path.join(jobs, f"cancel-{args.submission}-{os.getpid()}.json")
    tmp = f"{path}.tmp"
    with open(tmp, "w") as handle:
        json.dump({"cancel": args.submission}, handle)
        handle.write("\n")
    os.replace(tmp, path)
    print(f"cancel requested for {args.submission} ({path})")
    return 0


def _cmd_quarantine(args: argparse.Namespace) -> int:
    import json
    import os

    from .scheduler import DirectoryStore
    from .service import scheduler_dir

    state = scheduler_dir(args.root)
    if not os.path.isdir(state):
        print(
            f"error: no scheduler state under {args.root!r} "
            f"(expected {state}; point me at a serve root or an "
            f"explore outdir)",
            file=sys.stderr,
        )
        return 1
    store = DirectoryStore(state)
    if args.requeue:
        records = store.requeue_quarantined()
        verb = "requeued"
    else:
        records = store.quarantined_units()
        verb = "quarantined"
    if args.json:
        print(json.dumps(records, indent=2, sort_keys=True))
        return 0
    if not records:
        print(f"0 unit(s) {verb}")
        return 0
    table = Table(
        title=f"{len(records)} unit(s) {verb}",
        header=["Unit", "Reason", "Detail"],
    )
    for record in records:
        table.add_row(
            record.get("unit_id"),
            record.get("reason"),
            record.get("detail"),
        )
    print(table.render())
    if args.requeue:
        print(
            "requeued units will replan and recommit on the next "
            "run/serve/explore over this root"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run, persist and analyze simulated beam campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="fly a campaign and persist it")
    run.add_argument("outdir")
    run.add_argument("--seed", type=int, default=2023)
    run.add_argument("--time-scale", type=float, default=0.2)
    run.add_argument(
        "--node",
        default=None,
        metavar="NODE",
        help="registered technology node to fly on (scales the Table 2 "
        "operating points onto the node's grid; default: the 28 nm "
        "X-Gene 2)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="sessions to fly concurrently (0/1 = serial)",
    )
    run.add_argument(
        "--telemetry",
        action="store_true",
        help="record metrics/spans into manifest.json and print a summary",
    )
    journal_mode = run.add_mutually_exclusive_group()
    journal_mode.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from OUTDIR's checkpoint journal",
    )
    journal_mode.add_argument(
        "--fresh",
        action="store_true",
        help="discard OUTDIR's existing checkpoint journal and start "
        "over (without this, rerunning a journaled OUTDIR is refused)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="exit 3 (with a failure table) if any work unit was "
        "quarantined",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-unit response timeout in seconds (default: none)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per unit for transient failures (default: 2)",
    )
    run.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults into the harness: inline JSON "
        "or a path to a JSON chaos spec (self-test/CI only)",
    )
    run.set_defaults(func=_cmd_run)

    analyze = sub.add_parser("analyze", help="print an analysis artifact")
    analyze.add_argument("outdir")
    analyze.add_argument(
        "--artifact",
        default="summary",
        help="summary | table2 | fig8 | fig11",
    )
    analyze.set_defaults(func=_cmd_analyze)

    export = sub.add_parser("export", help="write analysis tables as CSV")
    export.add_argument("outdir")
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser("report", help="write the markdown report")
    report.add_argument("outdir")
    report.set_defaults(func=_cmd_report)

    stats = sub.add_parser(
        "stats", help="render a stored run's manifest and telemetry"
    )
    stats.add_argument("outdir")
    stats.add_argument(
        "--format",
        default="console",
        choices=["console", "json", "prometheus"],
        help="output format (default: console)",
    )
    stats.set_defaults(func=_cmd_stats)

    validate = sub.add_parser(
        "validate",
        help="run the paper-conformance, differential and statistical "
        "gates (exit 4 on any failed gate)",
    )
    validate.add_argument(
        "--suite",
        action="append",
        choices=["conformance", "differential", "statistical"],
        help="suite to run (repeatable; default: all three)",
    )
    validate.add_argument("--seed", type=int, default=2023)
    validate.add_argument("--time-scale", type=float, default=0.2)
    validate.add_argument(
        "--out",
        default="conformance.json",
        metavar="FILE",
        help="where to write the JSON gate report "
        "(default: conformance.json)",
    )
    validate.set_defaults(func=_cmd_validate)

    explore = sub.add_parser(
        "explore",
        help="run a codec x voltage x workload design-space sweep "
        "through the scheduler broker (resumable; exit 4 on failed "
        "consistency gates)",
    )
    explore.add_argument("outdir")
    explore.add_argument(
        "--codecs",
        default=None,
        metavar="LIST",
        help="comma-separated registered codec names "
        "(default: parity,secded,dected,sec-daec,bch-t2)",
    )
    explore.add_argument(
        "--points",
        default=None,
        metavar="LIST",
        help="comma-separated PMD:SOC millivolt pairs "
        "(default: 980:950,930:925,920:920,790:950)",
    )
    explore.add_argument(
        "--workloads",
        default=None,
        metavar="LIST",
        help="comma-separated NPB workload names (default: CG,FT,EP)",
    )
    explore.add_argument(
        "--strikes",
        type=int,
        default=None,
        metavar="N",
        help="particle strikes per cell (default: 2000)",
    )
    explore.add_argument("--seed", type=int, default=2023)
    explore.add_argument(
        "--interleave",
        type=int,
        default=None,
        metavar="N",
        help="physical bit interleaving degree: an MBU cluster of size "
        "s lands as ceil(s/N) adjacent flips per word (default: 1)",
    )
    explore.add_argument(
        "--node",
        default=None,
        metavar="LIST",
        help="comma-separated registered technology-node names to sweep "
        "(e.g. xgene2-28,7nm); --points are 28 nm reference voltages, "
        "scaled onto each node's grid (default: xgene2-28 only)",
    )
    explore.add_argument("--name", default=None, help="display name")
    explore.add_argument(
        "--workers",
        type=int,
        default=0,
        help="cells to run concurrently (0/1 = serial; pareto.json is "
        "byte-identical either way)",
    )
    explore_mode = explore.add_mutually_exclusive_group()
    explore_mode.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted sweep from OUTDIR's committed cells",
    )
    explore_mode.add_argument(
        "--fresh",
        action="store_true",
        help="discard OUTDIR's committed cells and start over (without "
        "this, rerunning a half-swept OUTDIR is refused)",
    )
    explore.set_defaults(func=_cmd_explore)

    serve = sub.add_parser(
        "serve",
        help="run a campaign service: watch ROOT/jobs, lease work to a "
        "supervised pool, assemble results under ROOT/results",
    )
    serve.add_argument("root")
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="supervised worker processes per batch (default: 2)",
    )
    serve.add_argument(
        "--capacity",
        type=int,
        default=64,
        help="bounded queue size in work units; full-queue submissions "
        "are refused with SchedulerBusy (default: 64)",
    )
    serve.add_argument(
        "--lease-ttl",
        type=float,
        default=15.0,
        metavar="S",
        help="seconds a lease survives without a heartbeat; a killed "
        "worker's units are re-leased after this (default: 15)",
    )
    serve.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="S",
        help="job-directory poll interval in seconds (default: 0.5)",
    )
    serve.add_argument(
        "--http",
        type=int,
        default=None,
        metavar="PORT",
        help="also listen on 127.0.0.1:PORT "
        "(GET /status /metrics, POST /submit /cancel)",
    )
    serve.add_argument(
        "--idle-exit",
        type=float,
        default=None,
        metavar="S",
        help="exit 0 after S seconds with no queued, in-flight or "
        "dropped work (for batch jobs and CI)",
    )
    serve.add_argument(
        "--broker-id",
        default=None,
        help="stable broker identity for leases and the scheduling "
        "journal (default: broker-<pid>)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-unit response timeout in seconds (default: none)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per unit for transient failures (default: 2)",
    )
    serve.add_argument(
        "--validate",
        action="store_true",
        help="run the post-job gates on every assembled submission "
        "(validation.json next to campaign.json; verdict in "
        "status.json)",
    )
    serve.add_argument(
        "--store-chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults into the shared store: inline "
        "JSON or a path to a store-chaos spec (torn_write, "
        "corrupt_commit, duplicate_link, stale_read, transient_errno "
        "op-index lists; self-test/CI only)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit",
        help="submit a campaign spec to a service root (exit 5 when the "
        "queue is full)",
    )
    submit.add_argument("root")
    submit.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="campaign spec JSON file (overrides the loose flags)",
    )
    submit.add_argument("--seed", type=int, default=2023)
    submit.add_argument("--time-scale", type=float, default=0.2)
    submit.add_argument(
        "--flux",
        type=float,
        default=None,
        metavar="F",
        help="campaign-wide flux override (particles/cm^2/s)",
    )
    submit.add_argument(
        "--priority",
        type=int,
        default=0,
        help="broker queueing priority; higher leases first (default: 0)",
    )
    submit.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="cap how many pool workers this submission may occupy at "
        "once, so one huge sweep cannot starve the queue (default: "
        "no cap)",
    )
    submit.add_argument(
        "--tech-node",
        default=None,
        metavar="NODE",
        help="registered technology node to fly the campaign on "
        "(part of the physics, so it folds into the submission id; "
        "default: the 28 nm X-Gene 2)",
    )
    submit.add_argument("--name", default=None, help="display name")
    submit.add_argument(
        "--no-vectorized",
        action="store_true",
        help="use the scalar injector realization path",
    )
    submit.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="submit over HTTP to a serving broker (e.g. "
        "http://127.0.0.1:8642) instead of the job directory",
    )
    submit.add_argument(
        "--wait",
        type=float,
        nargs="?",
        const=0.0,
        default=None,
        metavar="S",
        help="block until the submission's campaign.json lands "
        "(optionally at most S seconds)",
    )
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser(
        "status", help="show a service root's broker status"
    )
    status.add_argument("root")
    status.add_argument(
        "--json", action="store_true", help="print the raw status snapshot"
    )
    status.set_defaults(func=_cmd_status)

    cancel = sub.add_parser(
        "cancel", help="cancel a queued submission on a service root"
    )
    cancel.add_argument("root")
    cancel.add_argument("submission", help="submission id (sub-...)")
    cancel.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="cancel over HTTP instead of the job directory",
    )
    cancel.set_defaults(func=_cmd_cancel)

    quarantine = sub.add_parser(
        "quarantine",
        help="list (or requeue) a root's quarantined work units",
    )
    quarantine.add_argument(
        "root", help="a serve root or explore outdir holding scheduler state"
    )
    quarantine.add_argument(
        "--requeue",
        action="store_true",
        help="clear the quarantine records so the units replan and "
        "recommit on the next run over this root",
    )
    quarantine.add_argument(
        "--json",
        action="store_true",
        help="print the raw reason records",
    )
    quarantine.set_defaults(func=_cmd_quarantine)
    return parser


def main(argv=None) -> int:
    """Console-script entry point.

    Library errors (missing/corrupt results directories, bad
    configurations) exit nonzero with a one-line message instead of a
    traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except SchedulerBusy as exc:
        print(f"busy: {exc}", file=sys.stderr)
        return EXIT_SCHEDULER_BUSY
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        # Corrupt on-disk artifacts surface as JSON/lookup errors.
        print(f"error: corrupt results data: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
