"""``repro-campaign``: run, persist, and analyze campaigns from the shell.

Subcommands::

    repro-campaign run OUTDIR [--seed N] [--time-scale X] [--workers N]
                              [--telemetry] [--resume | --fresh] [--strict]
                              [--timeout S] [--retries N] [--chaos SPEC]
        Fly the Table 2 campaign and persist everything under OUTDIR
        (campaign.json + per-session dmesg captures + manifest.json +
        the checkpoint journal + failures.json).
        --workers N > 1 flies sessions on separate processes; the
        output is bit-identical to the serial run.  --telemetry records
        metrics and spans into the manifest and prints a summary
        (campaign.json stays byte-identical either way).
        Every completed work unit is checkpointed to journal.jsonl; an
        interrupted run (SIGTERM/SIGINT, exit 143/130) resumes with
        --resume, producing campaign.json byte-identical to an
        uninterrupted run.  Rerunning an OUTDIR that already holds a
        journal without --resume is refused (it would destroy the
        checkpoints); pass --fresh to discard them deliberately.  Work units fly under supervision: --timeout
        bounds each unit, --retries bounds transient-failure retries
        (deterministic exponential backoff), and persistently failing
        units are quarantined.  Without --strict a partial campaign
        still exits 0 (with a failure table); --strict exits 3 when any
        unit ended quarantined.  --chaos JSON|FILE injects
        deterministic faults into the harness itself (self-test /CI).

    repro-campaign analyze OUTDIR [--artifact table2|fig8|fig11|summary]
        Reload a stored campaign and print an analysis artifact.

    repro-campaign export OUTDIR
        Write the campaign's tables as CSVs next to the raw data.

    repro-campaign report OUTDIR
        Write the full markdown campaign report (REPORT.md).

    repro-campaign stats OUTDIR [--format console|json|prometheus]
        Render a stored run's manifest and telemetry.  Refuses (exit 1)
        when the manifest's config hash disagrees with the checkpoint
        journal's -- mixed-provenance results directories lie about
        which configuration produced the numbers.

    repro-campaign validate [--suite conformance|differential|statistical]
                            [--seed N] [--time-scale X] [--out FILE]
        Run the paper-conformance gates (repro.validate): golden-value
        oracles, differential pairings, and seed-ladder statistical
        checks.  Prints the gate report, writes it as JSON (default
        conformance.json), and exits 4 if any gate fails.

The separation mirrors real campaign practice: `run` burns (simulated)
beam time once; `analyze`/`export`/`stats`/`validate` are free and
repeatable.
"""

from __future__ import annotations

import argparse
import signal
import sys
from contextlib import contextmanager
from typing import Dict

from . import __version__
from .core.analysis import CampaignAnalysis
from .core.report import Table
from .engine import ExecutionContext
from .errors import CampaignInterrupted, ReproError
from .harness.campaign import CampaignResult
from .injection.events import OutcomeKind
from .io.results_dir import ResultsDirectory
from .resilient import ChaosSpec, ResilientCampaign, SupervisionPolicy
from .telemetry import (
    RunManifest,
    Telemetry,
    console_summary,
    metrics_to_prometheus,
)

#: Exit codes beyond the usual 0/1/2: a strict run with quarantined
#: units, failed validation gates, and an interrupted (resumable) run.
EXIT_STRICT_FAILURES = 3
EXIT_GATE_FAILURES = 4
EXIT_INTERRUPTED = 143


@contextmanager
def _interruptible():
    """Turn SIGTERM/SIGINT into :class:`CampaignInterrupted`.

    The journal is fsynced after every completed unit, so raising out
    of the run loop (instead of dying mid-write) just stops cleanly at
    the last checkpoint; ``--resume`` picks the run back up.
    """

    def _handler(signum, frame):
        raise CampaignInterrupted(f"received signal {signum}")

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, _handler)
        except (ValueError, OSError):  # non-main thread / exotic platform
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


def _cmd_run(args: argparse.Namespace) -> int:
    telemetry = Telemetry() if args.telemetry else None
    context = ExecutionContext(
        seed=args.seed, time_scale=args.time_scale, telemetry=telemetry
    )
    policy = SupervisionPolicy(
        timeout_s=args.timeout, max_retries=args.retries
    )
    chaos = ChaosSpec.from_json(args.chaos) if args.chaos else None
    runner = ResilientCampaign(
        context=context,
        workers=args.workers,
        policy=policy,
        chaos=chaos,
    )
    results = ResultsDirectory(args.outdir)
    if args.resume and not results.has_journal():
        print(
            f"error: no journal under {args.outdir!r} to resume from "
            f"(run without --resume first)",
            file=sys.stderr,
        )
        return 1
    if not args.resume and not args.fresh and results.has_journal():
        # Starting over silently truncates the journal -- for a
        # multi-day campaign that destroys every checkpoint before a
        # single new unit completes, so make the operator choose.
        print(
            f"error: {args.outdir!r} already holds a checkpoint journal; "
            f"resume it with --resume, or pass --fresh to discard the "
            f"checkpoints and start over",
            file=sys.stderr,
        )
        return 1
    try:
        with _interruptible():
            if telemetry is not None:
                with telemetry.span("cli.fly"):
                    report = runner.run(results, resume=args.resume)
            else:
                report = runner.run(results, resume=args.resume)
    except CampaignInterrupted as exc:
        print(
            f"interrupted ({exc}); completed units are journaled under "
            f"{args.outdir} -- resume with:\n"
            f"  repro-campaign run {args.outdir} --resume "
            f"--seed {args.seed} --time-scale {args.time_scale}",
            file=sys.stderr,
        )
        return EXIT_INTERRUPTED
    if telemetry is not None:
        with telemetry.span("cli.persist"):
            written = report.persist(results)
    else:
        written = report.persist(results)
    executor = runner.executor
    manifest = RunManifest(
        seed=args.seed,
        time_scale=args.time_scale,
        executor=executor.name,
        workers=max(getattr(executor, "workers", 1), 1),
        version=__version__,
        config_hash=runner.config_hash(),
        stages=telemetry.tracer.stage_durations() if telemetry else {},
        metrics=telemetry.metrics.to_dict() if telemetry else {},
        spans=telemetry.tracer.to_list() if telemetry else [],
        command=_render_command(args),
    )
    written.append(results.save_manifest(manifest))
    resumed = (
        f", resumed {report.resumed_units} unit(s)"
        if report.resumed_units
        else ""
    )
    print(
        f"campaign flown (seed={args.seed}, "
        f"time_scale={args.time_scale}, executor={executor.name}{resumed})"
    )
    for path in written:
        print(f"  wrote {path}")
    if telemetry is not None:
        print()
        print(console_summary(manifest=manifest))
    if not report.ok:
        print()
        print(report.failure_table().render())
        failed = ", ".join(r.key for r in report.failed_units)
        print(
            f"warning: {len(report.failed_units)} work unit(s) "
            f"quarantined ({failed}); campaign.json holds the "
            f"surviving sessions only",
            file=sys.stderr,
        )
        if args.strict:
            return EXIT_STRICT_FAILURES
    return 0


def _render_command(args: argparse.Namespace) -> str:
    command = (
        f"repro-campaign run {args.outdir} --seed {args.seed} "
        f"--time-scale {args.time_scale} --workers {args.workers}"
    )
    if args.telemetry:
        command += " --telemetry"
    if args.resume:
        command += " --resume"
    if args.fresh:
        command += " --fresh"
    if args.strict:
        command += " --strict"
    if args.timeout is not None:
        command += f" --timeout {args.timeout}"
    if args.retries != 2:
        command += f" --retries {args.retries}"
    return command


def _summary_table(analysis: CampaignAnalysis, campaign: CampaignResult) -> Table:
    table = Table(
        title="Campaign summary",
        header=[
            "Session",
            "PMD (mV)",
            "Freq (MHz)",
            "Upsets/min",
            "Failures",
            "SDC FIT",
            "Total FIT",
        ],
    )
    for label in campaign.labels():
        session = campaign.session(label)
        point = session.plan.point
        table.add_row(
            label,
            point.pmd_mv,
            point.freq_mhz,
            analysis.upset_rate(label).per_minute,
            session.failure_count,
            analysis.category_fit(label, OutcomeKind.SDC).fit,
            analysis.total_fit(label).fit,
        )
    return table


def _analysis_tables(
    analysis: CampaignAnalysis, campaign: CampaignResult
) -> Dict[str, Table]:
    tables = {"table2": analysis.table2()}
    tables["summary"] = _summary_table(analysis, campaign)

    fig8 = Table(
        title="Failure mix per session (%)",
        header=["Session", "AppCrash", "SysCrash", "SDC"],
    )
    for label in campaign.labels():
        if campaign.session(label).failure_count == 0:
            continue
        mix = analysis.failure_mix(label)
        fig8.add_row(
            label,
            mix[OutcomeKind.APP_CRASH],
            mix[OutcomeKind.SYS_CRASH],
            mix[OutcomeKind.SDC],
        )
    tables["fig8"] = fig8

    fig11 = Table(
        title="FIT per category",
        header=["Session", "AppCrash", "SysCrash", "SDC", "Total"],
    )
    for label in campaign.labels():
        fig11.add_row(
            label,
            analysis.category_fit(label, OutcomeKind.APP_CRASH).fit,
            analysis.category_fit(label, OutcomeKind.SYS_CRASH).fit,
            analysis.category_fit(label, OutcomeKind.SDC).fit,
            analysis.total_fit(label).fit,
        )
    tables["fig11"] = fig11
    return tables


def _cmd_analyze(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    analysis = CampaignAnalysis(campaign)
    tables = _analysis_tables(analysis, campaign)
    if args.artifact not in tables:
        print(
            f"unknown artifact {args.artifact!r}; "
            f"choose from {sorted(tables)}",
            file=sys.stderr,
        )
        return 2
    print(tables[args.artifact].render())
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    analysis = CampaignAnalysis(campaign)
    for name, table in _analysis_tables(analysis, campaign).items():
        path = results.save_table(name, table)
        print(f"  wrote {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import os

    from .core.reporting import CampaignReport

    results = ResultsDirectory(args.outdir)
    campaign = results.load_campaign()
    path = CampaignReport(campaign).write(
        os.path.join(args.outdir, "REPORT.md")
    )
    print(f"  wrote {path}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    results = ResultsDirectory(args.outdir)
    manifest = results.load_manifest()
    if results.has_journal():
        # The manifest claims a configuration; the journal proves one.
        # Disagreement means the directory mixes artifacts from
        # different runs (e.g. a re-run under new settings that died
        # before rewriting the manifest) -- any stats rendered from it
        # would attribute one configuration's numbers to another.
        from .resilient.journal import read_journal_header

        header = read_journal_header(results.journal_path())
        if header.config_hash != manifest.config_hash:
            print(
                f"error: {args.outdir!r} holds artifacts from different "
                f"runs: manifest.json was written by config "
                f"{manifest.config_hash[:12]} (seed={manifest.seed}, "
                f"time_scale={manifest.time_scale}) but the checkpoint "
                f"journal belongs to config {header.config_hash[:12]} "
                f"(seed={header.seed}, time_scale={header.time_scale}); "
                f"re-run with --fresh, or resume the journaled run to "
                f"completion, before reading stats",
                file=sys.stderr,
            )
            return 1
    if args.format == "json":
        print(manifest.to_json())
    elif args.format == "prometheus":
        text = metrics_to_prometheus(manifest.metrics)
        if not text:
            print(
                "no metrics recorded (re-run with --telemetry)",
                file=sys.stderr,
            )
            return 1
        print(text, end="")
    else:
        print(console_summary(manifest=manifest))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json

    from .validate import SUITES, run_suites

    suites = list(args.suite) if args.suite else list(SUITES)
    telemetry = Telemetry()
    with telemetry.span("cli.validate"):
        report = run_suites(
            suites=suites,
            seed=args.seed,
            time_scale=args.time_scale,
            telemetry=telemetry,
        )
    payload = report.to_dict()
    payload["metrics"] = telemetry.metrics.to_dict()
    payload["spans"] = telemetry.tracer.to_list()
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(report.render())
    print(f"  wrote {args.out}")
    return 0 if report.ok else EXIT_GATE_FAILURES


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-campaign`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run, persist and analyze simulated beam campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="fly a campaign and persist it")
    run.add_argument("outdir")
    run.add_argument("--seed", type=int, default=2023)
    run.add_argument("--time-scale", type=float, default=0.2)
    run.add_argument(
        "--workers",
        type=int,
        default=0,
        help="sessions to fly concurrently (0/1 = serial)",
    )
    run.add_argument(
        "--telemetry",
        action="store_true",
        help="record metrics/spans into manifest.json and print a summary",
    )
    journal_mode = run.add_mutually_exclusive_group()
    journal_mode.add_argument(
        "--resume",
        action="store_true",
        help="resume an interrupted run from OUTDIR's checkpoint journal",
    )
    journal_mode.add_argument(
        "--fresh",
        action="store_true",
        help="discard OUTDIR's existing checkpoint journal and start "
        "over (without this, rerunning a journaled OUTDIR is refused)",
    )
    run.add_argument(
        "--strict",
        action="store_true",
        help="exit 3 (with a failure table) if any work unit was "
        "quarantined",
    )
    run.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="S",
        help="per-unit response timeout in seconds (default: none)",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per unit for transient failures (default: 2)",
    )
    run.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="inject deterministic faults into the harness: inline JSON "
        "or a path to a JSON chaos spec (self-test/CI only)",
    )
    run.set_defaults(func=_cmd_run)

    analyze = sub.add_parser("analyze", help="print an analysis artifact")
    analyze.add_argument("outdir")
    analyze.add_argument(
        "--artifact",
        default="summary",
        help="summary | table2 | fig8 | fig11",
    )
    analyze.set_defaults(func=_cmd_analyze)

    export = sub.add_parser("export", help="write analysis tables as CSV")
    export.add_argument("outdir")
    export.set_defaults(func=_cmd_export)

    report = sub.add_parser("report", help="write the markdown report")
    report.add_argument("outdir")
    report.set_defaults(func=_cmd_report)

    stats = sub.add_parser(
        "stats", help="render a stored run's manifest and telemetry"
    )
    stats.add_argument("outdir")
    stats.add_argument(
        "--format",
        default="console",
        choices=["console", "json", "prometheus"],
        help="output format (default: console)",
    )
    stats.set_defaults(func=_cmd_stats)

    validate = sub.add_parser(
        "validate",
        help="run the paper-conformance, differential and statistical "
        "gates (exit 4 on any failed gate)",
    )
    validate.add_argument(
        "--suite",
        action="append",
        choices=["conformance", "differential", "statistical"],
        help="suite to run (repeatable; default: all three)",
    )
    validate.add_argument("--seed", type=int, default=2023)
    validate.add_argument("--time-scale", type=float, default=0.2)
    validate.add_argument(
        "--out",
        default="conformance.json",
        metavar="FILE",
        help="where to write the JSON gate report "
        "(default: conformance.json)",
    )
    validate.set_defaults(func=_cmd_validate)
    return parser


def main(argv=None) -> int:
    """Console-script entry point.

    Library errors (missing/corrupt results directories, bad
    configurations) exit nonzero with a one-line message instead of a
    traceback.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError) as exc:
        # Corrupt on-disk artifacts surface as JSON/lookup errors.
        print(f"error: corrupt results data: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
