"""Lossless JSON encoding of campaign results.

The on-disk schema mirrors the in-memory objects one-to-one:

.. code-block:: text

    {
      "schema": 1,
      "sram_bits": ...,
      "sessions": {
        "session1": {
          "plan": {...},
          "fluence": {"fluence_per_cm2": ..., "exposure_seconds": ...},
          "upsets": [...],          # every UpsetEvent
          "counts": {"L3 Cache/UE": n, ...},
          "failures": [...],        # every FailureEvent
          "edac_dmesg": "...",      # the EDAC archive, as dmesg text
          "runs": [...]             # per-run compact records
        }, ...
      }
    }

Round-trip guarantee: every analysis in :mod:`repro.core.analysis`
produces identical numbers on the reloaded object (tested).
"""

from __future__ import annotations

from typing import Dict, List

from ..beam.fluence import FluenceAccount
from ..errors import AnalysisError, ReproIOError
from .atomic import atomic_write_json, read_json_or_default
from ..harness.campaign import CampaignResult
from ..harness.controller import RunOutcome
from ..harness.session import SessionPlan, SessionResult
from ..injection.events import FailureEvent, OutcomeKind, UpsetEvent
from ..injection.injector import InjectionSummary
from ..soc.dvfs import OperatingPoint
from ..soc.edac import EdacLog, EdacSeverity
from ..soc.geometry import CacheLevel

SCHEMA_VERSION = 1

_LEVELS = {level.value: level for level in CacheLevel}
_SEVERITIES = {sev.value: sev for sev in EdacSeverity}
_KINDS = {kind.value: kind for kind in OutcomeKind}


# --- encoding ------------------------------------------------------------------


def _plan_to_dict(plan: SessionPlan) -> dict:
    return {
        "label": plan.label,
        "point": {
            "label": plan.point.label,
            "freq_mhz": plan.point.freq_mhz,
            "pmd_mv": plan.point.pmd_mv,
            "soc_mv": plan.point.soc_mv,
        },
        "max_minutes": plan.max_minutes,
        "target_failures": plan.target_failures,
        "target_fluence": plan.target_fluence,
        "benchmarks": list(plan.benchmarks),
        "flux_per_cm2_s": plan.flux_per_cm2_s,
    }


def _upset_to_dict(upset: UpsetEvent) -> dict:
    return {
        "time_s": upset.time_s,
        "array": upset.array,
        "level": upset.level,
        "bits": upset.bits,
        "corrected": upset.corrected,
    }


def _failure_to_dict(failure: FailureEvent) -> dict:
    return {
        "time_s": failure.time_s,
        "benchmark": failure.benchmark,
        "kind": failure.kind.value,
        "hw_notified": failure.hw_notified,
    }


def _counts_to_dict(summary: InjectionSummary) -> Dict[str, int]:
    return {
        f"{level.value}/{severity.value}": n
        for (level, severity), n in summary.counts.items()
    }


def _run_to_dict(run: RunOutcome) -> dict:
    return {
        "benchmark": run.benchmark,
        "start_s": run.start_s,
        "duration_s": run.duration_s,
        "recovery_s": run.recovery_s,
        "counts": _counts_to_dict(run.upsets),
        "failure_count": len(run.failures),
    }


def session_to_dict(session: SessionResult) -> dict:
    """Encode one session result."""
    return {
        "plan": _plan_to_dict(session.plan),
        "fluence": {
            "fluence_per_cm2": session.fluence.fluence_per_cm2,
            "exposure_seconds": session.fluence.exposure_seconds,
        },
        "upsets": [_upset_to_dict(u) for u in session.upsets.upsets],
        "upsets_duration_s": session.upsets.duration_s,
        "counts": _counts_to_dict(session.upsets),
        "failures": [_failure_to_dict(f) for f in session.failures],
        "edac_dmesg": session.edac.to_dmesg(),
        "runs": [_run_to_dict(r) for r in session.runs],
    }


def campaign_to_dict(campaign: CampaignResult) -> dict:
    """Encode a whole campaign."""
    return {
        "schema": SCHEMA_VERSION,
        "sram_bits": campaign.sram_bits,
        "sessions": {
            label: session_to_dict(result)
            for label, result in campaign.sessions.items()
        },
    }


def campaign_dict_from_entries(entries: List[dict]) -> dict:
    """Assemble a campaign dict from per-unit payload entries.

    *entries* are the checkpoint/commit payloads the resilient journal
    and the scheduler store both carry (``key`` / ``sram_bits`` /
    ``session``), in plan order.  The session payloads are passed
    through byte-for-byte -- never decoded and re-encoded -- which is
    what keeps a resumed, broker-sharded or service-assembled
    ``campaign.json`` identical to an uninterrupted run's.
    """
    return {
        "schema": SCHEMA_VERSION,
        "sram_bits": next(
            (e["sram_bits"] for e in entries if e.get("sram_bits")), 0
        ),
        "sessions": {entry["key"]: entry["session"] for entry in entries},
    }


# --- decoding ------------------------------------------------------------------


def _plan_from_dict(data: dict) -> SessionPlan:
    point = data["point"]
    return SessionPlan(
        label=data["label"],
        point=OperatingPoint(
            label=point["label"],
            freq_mhz=point["freq_mhz"],
            pmd_mv=point["pmd_mv"],
            soc_mv=point["soc_mv"],
        ),
        max_minutes=data["max_minutes"],
        target_failures=data["target_failures"],
        target_fluence=data["target_fluence"],
        benchmarks=list(data["benchmarks"]),
        flux_per_cm2_s=data["flux_per_cm2_s"],
    )


def _counts_from_dict(data: Dict[str, int]):
    counts = {}
    for key, n in data.items():
        level_name, severity_name = key.rsplit("/", 1)
        if level_name not in _LEVELS or severity_name not in _SEVERITIES:
            raise AnalysisError(f"unknown count key {key!r}")
        counts[(_LEVELS[level_name], _SEVERITIES[severity_name])] = int(n)
    return counts


def _summary_from_dict(
    upsets: List[dict], counts: Dict[str, int], duration_s: float
) -> InjectionSummary:
    return InjectionSummary(
        upsets=[UpsetEvent(**u) for u in upsets],
        duration_s=duration_s,
        counts=_counts_from_dict(counts),
    )


def _failure_from_dict(data: dict) -> FailureEvent:
    if data["kind"] not in _KINDS:
        raise AnalysisError(f"unknown failure kind {data['kind']!r}")
    return FailureEvent(
        time_s=data["time_s"],
        benchmark=data["benchmark"],
        kind=_KINDS[data["kind"]],
        hw_notified=data["hw_notified"],
    )


def _run_from_dict(data: dict) -> RunOutcome:
    return RunOutcome(
        benchmark=data["benchmark"],
        start_s=data["start_s"],
        duration_s=data["duration_s"],
        recovery_s=data["recovery_s"],
        failures=[],  # failures are kept at session scope
        upsets=InjectionSummary(
            upsets=[],
            duration_s=data["duration_s"],
            counts=_counts_from_dict(data["counts"]),
        ),
    )


def session_from_dict(data: dict) -> SessionResult:
    """Decode one session result."""
    fluence = FluenceAccount()
    seconds = data["fluence"]["exposure_seconds"]
    if seconds > 0:
        fluence.expose(data["fluence"]["fluence_per_cm2"] / seconds, seconds)
    return SessionResult(
        plan=_plan_from_dict(data["plan"]),
        fluence=fluence,
        upsets=_summary_from_dict(
            data["upsets"], data["counts"], data["upsets_duration_s"]
        ),
        failures=[_failure_from_dict(f) for f in data["failures"]],
        edac=EdacLog.from_dmesg(data["edac_dmesg"]),
        runs=[_run_from_dict(r) for r in data["runs"]],
    )


def campaign_from_dict(data: dict) -> CampaignResult:
    """Decode a whole campaign."""
    if data.get("schema") != SCHEMA_VERSION:
        raise AnalysisError(
            f"unsupported campaign schema {data.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    result = CampaignResult(sram_bits=int(data["sram_bits"]))
    for label, session in data["sessions"].items():
        result.sessions[label] = session_from_dict(session)
    return result


# --- files -----------------------------------------------------------------------


def save_campaign(campaign: CampaignResult, path: str) -> None:
    """Write a campaign to a JSON file (atomically: temp + rename).

    A kill at any point leaves either the previous campaign.json or the
    complete new one on disk, never truncated JSON.
    """
    atomic_write_json(path, campaign_to_dict(campaign))


def load_campaign(path: str) -> CampaignResult:
    """Read a campaign back from a JSON file."""
    data = read_json_or_default(path)
    if data is None:
        raise ReproIOError(f"no campaign stored at {path!r}")
    return campaign_from_dict(data)
