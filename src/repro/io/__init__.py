"""Persistence: save and reload campaign results.

Beam time is the scarcest resource in a radiation study; the authors
analyzed their console captures long after leaving TRIUMF.  This
subpackage gives the reproduction the same workflow: serialize a
:class:`~repro.harness.campaign.CampaignResult` to JSON right after the
(simulated) campaign, then run any analysis later without re-flying it.

* :mod:`repro.io.json_store` -- lossless JSON encoding of sessions,
  events, EDAC records and fluence accounts.
* :mod:`repro.io.results_dir` -- an on-disk results directory: the
  campaign JSON plus one CSV per regenerated table/figure.
"""

from .json_store import (
    campaign_to_dict,
    campaign_from_dict,
    save_campaign,
    load_campaign,
)
from .results_dir import ResultsDirectory

__all__ = [
    "campaign_to_dict",
    "campaign_from_dict",
    "save_campaign",
    "load_campaign",
    "ResultsDirectory",
]
