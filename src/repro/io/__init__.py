"""Persistence: save and reload campaign results.

Beam time is the scarcest resource in a radiation study; the authors
analyzed their console captures long after leaving TRIUMF.  This
subpackage gives the reproduction the same workflow: serialize a
:class:`~repro.harness.campaign.CampaignResult` to JSON right after the
(simulated) campaign, then run any analysis later without re-flying it.

* :mod:`repro.io.atomic` -- crash-safe primitives: every artifact is
  written via temp-file + :func:`os.replace` (a kill mid-write leaves
  the old file, never torn JSON), with a salvage reader for the rest.
* :mod:`repro.io.json_store` -- lossless JSON encoding of sessions,
  events, EDAC records and fluence accounts.
* :mod:`repro.io.results_dir` -- an on-disk results directory: the
  campaign JSON plus one CSV per regenerated table/figure, the run
  manifest, and the resilient layer's checkpoint journal.
"""

from .atomic import (
    atomic_write_json,
    atomic_write_text,
    fsync_directory,
    read_json_or_default,
)
from .json_store import (
    campaign_to_dict,
    campaign_from_dict,
    save_campaign,
    load_campaign,
)
from .results_dir import ResultsDirectory

__all__ = [
    "atomic_write_json",
    "atomic_write_text",
    "fsync_directory",
    "read_json_or_default",
    "campaign_to_dict",
    "campaign_from_dict",
    "save_campaign",
    "load_campaign",
    "ResultsDirectory",
]
