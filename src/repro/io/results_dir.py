"""On-disk results directory: campaign JSON + one CSV per artifact.

``ResultsDirectory`` gives the reproduction the same artifact layout a
real campaign leaves behind: the raw data (``campaign.json``), the run
bookkeeping (``manifest.json``), the regenerated tables (``table2.csv``
... ``fig13.csv``), and the session logcaptures (``<label>.dmesg``).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..core.report import Table
from ..errors import AnalysisError
from ..harness.campaign import CampaignResult
from ..telemetry import RunManifest
from .atomic import atomic_write_json, atomic_write_text
from .json_store import load_campaign, save_campaign


class ResultsDirectory:
    """Manages one campaign's artifacts under a directory.

    Parameters
    ----------
    root:
        Directory path.  Created on first write.
    """

    CAMPAIGN_FILE = "campaign.json"
    MANIFEST_FILE = "manifest.json"
    JOURNAL_FILE = "journal.jsonl"
    FAILURES_FILE = "failures.json"

    def __init__(self, root: str) -> None:
        self.root = root

    def _path(self, name: str) -> str:
        return os.path.join(self.root, name)

    def _ensure_root(self) -> None:
        os.makedirs(self.root, exist_ok=True)

    # -- resilient-run artifacts -----------------------------------------------

    def journal_path(self, ensure_root: bool = False) -> str:
        """Path of the checkpoint journal (see :mod:`repro.resilient`)."""
        if ensure_root:
            self._ensure_root()
        return self._path(self.JOURNAL_FILE)

    def has_journal(self) -> bool:
        """True if a checkpoint journal exists (a run can be resumed)."""
        return os.path.exists(self._path(self.JOURNAL_FILE))

    def failures_path(self) -> str:
        """Path of the per-unit failure report of the last run."""
        return self._path(self.FAILURES_FILE)

    # -- campaign data ---------------------------------------------------------

    def save_campaign(self, campaign: CampaignResult) -> str:
        """Persist the raw campaign; returns the JSON path."""
        self._ensure_root()
        path = self._path(self.CAMPAIGN_FILE)
        save_campaign(campaign, path)
        return path

    def save_campaign_dict(self, data: dict) -> str:
        """Persist an already-encoded campaign dict; returns the JSON path.

        The resilient runner uses this to write ``campaign.json`` from
        the journal's payload bytes, avoiding a decode/re-encode round
        trip that could perturb floating-point text.
        """
        self._ensure_root()
        return atomic_write_json(self._path(self.CAMPAIGN_FILE), data)

    def load_campaign(self) -> CampaignResult:
        """Reload the raw campaign."""
        path = self._path(self.CAMPAIGN_FILE)
        if not os.path.exists(path):
            raise AnalysisError(f"no campaign stored under {self.root!r}")
        return load_campaign(path)

    def has_campaign(self) -> bool:
        """True if a campaign JSON exists."""
        return os.path.exists(self._path(self.CAMPAIGN_FILE))

    # -- run manifest ----------------------------------------------------------

    def save_manifest(self, manifest: RunManifest) -> str:
        """Persist the run manifest; returns the JSON path."""
        self._ensure_root()
        return atomic_write_text(
            self._path(self.MANIFEST_FILE), manifest.to_json()
        )

    def load_manifest(self) -> RunManifest:
        """Reload the run manifest."""
        path = self._path(self.MANIFEST_FILE)
        if not os.path.exists(path):
            raise AnalysisError(
                f"no run manifest stored under {self.root!r} "
                f"(fly one with 'repro-campaign run')"
            )
        with open(path) as handle:
            return RunManifest.from_json(handle.read())

    def has_manifest(self) -> bool:
        """True if a run manifest exists."""
        return os.path.exists(self._path(self.MANIFEST_FILE))

    # -- tables ------------------------------------------------------------------

    def save_table(self, name: str, table: Table) -> str:
        """Persist one regenerated table as CSV; returns the path."""
        self._ensure_root()
        return atomic_write_text(self._path(f"{name}.csv"), table.to_csv())

    def list_tables(self) -> List[str]:
        """Names of the stored CSV artifacts."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            f[:-4] for f in os.listdir(self.root) if f.endswith(".csv")
        )

    # -- logs ----------------------------------------------------------------------

    def save_dmesg(self, campaign: CampaignResult) -> Dict[str, str]:
        """Persist each session's EDAC archive as a .dmesg file."""
        self._ensure_root()
        paths = {}
        for label, session in campaign.sessions.items():
            paths[label] = atomic_write_text(
                self._path(f"{label}.dmesg"), session.edac.to_dmesg()
            )
        return paths

    def export_all(
        self,
        campaign: CampaignResult,
        tables: Optional[Dict[str, Table]] = None,
    ) -> List[str]:
        """One-call export: campaign JSON + dmesg logs + given tables."""
        written = [self.save_campaign(campaign)]
        written.extend(self.save_dmesg(campaign).values())
        for name, table in (tables or {}).items():
            written.append(self.save_table(name, table))
        return written
