"""Crash-safe file primitives: atomic write-rename and salvage reads.

A beam campaign's artifacts are written while the harness itself is the
thing under test -- workers die, runs get SIGTERMed, disks fill.  Every
artifact in :mod:`repro.io` therefore goes to disk through
:func:`atomic_write_text`: the bytes land in a temporary file in the
*same directory*, are flushed and fsynced, and only then renamed over
the destination with :func:`os.replace`.  A reader can observe the old
file or the new file, never a torn half-write.

:func:`read_json_or_default` is the matching salvage reader: a missing
file yields the caller's default, and a corrupt one raises a clear
:class:`~repro.errors.ReproIOError` (or, with ``salvage=True``, also
yields the default) instead of a bare ``JSONDecodeError`` deep inside
the analysis stack.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Optional

from ..errors import ReproIOError


def fsync_directory(path: str) -> None:
    """Fsync a directory so a just-renamed entry survives power loss.

    Best-effort: platforms without directory fsync (or exotic
    filesystems) are silently tolerated -- the rename itself is still
    atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, fsync: bool = True) -> str:
    """Write *text* to *path* via temp-file + :func:`os.replace`.

    A crash at any instant leaves either the previous file content or
    the new one -- never a truncated mix.  Returns *path*.

    Parameters
    ----------
    path:
        Destination file.
    text:
        Full new content.
    fsync:
        When True (default) the temp file is fsynced before the rename
        and the directory after it, so the write survives power loss,
        not just process death.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        # Never leave tmp litter next to the artifacts.
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    if fsync:
        fsync_directory(directory)
    return path


def atomic_write_json(path: str, payload: Any, fsync: bool = True) -> str:
    """Serialize *payload* as JSON and write it atomically; returns *path*.

    Uses :func:`json.dumps` defaults so the bytes are identical to a
    plain ``json.dump`` of the same object -- byte-level determinism
    checks compare these files directly.
    """
    return atomic_write_text(path, json.dumps(payload), fsync=fsync)


def read_json_or_default(
    path: str,
    default: Any = None,
    *,
    salvage: bool = False,
) -> Optional[Any]:
    """Read a JSON file, tolerating absence (and optionally corruption).

    Parameters
    ----------
    path:
        File to read.
    default:
        Returned when the file does not exist (or is corrupt and
        ``salvage`` is set).
    salvage:
        When True, a torn/corrupt file also yields *default* instead of
        raising -- the caller has decided the artifact is replaceable.

    Raises
    ------
    ReproIOError
        When the file exists but holds corrupt JSON (and ``salvage`` is
        False), or cannot be read at all.
    """
    try:
        with open(path) as handle:
            text = handle.read()
    except FileNotFoundError:
        return default
    except OSError as exc:
        raise ReproIOError(f"cannot read {path!r}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        if salvage:
            return default
        raise ReproIOError(
            f"corrupt JSON in {path!r} (torn write?): {exc}; "
            f"delete the file or pass salvage=True to discard it"
        ) from exc
