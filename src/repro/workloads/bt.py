"""BT: block-tridiagonal solver (extension benchmark).

NPB BT solves the 3-D compressible Navier-Stokes equations with an
approximate factorization whose core kernel is a *block-tridiagonal*
solve with 5x5 blocks along every grid line of each dimension.  The
paper's campaign used six of the eight NPB programs; BT and SP are
provided as extensions so the workload substrate covers the full suite.

This kernel keeps the computational heart: for every line of a 3-D
grid, assemble a diagonally dominant block-tridiagonal system (5x5
blocks from a seeded generator) and solve it with the block Thomas
algorithm.  Verification is the vector of per-dimension solution
checksums plus the final residual norm -- any corrupted block or RHS
entry propagates into them.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult

#: NPB BT's block size (the five conservation variables).
BLOCK = 5


class BtWorkload(Workload):
    """NPB-BT-style block-tridiagonal benchmark."""

    name = "BT"

    #: Grid edge at scale=1.0 (lines of this length in each dimension).
    BASE_EDGE = 12
    #: Lines solved per dimension at scale=1.0.
    BASE_LINES = 16

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_EDGE * self.scale), 4)
        lines = max(int(self.BASE_LINES * self.scale), 2)
        # Off-diagonal blocks A (sub) and C (super), diagonal B per cell,
        # for `lines` independent systems per dimension, 3 dimensions.
        shape = (3, lines, n, BLOCK, BLOCK)
        sub = rng.uniform(-0.2, 0.2, size=shape)
        sup = rng.uniform(-0.2, 0.2, size=shape)
        diag = rng.uniform(-0.2, 0.2, size=shape)
        # Diagonal dominance: B += (|A|+|C|+margin) I.
        eye = np.eye(BLOCK)
        dominance = (
            np.abs(sub).sum(axis=-1, keepdims=True).max(axis=-2, keepdims=True)
            + np.abs(sup).sum(axis=-1, keepdims=True).max(axis=-2, keepdims=True)
            + 1.0
        )
        diag = diag + dominance * eye
        rhs = rng.uniform(-1.0, 1.0, size=(3, lines, n, BLOCK))
        return {"sub": sub, "sup": sup, "diag": diag, "rhs": rhs}

    @staticmethod
    def _solve_line(
        sub: np.ndarray, diag: np.ndarray, sup: np.ndarray, rhs: np.ndarray
    ) -> np.ndarray:
        """Block Thomas algorithm for one line."""
        n = diag.shape[0]
        c_prime = np.empty_like(sup)
        d_prime = np.empty_like(rhs)
        pivot = np.linalg.inv(diag[0])
        c_prime[0] = pivot @ sup[0]
        d_prime[0] = pivot @ rhs[0]
        for i in range(1, n):
            denom = diag[i] - sub[i] @ c_prime[i - 1]
            pivot = np.linalg.inv(denom)
            c_prime[i] = pivot @ sup[i]
            d_prime[i] = pivot @ (rhs[i] - sub[i] @ d_prime[i - 1])
        x = np.empty_like(rhs)
        x[n - 1] = d_prime[n - 1]
        for i in range(n - 2, -1, -1):
            x[i] = d_prime[i] - c_prime[i] @ x[i + 1]
        return x

    @classmethod
    def _residual_norm(cls, sub, diag, sup, rhs, x) -> float:
        n = diag.shape[0]
        residual = 0.0
        for i in range(n):
            r = rhs[i] - diag[i] @ x[i]
            if i > 0:
                r = r - sub[i] @ x[i - 1]
            if i < n - 1:
                r = r - sup[i] @ x[i + 1]
            residual += float(r @ r)
        return residual ** 0.5

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        sub, sup, diag, rhs = (
            state["sub"], state["sup"], state["diag"], state["rhs"],
        )
        dims, lines, n = rhs.shape[0], rhs.shape[1], rhs.shape[2]
        checksums = []
        worst_residual = 0.0
        for dim in range(dims):
            dim_sum = 0.0
            for line in range(lines):
                x = self._solve_line(
                    sub[dim, line], diag[dim, line], sup[dim, line],
                    rhs[dim, line],
                )
                dim_sum += float(x.sum())
                worst_residual = max(
                    worst_residual,
                    self._residual_norm(
                        sub[dim, line], diag[dim, line], sup[dim, line],
                        rhs[dim, line], x,
                    ),
                )
            checksums.append(dim_sum)
        verification = np.array(checksums + [worst_residual])
        return WorkloadResult(
            name=self.name, verification=verification, iterations=dims * lines
        )
