"""NAS-Parallel-Benchmark-style workloads (class A scaled for simulation).

Six real kernels mirror the six NPB programs the paper runs (Section
3.3): CG (conjugate gradient), EP (embarrassingly parallel), FT (3-D FFT
PDE), IS (integer sort), LU (regular-sparse lower-upper solve), and MG
(multigrid).  Every kernel produces a deterministic verification value;
silent data corruptions are detected exactly as in the beam campaign --
by comparing the output against a fault-free golden reference.

:mod:`repro.workloads.profiles` carries the per-benchmark calibration
data (cache occupancy, detection efficiency, activity) that couples the
kernels to the injection model.
"""

from .base import Workload, WorkloadResult
from .bt import BtWorkload
from .cg import CgWorkload
from .ep import EpWorkload
from .ft import FtWorkload
from .is_ import IsWorkload
from .lu import LuWorkload
from .mg import MgWorkload
from .sp import SpWorkload
from .profiles import WorkloadProfile, PROFILES, benchmark_rate_share
from .suite import (
    EXTENDED_SUITE_NAMES,
    SUITE_NAMES,
    make_extended_suite,
    make_suite,
    make_workload,
)

__all__ = [
    "Workload",
    "WorkloadResult",
    "BtWorkload",
    "CgWorkload",
    "EpWorkload",
    "FtWorkload",
    "IsWorkload",
    "LuWorkload",
    "MgWorkload",
    "SpWorkload",
    "WorkloadProfile",
    "PROFILES",
    "benchmark_rate_share",
    "EXTENDED_SUITE_NAMES",
    "SUITE_NAMES",
    "make_extended_suite",
    "make_suite",
    "make_workload",
]
