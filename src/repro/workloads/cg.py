"""CG: conjugate-gradient estimation of a sparse eigenvalue.

Follows the structure of NPB CG: build a random sparse symmetric
positive-definite matrix, then run outer inverse-power iterations, each
solving ``A z = x`` with the conjugate-gradient method and updating the
eigenvalue estimate ``zeta = lambda + 1 / (x . z)``.  The verification
value is the final zeta together with the final residual norm.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult


class CgWorkload(Workload):
    """NPB-CG-style conjugate-gradient benchmark."""

    name = "CG"

    #: Base problem size at scale=1.0 (matrix order).
    BASE_N = 700
    #: Nonzeros per row of the sparse matrix.
    NONZEROS_PER_ROW = 12
    #: Outer (inverse power) iterations.
    OUTER_ITERS = 4
    #: Inner CG iterations per outer step.
    INNER_ITERS = 25
    #: The NPB-style diagonal shift.
    LAMBDA_SHIFT = 20.0

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_N * self.scale), 16)
        k = min(self.NONZEROS_PER_ROW, n)
        # Random sparse symmetric matrix, stored dense-banded as
        # (indices, values) per row, plus a dominant diagonal for SPD.
        cols = np.empty((n, k), dtype=np.int64)
        vals = np.empty((n, k), dtype=np.float64)
        for i in range(n):
            cols[i] = rng.choice(n, size=k, replace=False)
            vals[i] = rng.uniform(-1.0, 1.0, size=k)
        diag = np.full(n, float(k) + self.LAMBDA_SHIFT)
        x = np.ones(n, dtype=np.float64)
        return {"cols": cols, "vals": vals, "diag": diag, "x": x}

    @staticmethod
    def _matvec(
        cols: np.ndarray, vals: np.ndarray, diag: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """y = (S + S^T)/2-symmetrized sparse matvec plus diagonal."""
        y = (vals * v[cols]).sum(axis=1)
        # Symmetrize by scattering the transpose contribution.
        yt = np.zeros_like(v)
        np.add.at(yt, cols.ravel(), (vals * v[:, None]).ravel())
        return 0.5 * (y + yt) + diag * v

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        cols, vals, diag = state["cols"], state["vals"], state["diag"]
        x = state["x"].copy()
        zeta = 0.0
        final_rnorm = 0.0
        for _ in range(self.OUTER_ITERS):
            # CG solve of A z = x.
            z = np.zeros_like(x)
            r = x.copy()
            p = r.copy()
            rho = float(r @ r)
            for _ in range(self.INNER_ITERS):
                q = self._matvec(cols, vals, diag, p)
                alpha = rho / float(p @ q)
                z += alpha * p
                r -= alpha * q
                rho_new = float(r @ r)
                beta = rho_new / rho
                rho = rho_new
                p = r + beta * p
            final_rnorm = float(np.sqrt(rho))
            denom = float(x @ z)
            zeta = self.LAMBDA_SHIFT + 1.0 / denom
            x = z / np.linalg.norm(z)
        verification = np.array([zeta, final_rnorm, float(x @ x)])
        return WorkloadResult(
            name=self.name,
            verification=verification,
            iterations=self.OUTER_ITERS * self.INNER_ITERS,
        )
