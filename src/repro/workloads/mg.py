"""MG: multigrid V-cycle Poisson solver.

NPB MG applies V-cycles of a simple multigrid scheme (smooth, restrict,
recurse, prolongate, correct) to a 3-D Poisson problem with a point
source.  This kernel implements a genuine 3-D V-cycle with weighted
Jacobi smoothing, full-weighting restriction and trilinear
prolongation; the verification value is the L2 norm of the residual
after each V-cycle (the quantity NPB MG itself verifies).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult


class MgWorkload(Workload):
    """NPB-MG-style multigrid benchmark."""

    name = "MG"

    #: Grid edge at scale=1.0 (must coarsen a few levels; power of two).
    BASE_EDGE = 32
    #: V-cycles to run (class A uses 4 iterations).
    CYCLES = 4
    #: Pre/post smoothing steps.
    SMOOTH_STEPS = 2
    #: Weighted-Jacobi damping.
    JACOBI_WEIGHT = 2.0 / 3.0

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        edge = max(int(self.BASE_EDGE * self.scale), 8)
        # Round down to a power of two for clean coarsening.
        edge = 1 << max(int(np.log2(edge)), 3)
        rhs = np.zeros((edge, edge, edge))
        # NPB MG charges the grid with +1/-1 at pseudo-random points.
        points = rng.integers(0, edge, size=(20, 3))
        for i, (x, y, z) in enumerate(points):
            rhs[x, y, z] = 1.0 if i % 2 == 0 else -1.0
        u = np.zeros_like(rhs)
        return {"rhs": rhs, "u": u}

    # -- multigrid components ----------------------------------------------------

    @staticmethod
    def _apply_a(u: np.ndarray) -> np.ndarray:
        """7-point 3-D Laplacian with Dirichlet boundaries, A = 6I - N."""
        out = 6.0 * u
        for axis in range(3):
            out -= np.roll(u, 1, axis=axis) * _interior_mask(u.shape, axis, 1)
            out -= np.roll(u, -1, axis=axis) * _interior_mask(
                u.shape, axis, -1
            )
        return out

    def _smooth(self, u: np.ndarray, rhs: np.ndarray, steps: int) -> np.ndarray:
        for _ in range(steps):
            residual = rhs - self._apply_a(u)
            u = u + self.JACOBI_WEIGHT * residual / 6.0
        return u

    @staticmethod
    def _restrict(fine: np.ndarray) -> np.ndarray:
        """Full-weighting restriction by 2x2x2 cell averaging."""
        e = fine.shape[0] // 2
        return fine.reshape(e, 2, e, 2, e, 2).mean(axis=(1, 3, 5))

    @staticmethod
    def _prolongate(coarse: np.ndarray) -> np.ndarray:
        """Piecewise-constant prolongation (adjoint of restriction)."""
        return np.repeat(
            np.repeat(np.repeat(coarse, 2, axis=0), 2, axis=1), 2, axis=2
        )

    def _v_cycle(self, u: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        if u.shape[0] <= 4:
            return self._smooth(u, rhs, 20)
        u = self._smooth(u, rhs, self.SMOOTH_STEPS)
        residual = rhs - self._apply_a(u)
        coarse_rhs = self._restrict(residual)
        coarse_u = np.zeros_like(coarse_rhs)
        coarse_u = self._v_cycle(coarse_u, coarse_rhs)
        u = u + self._prolongate(coarse_u)
        return self._smooth(u, rhs, self.SMOOTH_STEPS)

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        rhs = state["rhs"]
        u = state["u"].copy()
        norms = []
        for _ in range(self.CYCLES):
            u = self._v_cycle(u, rhs)
            residual = rhs - self._apply_a(u)
            norms.append(float(np.linalg.norm(residual)))
        verification = np.array(norms + [float(u.sum())])
        return WorkloadResult(
            name=self.name, verification=verification, iterations=self.CYCLES
        )


def _interior_mask(shape, axis: int, direction: int) -> np.ndarray:
    """Mask zeroing the wrap-around plane that np.roll would introduce."""
    mask = np.ones(shape)
    index = [slice(None)] * len(shape)
    index[axis] = 0 if direction == 1 else -1
    mask[tuple(index)] = 0.0
    return mask
