"""IS: integer bucket-sort ranking.

NPB IS generates keys with a Gaussian-ish distribution (sum of four
uniforms), computes each key's rank with a counting sort, and verifies
that ranking by checking partial ranks at pseudo-randomly chosen
verification keys plus a full monotonicity test.  The verification
value is the ranks of the canonical probe keys and a checksum of the
rank array.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult


class IsWorkload(Workload):
    """NPB-IS-style counting-sort benchmark."""

    name = "IS"

    #: Keys at scale=1.0.
    BASE_KEYS = 1 << 17
    #: Key range (class-A IS uses 2^19 buckets at 2^23 keys; scaled).
    BASE_RANGE = 1 << 14
    #: Ranking repetitions (NPB runs 10 ranking iterations).
    ITERATIONS = 10
    #: Number of probe keys verified per iteration.
    PROBES = 5

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_KEYS * self.scale), 1024)
        key_range = max(int(self.BASE_RANGE * self.scale), 64)
        # Sum of four uniforms: the NPB key distribution shape.
        keys = (
            rng.random((4, n)).sum(axis=0) / 4.0 * key_range
        ).astype(np.int64)
        probes = rng.integers(0, n, size=self.PROBES)
        return {
            "keys": keys,
            "probes": probes,
            "key_range": np.array([key_range]),
        }

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        keys = state["keys"]
        probes = state["probes"]
        key_range = int(state["key_range"][0])
        ranks = np.zeros_like(keys)
        probe_ranks = []
        for it in range(self.ITERATIONS):
            # NPB perturbs two keys per iteration before re-ranking.
            work = keys.copy()
            work[it % len(work)] = it
            work[(it * 31) % len(work)] = key_range - it - 1
            counts = np.bincount(
                np.clip(work, 0, key_range - 1), minlength=key_range
            )
            cumulative = np.cumsum(counts)
            ranks = cumulative[np.clip(work, 0, key_range - 1)] - 1
            probe_ranks.extend(int(ranks[p]) for p in probes)
        checksum = float(ranks.astype(np.float64).sum())
        verification = np.array(probe_ranks + [checksum], dtype=np.float64)
        return WorkloadResult(
            name=self.name,
            verification=verification,
            iterations=self.ITERATIONS,
        )
