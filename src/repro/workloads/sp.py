"""SP: scalar pentadiagonal solver (extension benchmark).

NPB SP factorizes the same equations as BT into *scalar pentadiagonal*
systems along each dimension.  The kernel here assembles diagonally
dominant pentadiagonal systems over the lines of a 3-D grid and solves
them with banded Gaussian elimination (``scipy.linalg.solve_banded``),
which is exactly the reference algorithm's computational pattern.
Verification: per-dimension solution checksums plus the worst residual.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
from scipy.linalg import solve_banded

from .base import Workload, WorkloadResult


class SpWorkload(Workload):
    """NPB-SP-style scalar pentadiagonal benchmark."""

    name = "SP"

    #: Line length at scale=1.0.
    BASE_EDGE = 64
    #: Lines per dimension at scale=1.0.
    BASE_LINES = 48

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_EDGE * self.scale), 8)
        lines = max(int(self.BASE_LINES * self.scale), 2)
        # Five bands per system: ab[band, row] layout per line.
        bands = rng.uniform(-0.2, 0.2, size=(3, lines, 5, n))
        # Diagonal dominance on the center band.
        off_mass = np.abs(bands).sum(axis=2) - np.abs(bands[:, :, 2, :])
        bands[:, :, 2, :] = off_mass + 1.0
        rhs = rng.uniform(-1.0, 1.0, size=(3, lines, n))
        return {"bands": bands, "rhs": rhs}

    @staticmethod
    def _residual_norm(ab: np.ndarray, rhs: np.ndarray, x: np.ndarray) -> float:
        n = rhs.shape[0]
        full = np.zeros((n, n))
        for offset, band in zip((2, 1, 0, -1, -2), ab):
            for i in range(n):
                j = i - offset
                if 0 <= j < n:
                    full[j, i] = band[i]
        return float(np.linalg.norm(rhs - full @ x))

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        bands, rhs = state["bands"], state["rhs"]
        dims, lines = rhs.shape[0], rhs.shape[1]
        checksums = []
        worst_residual = 0.0
        for dim in range(dims):
            dim_sum = 0.0
            for line in range(lines):
                ab = bands[dim, line]
                x = solve_banded((2, 2), ab, rhs[dim, line])
                dim_sum += float(x.sum())
                worst_residual = max(
                    worst_residual,
                    self._residual_norm(ab, rhs[dim, line], x),
                )
            checksums.append(dim_sum)
        verification = np.array(checksums + [worst_residual])
        return WorkloadResult(
            name=self.name, verification=verification, iterations=dims * lines
        )
