"""Suite registry: the study's six benchmarks, plus NPB extensions."""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import WorkloadError
from .base import Workload
from .bt import BtWorkload
from .cg import CgWorkload
from .ep import EpWorkload
from .ft import FtWorkload
from .is_ import IsWorkload
from .lu import LuWorkload
from .mg import MgWorkload
from .sp import SpWorkload

#: The six NPB programs used in the paper, in Fig. 5's order.
SUITE_NAMES: List[str] = ["CG", "LU", "FT", "EP", "MG", "IS"]

#: The full NPB set this library implements: the paper's six plus the
#: BT/SP extensions (no beam data exists for those two; they carry no
#: Fig. 5 calibration and exist for fault-injection / workload studies).
EXTENDED_SUITE_NAMES: List[str] = SUITE_NAMES + ["BT", "SP"]

_CLASSES: Dict[str, Type[Workload]] = {
    "BT": BtWorkload,
    "CG": CgWorkload,
    "EP": EpWorkload,
    "FT": FtWorkload,
    "IS": IsWorkload,
    "LU": LuWorkload,
    "MG": MgWorkload,
    "SP": SpWorkload,
}


def make_workload(name: str, scale: float = 1.0, seed: int = 1234) -> Workload:
    """Instantiate one benchmark by name (paper suite or extension)."""
    if name not in _CLASSES:
        raise WorkloadError(
            f"unknown benchmark {name!r}; expected one of {EXTENDED_SUITE_NAMES}"
        )
    return _CLASSES[name](scale=scale, seed=seed)


def make_suite(scale: float = 1.0, seed: int = 1234) -> Dict[str, Workload]:
    """Instantiate the paper's six-benchmark suite."""
    return {name: make_workload(name, scale, seed) for name in SUITE_NAMES}


def make_extended_suite(
    scale: float = 1.0, seed: int = 1234
) -> Dict[str, Workload]:
    """Instantiate all eight NPB-style kernels."""
    return {
        name: make_workload(name, scale, seed)
        for name in EXTENDED_SUITE_NAMES
    }
