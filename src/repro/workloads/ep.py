"""EP: embarrassingly parallel Gaussian-pair generation.

NPB EP generates uniform pseudorandom pairs, applies the Marsaglia
polar method to produce Gaussian deviates, and tallies the pairs into
ten square annuli by max(|X|, |Y|).  The verification value is the
(sum X, sum Y) totals plus the annulus counts -- any bit flip in the
accumulation arrays shows up directly.

The linear congruential generator is NPB's a = 5^13, m = 2^46 scheme,
implemented exactly so the stream (and thus the golden values) matches
a textbook EP port.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult

_A = 5 ** 13
_MASK = (1 << 46) - 1
_SCALE = 1.0 / (1 << 46)


def lcg_stream(seed: int, count: int) -> np.ndarray:
    """NPB's 46-bit LCG: x_{k+1} = a * x_k mod 2^46, as floats in (0,1).

    Vectorized by jumping the generator in blocks (Python ints carry the
    exact 46-bit arithmetic; numpy holds the output floats).
    """
    out = np.empty(count, dtype=np.float64)
    x = seed & _MASK
    for i in range(count):
        x = (_A * x) & _MASK
        out[i] = x * _SCALE
    return out


class EpWorkload(Workload):
    """NPB-EP-style Marsaglia-pair benchmark."""

    name = "EP"

    #: Pairs generated at scale=1.0.
    BASE_PAIRS = 60_000
    #: NPB seed for the LCG (271828183 in the reference code).
    LCG_SEED = 271828183

    def _build_state(self) -> Dict[str, np.ndarray]:
        n = max(int(self.BASE_PAIRS * self.scale), 256)
        rng = self._rng()
        # Chunked LCG emulation: exact LCG for a prefix (fidelity),
        # then a numpy PCG stream for bulk (speed).  The split point is
        # deterministic, so outputs stay reproducible.
        exact = min(n, 2048)
        u_exact = lcg_stream(self.LCG_SEED + self.seed, 2 * exact)
        u_bulk = rng.random(2 * (n - exact))
        uniforms = np.concatenate([u_exact, u_bulk])
        return {"uniforms": uniforms}

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        u = state["uniforms"]
        x = 2.0 * u[0::2] - 1.0
        y = 2.0 * u[1::2] - 1.0
        t = x * x + y * y
        accept = (t <= 1.0) & (t > 0.0)
        xa, ya, ta = x[accept], y[accept], t[accept]
        factor = np.sqrt(-2.0 * np.log(ta) / ta)
        gx = xa * factor
        gy = ya * factor
        sx = float(gx.sum())
        sy = float(gy.sum())
        annulus = np.maximum(np.abs(gx), np.abs(gy)).astype(np.int64)
        counts = np.bincount(np.clip(annulus, 0, 9), minlength=10)
        verification = np.concatenate([[sx, sy], counts.astype(np.float64)])
        return WorkloadResult(
            name=self.name,
            verification=verification,
            iterations=len(u) // 2,
        )
