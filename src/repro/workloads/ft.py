"""FT: 3-D FFT solution of a partial differential equation.

NPB FT solves d u(x,t)/dt = alpha * nabla^2 u(x,t) spectrally: forward
3-D FFT of the initial state, multiplication by the evolution factor
exp(-4 alpha pi^2 |k|^2 t) per time step, inverse FFT, and a checksum
over a strided subset of the result.  The verification value is the
sequence of per-step checksums (real and imaginary parts).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult


class FtWorkload(Workload):
    """NPB-FT-style spectral PDE benchmark."""

    name = "FT"

    #: Grid edge at scale=1.0 (the kernel uses an n^3 grid).
    BASE_EDGE = 32
    #: Time steps (NPB class A uses 6).
    STEPS = 6
    #: Diffusion coefficient.  Chosen so the high-wavenumber modes decay
    #: visibly within the 6 steps even on the smallest test grids (the
    #: per-step checksums must evolve for golden comparison to bite).
    ALPHA = 5.0e-4

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_EDGE * self.scale), 8)
        u0 = rng.random((n, n, n)) + 1j * rng.random((n, n, n))
        # Wavenumber magnitudes on the FFT grid.
        k = np.fft.fftfreq(n) * n
        k2 = (
            k[:, None, None] ** 2
            + k[None, :, None] ** 2
            + k[None, None, :] ** 2
        )
        return {"u0": u0, "k2": k2}

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        u0, k2 = state["u0"], state["k2"]
        n = u0.shape[0]
        spectrum = np.fft.fftn(u0)
        decay = np.exp(-4.0 * self.ALPHA * np.pi ** 2 * k2)
        checksums = []
        evolved = spectrum
        for _ in range(self.STEPS):
            evolved = evolved * decay
            grid = np.fft.ifftn(evolved)
            # NPB-style strided checksum.  The probe set must be a strict
            # subset of the grid: a full uniform cover sums to the DC
            # mode alone (which never decays) and the checksum would be
            # constant across steps.
            count = min(1024, max(n ** 3 // 2, 8))
            idx = (np.arange(count) * 17) % (n ** 3)
            flat = grid.reshape(-1)[idx]
            checksums.append(complex(flat.sum()))
        verification = np.array(
            [part for c in checksums for part in (c.real, c.imag)]
        )
        return WorkloadResult(
            name=self.name, verification=verification, iterations=self.STEPS
        )
