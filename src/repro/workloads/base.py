"""Workload interface and golden-reference machinery.

A workload is a deterministic computation with

* an input state built from a seed (so every run of the same class is
  bit-identical),
* a set of *live data arrays* that the direct fault injector may flip
  bits in (:mod:`repro.injection.direct`),
* a verification value, and
* a golden reference computed in fault-free conditions, exactly like
  the pre-computed expected outputs the Control-PC compared against
  (Section 3.6).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..errors import WorkloadError


@dataclass(frozen=True)
class WorkloadResult:
    """Outcome of one workload execution.

    Attributes
    ----------
    name:
        Workload name ("CG", "EP", ...).
    verification:
        The kernel's numeric verification vector.
    iterations:
        Number of main-loop iterations executed.
    """

    name: str
    verification: np.ndarray
    iterations: int

    def matches(self, other: "WorkloadResult", rtol: float = 1e-10) -> bool:
        """Golden comparison: do two runs agree within *rtol*?"""
        if self.name != other.name:
            return False
        if self.verification.shape != other.verification.shape:
            return False
        return bool(
            np.allclose(
                self.verification, other.verification, rtol=rtol, atol=0.0
            )
        )


class Workload(abc.ABC):
    """Base class for the six NPB-style kernels.

    Subclasses implement :meth:`_build_state` and :meth:`_compute`;
    the base class provides golden-reference computation and caching.

    Parameters
    ----------
    scale:
        Linear problem-size scale (1.0 = the library's "class A"
        stand-in sizing; tests use smaller scales for speed).
    seed:
        Input-generation seed.  Fixed per experiment so reruns are
        bit-identical.
    """

    #: Workload name, e.g. "CG".  Set by subclasses.
    name: str = "?"

    def __init__(self, scale: float = 1.0, seed: int = 1234) -> None:
        if scale <= 0:
            raise WorkloadError("scale must be positive")
        self.scale = float(scale)
        self.seed = int(seed)
        self._golden: WorkloadResult = None

    # -- subclass interface -----------------------------------------------------

    @abc.abstractmethod
    def _build_state(self) -> Dict[str, np.ndarray]:
        """Construct the kernel's input/working arrays from the seed."""

    @abc.abstractmethod
    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        """Run the kernel over *state* and return its verification."""

    # -- public API ----------------------------------------------------------------

    def build_state(self) -> Dict[str, np.ndarray]:
        """Fresh input state for one execution."""
        return self._build_state()

    def run(self, state: Dict[str, np.ndarray] = None) -> WorkloadResult:
        """Execute the kernel (building fresh state unless provided)."""
        if state is None:
            state = self._build_state()
        return self._compute(state)

    def golden(self) -> WorkloadResult:
        """The fault-free reference output (computed once, cached)."""
        if self._golden is None:
            self._golden = self.run()
            if not np.all(np.isfinite(self._golden.verification)):
                raise WorkloadError(
                    f"{self.name}: golden verification is not finite"
                )
        return self._golden

    def verify(self, result: WorkloadResult, rtol: float = 1e-10) -> bool:
        """Does *result* match the golden reference?"""
        return self.golden().matches(result, rtol=rtol)

    def data_arrays(self, state: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """The live float/int arrays a fault injector may corrupt."""
        return [a for a in state.values() if isinstance(a, np.ndarray)]

    def footprint_bytes(self, state: Dict[str, np.ndarray] = None) -> int:
        """Total bytes of live data (the kernel's resident footprint)."""
        if state is None:
            state = self._build_state()
        return int(sum(a.nbytes for a in self.data_arrays(state)))

    def _rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scale={self.scale}, seed={self.seed})"
