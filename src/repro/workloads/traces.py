"""Synthetic benchmark address traces.

Generates byte-address streams with each NPB kernel's memory
personality -- working-set size, streaming-vs-reuse mix, and locality
-- so the cache simulator (:mod:`repro.soc.cache_sim`) can *measure*
the occupancy/recurrence numbers the calibration profiles assert.

Three access archetypes compose every trace:

* **sequential streams** (FT's transposes, IS's counting arrays):
  unit-stride walks over large buffers;
* **reuse sets** (CG's vectors, LU's wavefront): random draws from a
  hot region small enough to cache;
* **random scatter** (CG's sparse gathers, IS's bucket writes):
  uniform references over the full working set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError

#: Memory personalities: working set (bytes) and the three-way access
#: mix (stream, reuse, scatter) per benchmark.  Working sets follow the
#: class-A footprints scaled to the simulated 8-core machine.
TRACE_PERSONALITIES = {
    "CG": {"working_set": 6 * 1024 * 1024, "mix": (0.15, 0.45, 0.40)},
    "EP": {"working_set": 512 * 1024, "mix": (0.60, 0.35, 0.05)},
    "FT": {"working_set": 12 * 1024 * 1024, "mix": (0.70, 0.20, 0.10)},
    "IS": {"working_set": 9 * 1024 * 1024, "mix": (0.45, 0.15, 0.40)},
    "LU": {"working_set": 8 * 1024 * 1024, "mix": (0.40, 0.45, 0.15)},
    "MG": {"working_set": 10 * 1024 * 1024, "mix": (0.55, 0.30, 0.15)},
}


@dataclass(frozen=True)
class TraceGenerator:
    """Builds an address trace for one benchmark personality.

    Attributes
    ----------
    benchmark:
        One of the six studied kernels.
    accesses:
        Trace length.
    hot_fraction:
        Size of the reuse set relative to the working set.
    """

    benchmark: str
    accesses: int = 60_000
    hot_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.benchmark not in TRACE_PERSONALITIES:
            raise WorkloadError(
                f"no trace personality for {self.benchmark!r}"
            )
        if self.accesses <= 0:
            raise WorkloadError("trace length must be positive")
        if not 0 < self.hot_fraction <= 1:
            raise WorkloadError("hot fraction must be in (0, 1]")

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        """One byte-address trace with the benchmark's mix."""
        personality = TRACE_PERSONALITIES[self.benchmark]
        working_set = personality["working_set"]
        stream_w, reuse_w, scatter_w = personality["mix"]
        kinds = rng.choice(
            3, size=self.accesses, p=[stream_w, reuse_w, scatter_w]
        )
        addresses = np.empty(self.accesses, dtype=np.int64)

        # Sequential component: a unit-stride cursor over the buffer.
        cursor = int(rng.integers(0, working_set))
        hot_size = max(int(working_set * self.hot_fraction), 4096)
        hot_base = int(rng.integers(0, max(working_set - hot_size, 1)))

        stride = 8  # doubles
        for i, kind in enumerate(kinds):
            if kind == 0:
                cursor = (cursor + stride) % working_set
                addresses[i] = cursor
            elif kind == 1:
                addresses[i] = hot_base + int(rng.integers(0, hot_size))
            else:
                addresses[i] = int(rng.integers(0, working_set))
        return addresses


def measure_personality(
    benchmark: str,
    rng: np.random.Generator,
    accesses: int = 60_000,
):
    """Replay a benchmark trace through the X-Gene 2 hierarchy.

    Returns the :class:`~repro.soc.cache_sim.HierarchyReport` with the
    measured per-level occupancy, reuse probability and hit rate.
    """
    from ..soc.cache_sim import CacheHierarchy

    trace = TraceGenerator(benchmark, accesses=accesses).generate(rng)
    hierarchy = CacheHierarchy()
    return hierarchy.replay(trace)
