"""LU: regular-sparse block-triangular solve (SSOR).

NPB LU applies a symmetric successive over-relaxation (SSOR) sweep to
the discretized Navier-Stokes equations.  This kernel captures the
computational skeleton: a pentadiagonal (5-point Laplacian) system on a
2-D grid, factorized approximately and iterated with SSOR sweeps; the
verification value is the residual-norm history, which NPB itself uses
for verification.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .base import Workload, WorkloadResult


class LuWorkload(Workload):
    """NPB-LU-style SSOR sweep benchmark."""

    name = "LU"

    #: Grid edge at scale=1.0 (grid is edge x edge).
    BASE_EDGE = 64
    #: SSOR iterations.
    SWEEPS = 12
    #: Over-relaxation factor (NPB uses omega = 1.2).
    OMEGA = 1.2

    def _build_state(self) -> Dict[str, np.ndarray]:
        rng = self._rng()
        n = max(int(self.BASE_EDGE * self.scale), 8)
        rhs = rng.random((n, n))
        u = np.zeros((n, n))
        return {"rhs": rhs, "u": u}

    @staticmethod
    def _laplacian_apply(u: np.ndarray) -> np.ndarray:
        """5-point Laplacian with Dirichlet boundaries, A = 4I - N."""
        out = 4.0 * u
        out[1:, :] -= u[:-1, :]
        out[:-1, :] -= u[1:, :]
        out[:, 1:] -= u[:, :-1]
        out[:, :-1] -= u[:, 1:]
        return out

    def _compute(self, state: Dict[str, np.ndarray]) -> WorkloadResult:
        rhs = state["rhs"]
        u = state["u"].copy()
        omega = self.OMEGA
        residual_norms = []
        for _ in range(self.SWEEPS):
            # Red-black SSOR: vectorizable and convergent for the
            # diagonally dominant 5-point operator.
            for parity in (0, 1):
                residual = rhs - self._laplacian_apply(u)
                mask = np.indices(u.shape).sum(axis=0) % 2 == parity
                u[mask] += omega * residual[mask] / 4.0
            r = rhs - self._laplacian_apply(u)
            residual_norms.append(float(np.linalg.norm(r)))
        verification = np.array(residual_norms + [float(u.sum())])
        return WorkloadResult(
            name=self.name, verification=verification, iterations=self.SWEEPS
        )
