"""Per-benchmark calibration profiles.

The beam sees the same chip regardless of workload; what differs across
benchmarks is *how much of the upset population becomes visible*: how
much cache each benchmark occupies, how often it re-reads cached data
before overwriting it (an upset in a word that is overwritten first is
never detected), and how likely a corrupted live value is to reach the
output (the AVF).  Section 3.5 uses exactly this argument to explain
why the measured SER (2.08-2.45 FIT/Mbit) is below the static-test
reference of 15 FIT/Mbit.

The measured per-benchmark upset rates of Fig. 5 are the calibration
anchor: :func:`benchmark_rate_share` converts them into a per-benchmark
share of the chip-level rate at any PMD voltage by interpolating the
measured shares in undervolt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ConfigurationError

#: Fig. 5 measured upsets/minute, per benchmark and PMD voltage (2.4 GHz).
FIG5_UPSET_RATES: Dict[str, Dict[int, float]] = {
    "CG": {980: 0.87, 930: 0.84, 920: 0.58},
    "LU": {980: 1.15, 930: 1.09, 920: 1.03},
    "FT": {980: 1.11, 930: 1.21, 920: 1.37},
    "EP": {980: 1.03, 930: 1.22, 920: 1.17},
    "MG": {980: 0.94, 930: 1.02, 920: 1.32},
    "IS": {980: 1.03, 930: 1.11, 920: 1.28},
}

#: Fig. 5 / Fig. 9 total (all-benchmark) upsets/minute per setting.
FIG5_TOTAL_RATES: Dict[int, float] = {980: 1.01, 930: 1.08, 920: 1.12}

#: Fig. 9's fourth setting: 790 mV @ 900 MHz.
FIG9_790MV_TOTAL_RATE = 1.18


@dataclass(frozen=True)
class WorkloadProfile:
    """Static calibration data for one benchmark.

    Attributes
    ----------
    name:
        Benchmark name ("CG", ...).
    occupancy:
        Fraction of each cache level's capacity holding live data,
        keyed by level name ("TLBs", "L1 Cache", "L2 Cache", "L3 Cache").
    read_recurrence:
        Probability that an upset landing in occupied memory is read
        (and hence detected/logged) before being overwritten.
    avf_sdc:
        Probability that corrupted live data propagates to the output
        (the benchmark's architectural vulnerability to SDC).
    activity:
        PMD power activity factor (see :mod:`repro.soc.power`).
    runtime_s:
        Fault-free execution time on the platform (< 5 s by the class-A
        design constraint of Section 3.3).
    """

    name: str
    occupancy: Dict[str, float]
    read_recurrence: float
    avf_sdc: float
    activity: float
    runtime_s: float

    def __post_init__(self) -> None:
        for level, frac in self.occupancy.items():
            if not 0 <= frac <= 1:
                raise ConfigurationError(
                    f"{self.name}: occupancy[{level}] must be in [0, 1]"
                )
        if not 0 <= self.read_recurrence <= 1:
            raise ConfigurationError("read recurrence must be in [0, 1]")
        if not 0 <= self.avf_sdc <= 1:
            raise ConfigurationError("AVF must be in [0, 1]")
        if self.runtime_s <= 0 or self.runtime_s >= 5.0:
            raise ConfigurationError(
                "class-A runtimes must be positive and under 5 s "
                "(Section 3.3's anti-accumulation constraint)"
            )

    def detection_efficiency(self, level: str) -> float:
        """Fraction of raw upsets at *level* this benchmark surfaces."""
        return self.occupancy.get(level, 0.0) * self.read_recurrence


#: Representative memory-behaviour profiles for the six kernels.
#: Occupancy reflects each kernel's working set against the cache sizes;
#: recurrence reflects streaming (FT) vs reuse-heavy (CG) access.
PROFILES: Dict[str, WorkloadProfile] = {
    "CG": WorkloadProfile(
        name="CG",
        occupancy={"TLBs": 0.65, "L1 Cache": 0.85, "L2 Cache": 0.80, "L3 Cache": 0.55},
        read_recurrence=0.72,
        avf_sdc=0.32,
        activity=0.96,
        runtime_s=2.6,
    ),
    "EP": WorkloadProfile(
        name="EP",
        occupancy={"TLBs": 0.40, "L1 Cache": 0.70, "L2 Cache": 0.45, "L3 Cache": 0.30},
        read_recurrence=0.55,
        avf_sdc=0.18,
        activity=1.06,
        runtime_s=3.1,
    ),
    "FT": WorkloadProfile(
        name="FT",
        occupancy={"TLBs": 0.75, "L1 Cache": 0.90, "L2 Cache": 0.95, "L3 Cache": 0.85},
        read_recurrence=0.60,
        avf_sdc=0.40,
        activity=1.02,
        runtime_s=3.8,
    ),
    "IS": WorkloadProfile(
        name="IS",
        occupancy={"TLBs": 0.80, "L1 Cache": 0.75, "L2 Cache": 0.85, "L3 Cache": 0.70},
        read_recurrence=0.58,
        avf_sdc=0.25,
        activity=0.94,
        runtime_s=1.9,
    ),
    "LU": WorkloadProfile(
        name="LU",
        occupancy={"TLBs": 0.70, "L1 Cache": 0.88, "L2 Cache": 0.90, "L3 Cache": 0.75},
        read_recurrence=0.68,
        avf_sdc=0.35,
        activity=1.05,
        runtime_s=4.2,
    ),
    "MG": WorkloadProfile(
        name="MG",
        occupancy={"TLBs": 0.72, "L1 Cache": 0.82, "L2 Cache": 0.88, "L3 Cache": 0.80},
        read_recurrence=0.62,
        avf_sdc=0.37,
        activity=0.97,
        runtime_s=3.4,
    ),
}


def benchmark_rate_share(name: str, pmd_mv: int) -> float:
    """This benchmark's share of the chip-level detected upset rate.

    Interpolates the Fig. 5 measured shares (benchmark rate / total
    rate) linearly in PMD voltage; outside the measured 920-980 mV
    range the nearest measured share is used.  Shares are normalized so
    the six benchmarks average to 1 (the "Total" bar of Fig. 5 is the
    time-normalized all-benchmark rate).

    Parameters
    ----------
    name:
        Benchmark name.
    pmd_mv:
        PMD voltage of the operating point.
    """
    if name not in FIG5_UPSET_RATES:
        raise ConfigurationError(f"unknown benchmark {name!r}")
    voltages = sorted(FIG5_TOTAL_RATES)  # [920, 930, 980]
    shares = [
        FIG5_UPSET_RATES[name][v] / FIG5_TOTAL_RATES[v] for v in voltages
    ]
    return float(np.interp(pmd_mv, voltages, shares))


def mean_runtime_s() -> float:
    """Average fault-free runtime across the suite."""
    return float(np.mean([p.runtime_s for p in PROFILES.values()]))


def suite_detection_efficiency(level: str) -> float:
    """Suite-average detection efficiency at one cache level."""
    effs = [p.detection_efficiency(level) for p in PROFILES.values()]
    return float(np.mean(effs))
