"""The checkpoint journal: append-only JSONL of completed work units.

One line per record, written in completion (== submission) order:

.. code-block:: text

    {"kind": "header", "schema": 1, "config_hash": "...", "seed": ...,
     "time_scale": ..., "units": ["session1", ...]}
    {"kind": "unit", "key": "session1", "attempts": 1, "sram_bits": ...,
     "metrics": {...} | null, "session": {...}}

Design rules, in decreasing order of importance:

* **Append-only.**  A unit line is written exactly once, after the unit
  completed; nothing is ever rewritten in place, so a crash can only
  tear the *last* line.
* **Fsync per unit** (default policy ``"unit"``): once ``append_unit``
  returns, that unit survives power loss, not just process death.
* **Torn tails are salvage, torn middles are corruption.**  On load, a
  final line that does not parse is dropped (the crash interrupted that
  append); a non-final line that does not parse means someone edited
  the file and :class:`~repro.errors.ReproIOError` is raised.
* **Reopen truncates what load salvaged.**  :meth:`CampaignJournal.load`
  reports the byte offset of the end of the last valid line and
  :meth:`CampaignJournal.reopen` truncates the file to it, so the torn
  fragment is physically removed before the resumed run appends -- the
  journal stays parseable even if the resumed run is interrupted again.
* **Resume is config-checked.**  The header pins the campaign's stable
  config hash; resuming under a different seed/time-scale/plan set
  raises instead of silently merging incompatible results.

The payload of a unit line is the *encoded* session dict (the exact
object that later lands in ``campaign.json``), so a resumed run can
reproduce the uninterrupted run's ``campaign.json`` byte-for-byte
without a decode/re-encode round trip through floating point.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ReproIOError, SupervisionError

JOURNAL_SCHEMA = 1

#: Fsync policies: "unit" fsyncs after every appended line (crash-safe
#: to power loss), "never" only flushes to the OS (crash-safe to
#: process death; used by speed-sensitive tests).
FSYNC_POLICIES = ("unit", "never")


@dataclass(frozen=True)
class JournalHeader:
    """First line of every journal: what campaign this checkpoints."""

    config_hash: str
    seed: int
    time_scale: float
    units: Tuple[str, ...]

    def to_dict(self) -> dict:
        return {
            "kind": "header",
            "schema": JOURNAL_SCHEMA,
            "config_hash": self.config_hash,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "units": list(self.units),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalHeader":
        if data.get("schema") != JOURNAL_SCHEMA:
            raise ReproIOError(
                f"unsupported journal schema {data.get('schema')!r} "
                f"(expected {JOURNAL_SCHEMA})"
            )
        return cls(
            config_hash=data["config_hash"],
            seed=int(data["seed"]),
            time_scale=float(data["time_scale"]),
            units=tuple(data["units"]),
        )


@dataclass(frozen=True)
class JournalEntry:
    """One completed work unit, as checkpointed."""

    key: str
    attempts: int
    sram_bits: int
    session: dict
    metrics: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "kind": "unit",
            "key": self.key,
            "attempts": self.attempts,
            "sram_bits": self.sram_bits,
            "metrics": self.metrics,
            "session": self.session,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JournalEntry":
        return cls(
            key=data["key"],
            attempts=int(data["attempts"]),
            sram_bits=int(data["sram_bits"]),
            session=data["session"],
            metrics=data.get("metrics"),
        )


@dataclass(frozen=True)
class LoadedJournal:
    """What :meth:`CampaignJournal.load` read back.

    ``valid_end`` is the byte offset just past the last valid line --
    the offset :meth:`CampaignJournal.reopen` truncates to so a torn
    tail is physically removed before the resumed run appends.
    """

    header: JournalHeader
    entries: Dict[str, JournalEntry]
    salvaged: int
    valid_end: int


def read_journal_header(path: str) -> JournalHeader:
    """Read only a journal's header line (no entry decoding).

    The cheap integrity question -- "which campaign configuration wrote
    these results?" -- should not require parsing megabytes of unit
    payloads, so this reads exactly one line.
    """
    try:
        with open(path, "rb") as handle:
            first = handle.readline()
    except FileNotFoundError:
        raise ReproIOError(f"no journal at {path!r}") from None
    except OSError as exc:
        raise ReproIOError(f"cannot read journal {path!r}: {exc}") from exc
    try:
        record = json.loads(first)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ReproIOError(
            f"journal {path!r} has no parseable header line "
            f"(torn at creation?)"
        ) from exc
    if not isinstance(record, dict) or record.get("kind") != "header":
        raise ReproIOError(
            f"journal {path!r} does not start with a header record"
        )
    return JournalHeader.from_dict(record)


class CampaignJournal:
    """Writer/reader of one results directory's checkpoint journal.

    Use :meth:`create` for a fresh run (truncates any stale journal) or
    :meth:`load` + :meth:`reopen` for a resumed one.
    """

    def __init__(self, path: str, fsync: str = "unit") -> None:
        if fsync not in FSYNC_POLICIES:
            raise SupervisionError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self._handle = None

    # -- writing -----------------------------------------------------------------

    @classmethod
    def create(
        cls, path: str, header: JournalHeader, fsync: str = "unit"
    ) -> "CampaignJournal":
        """Start a fresh journal (truncating any previous one)."""
        journal = cls(path, fsync=fsync)
        journal._handle = open(path, "w")
        journal._write_line(header.to_dict())
        return journal

    def reopen(self, valid_end: Optional[int] = None) -> "CampaignJournal":
        """Open an existing journal for appending (resume path).

        *valid_end* is the byte offset past the last valid line, as
        reported by :meth:`load`; the file is truncated to it before
        appending so a torn tail is physically removed.  Appending
        straight after the fragment would glue the next record onto it
        (no newline between them), leaving a corrupt non-final line
        that a second resume refuses to salvage.  Without *valid_end*
        the tail is trimmed back to the last newline, which removes any
        unterminated fragment (every complete record ends in one).
        """
        if self._handle is not None:
            raise SupervisionError("journal already open")
        self._truncate_torn_tail(valid_end)
        self._handle = open(self.path, "a")
        return self

    def _truncate_torn_tail(self, valid_end: Optional[int]) -> None:
        try:
            with open(self.path, "r+b") as handle:
                size = handle.seek(0, os.SEEK_END)
                if valid_end is None:
                    handle.seek(0)
                    raw = handle.read()
                    valid_end = raw.rfind(b"\n") + 1
                if 0 <= valid_end < size:
                    handle.truncate(valid_end)
                # A crash can tear off exactly the terminating newline:
                # the last line still parses, so load() keeps it (and
                # reports valid_end == file size), but appending right
                # after it would glue the next record onto the
                # unterminated line, corrupting both.  Terminate it.
                if valid_end > 0:
                    handle.seek(valid_end - 1)
                    if handle.read(1) != b"\n":
                        handle.seek(valid_end)
                        handle.write(b"\n")
                handle.flush()
                if self.fsync == "unit":
                    os.fsync(handle.fileno())
        except FileNotFoundError:
            pass  # nothing to trim; append will create the file

    def append_unit(self, entry: JournalEntry) -> None:
        """Checkpoint one completed unit (flush + fsync per policy)."""
        if self._handle is None:
            raise SupervisionError("journal is not open for writing")
        self._write_line(entry.to_dict())

    def _write_line(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()
        if self.fsync == "unit":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reading -----------------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> LoadedJournal:
        """Read a journal back as a :class:`LoadedJournal`.

        A torn final line (the signature of a crash mid-append) is
        dropped and counted; torn lines anywhere else raise
        :class:`~repro.errors.ReproIOError`.  ``valid_end`` marks the
        byte offset past the last valid line, for
        :meth:`reopen` to truncate the salvaged tail away.
        """
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            raise ReproIOError(
                f"no journal at {path!r}; nothing to resume "
                f"(run without --resume first)"
            ) from None
        except OSError as exc:
            raise ReproIOError(f"cannot read journal {path!r}: {exc}") from exc

        lines = raw.splitlines()
        records: List[dict] = []
        salvaged = 0
        valid_end = 0
        pos = 0
        for index, line in enumerate(lines):
            # Offset past this line including its terminator (the
            # final line has none iff the file does not end with one;
            # splitlines treats \r\n as a single two-byte terminator).
            pos += len(line)
            if raw[pos:pos + 2] == b"\r\n":
                pos += 2
            elif pos < len(raw):
                pos += 1
            if not line.strip():
                valid_end = pos
                continue
            try:
                records.append(json.loads(line))
                valid_end = pos
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if index == len(lines) - 1:
                    # Crash tore the tail append; the units before it
                    # are intact, the torn one simply reruns.
                    salvaged += 1
                    continue
                raise ReproIOError(
                    f"journal {path!r} is corrupt at line {index + 1} "
                    f"(not a torn tail -- refusing to salvage): {exc}"
                ) from exc
        if not records or records[0].get("kind") != "header":
            raise ReproIOError(
                f"journal {path!r} has no header line; it is not a "
                f"campaign journal (or was torn at creation) -- start a "
                f"fresh run"
            )
        header = JournalHeader.from_dict(records[0])
        entries: Dict[str, JournalEntry] = {}
        for record in records[1:]:
            if record.get("kind") != "unit":
                raise ReproIOError(
                    f"journal {path!r}: unexpected record kind "
                    f"{record.get('kind')!r}"
                )
            entry = JournalEntry.from_dict(record)
            entries[entry.key] = entry
        return LoadedJournal(
            header=header,
            entries=entries,
            salvaged=salvaged,
            valid_end=valid_end,
        )


class EventJournal:
    """Append-only JSONL of scheduler events (submit/lease/complete).

    The campaign broker persists its scheduling decisions with the same
    durability rules as :class:`CampaignJournal` -- append-only lines,
    flush (and optionally fsync) per event, torn final lines dropped on
    read -- but the payload is a free-form event stream rather than the
    closed header/unit vocabulary.  Each broker process owns exactly
    one journal file (named by its broker id), so two brokers sharing a
    results directory never interleave writes within one file; reading
    the directory's full history means reading every broker's journal.
    """

    def __init__(
        self, path: str, header: Optional[dict] = None, fsync: str = "unit"
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise SupervisionError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        existed = os.path.exists(path)
        self._handle = open(path, "a")
        if not existed and header is not None:
            self.append(dict(header, kind="header"))

    def append(self, event: dict) -> None:
        """Append one event line (flush + fsync per policy)."""
        if self._handle is None:
            raise SupervisionError("event journal is closed")
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()
        if self.fsync == "unit":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def read_events(path: str) -> List[dict]:
        """Read one event journal back, dropping a torn final line."""
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return []
        except OSError as exc:
            raise ReproIOError(
                f"cannot read event journal {path!r}: {exc}"
            ) from exc
        events: List[dict] = []
        lines = raw.splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if index == len(lines) - 1:
                    continue  # torn tail: the crash interrupted this append
                raise ReproIOError(
                    f"event journal {path!r} is corrupt at line "
                    f"{index + 1} (not a torn tail): {exc}"
                ) from exc
        return events
