"""Chaos harness: deterministic fault injection into the harness itself.

The rest of the package injects faults into a simulated chip; this
module injects faults into the *campaign runner* so the resilience
machinery can be tested the same way the paper tests the DUT --
deterministically, from a declarative plan.  A :class:`ChaosSpec` names,
per work-unit key and attempt number, exactly which fault fires:

========  ====================================================================
fault     effect
========  ====================================================================
``ok``    no fault; the unit runs normally
``raise`` raise a transient (AppCrash-like) exception before the unit runs
``fatal`` raise a fatal (SDC-like) exception -- quarantined, never retried
``hang``  sleep past the supervision timeout (SysCrash-like)
``kill``  hard-kill the worker process (``os._exit``) so the pool breaks;
          under serial execution this degrades to a transient raise
========  ====================================================================

Because the fault is selected on the *submitting* side from
``(key, attempt)`` alone and shipped to workers as a plain string, chaos
runs are fully reproducible: the same spec against the same campaign
produces the same retries, the same quarantines, and -- because unit
RNG streams derive from ``(seed, label)`` only -- byte-identical
campaign results once the faults are survived.

``crash_after_units`` additionally crashes the *runner* (not a worker)
after the N-th unit has been journaled, which is how the tests and the
CI chaos job simulate a mid-campaign SIGTERM at an exact, reproducible
point.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from ..errors import CampaignInterrupted, ChaosError
from .policy import FailureClass

#: The closed set of injectable faults.
FAULT_KINDS = ("ok", "raise", "fatal", "hang", "kill")


class ChaosTransientError(Exception):
    """An injected AppCrash-like fault (cleared by retry)."""

    failure_class = FailureClass.APP_CRASH


class ChaosFatalError(Exception):
    """An injected SDC-like fault (deterministic; quarantine)."""

    failure_class = FailureClass.SDC


class SimulatedCrash(CampaignInterrupted):
    """The runner 'lost power' mid-campaign (``crash_after_units``)."""


@dataclass(frozen=True)
class ChaosSpec:
    """A declarative, deterministic fault plan for one campaign run.

    Attributes
    ----------
    units:
        ``key -> faults per attempt``; attempt *i* (0-based) draws
        ``faults[i]``, attempts past the end of the list run clean.
    hang_s:
        How long a ``hang`` fault sleeps (keep it just above the
        supervision timeout in tests).
    crash_after_units:
        Crash the runner with :class:`SimulatedCrash` once this many
        units have been journaled (``None`` = never).
    """

    units: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    hang_s: float = 0.5
    crash_after_units: Optional[int] = None

    def __post_init__(self) -> None:
        normalized = {}
        for key, faults in self.units.items():
            faults = tuple(faults)
            for fault in faults:
                if fault not in FAULT_KINDS:
                    raise ChaosError(
                        f"unknown fault {fault!r} for unit {key!r}; "
                        f"choose from {FAULT_KINDS}"
                    )
            normalized[key] = faults
        object.__setattr__(self, "units", normalized)
        if self.hang_s < 0:
            raise ChaosError("hang_s must be nonnegative")
        if self.crash_after_units is not None and self.crash_after_units < 0:
            raise ChaosError("crash_after_units must be nonnegative")

    def fault_for(self, key: str, attempt: int) -> str:
        """The fault that fires for ``(key, attempt)`` (0-based attempt)."""
        faults = self.units.get(key, ())
        if 0 <= attempt < len(faults):
            return faults[attempt]
        return "ok"

    def touches(self, key: str) -> bool:
        """True if this spec injects anything into the given unit."""
        return any(f != "ok" for f in self.units.get(key, ()))

    # -- (de)serialization (CLI --chaos, CI) -------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosSpec":
        """Build a spec from a JSON-shaped dict."""
        if not isinstance(data, dict):
            raise ChaosError(f"chaos spec must be an object, got {data!r}")
        unknown = set(data) - {"units", "hang_s", "crash_after_units"}
        if unknown:
            raise ChaosError(f"unknown chaos spec fields: {sorted(unknown)}")
        units = data.get("units", {})
        if not isinstance(units, dict):
            raise ChaosError("chaos spec 'units' must map key -> fault list")
        return cls(
            units={k: tuple(v) for k, v in units.items()},
            hang_s=float(data.get("hang_s", 0.5)),
            crash_after_units=data.get("crash_after_units"),
        )

    @classmethod
    def from_json(cls, text_or_path: str) -> "ChaosSpec":
        """Parse a spec from inline JSON or a path to a JSON file."""
        text = text_or_path
        if os.path.exists(text_or_path):
            with open(text_or_path) as handle:
                text = handle.read()
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ChaosError(f"invalid chaos spec JSON: {exc}") from exc
        return cls.from_dict(data)


def chaos_call(
    fault: str,
    hang_s: float,
    key: str,
    attempt: int,
    parent_pid: int,
    fn: Callable[..., Any],
    args: Sequence[Any],
    kwargs: Dict[str, Any],
) -> Any:
    """Run one (possibly faulted) unit attempt.

    Module-level so it pickles into worker processes; the fault arrives
    pre-selected as a string, never as live spec state.  *parent_pid*
    is the submitting process's pid, captured at wrap time, so ``kill``
    can tell a pool worker (hard ``os._exit``, breaking the pool) from
    in-process serial execution (degraded to a transient raise -- an
    actual exit would kill the campaign, not a worker).
    """
    if fault == "raise":
        raise ChaosTransientError(
            f"chaos: injected transient fault ({key}, attempt {attempt})"
        )
    if fault == "fatal":
        raise ChaosFatalError(
            f"chaos: injected fatal fault ({key}, attempt {attempt})"
        )
    if fault == "hang":
        time.sleep(hang_s)
    elif fault == "kill":
        if os.getpid() != parent_pid:
            # In a pool worker: die without cleanup, like a real worker
            # crash -- the parent sees BrokenProcessPool.
            os._exit(17)
        raise ChaosTransientError(
            f"chaos: 'kill' under serial execution degraded to a "
            f"transient raise ({key}, attempt {attempt})"
        )
    return fn(*args, **kwargs)
