"""Fault-tolerant execution: checkpoint/resume, supervision, chaos.

The paper's campaigns burned 64+ beam-hours and routinely ended runs in
AppCrash/SysCrash; a harness that loses the whole campaign when one
work unit dies cannot reproduce that methodology at scale.  This layer
sits on top of :mod:`repro.engine` and adds the operational resilience
of a real beam-test runner:

* :class:`SupervisedExecutor` -- per-unit timeouts, bounded retries
  with deterministic backoff, SDC/AppCrash/SysCrash failure triage,
  quarantine of poison units, and graceful parallel-to-serial
  degradation when workers keep dying;
* :class:`CampaignJournal` -- an append-only, fsynced JSONL checkpoint
  of completed work units;
* :class:`ResilientCampaign` -- the checkpointed campaign runner behind
  ``repro-campaign run`` and its ``--resume`` flag, with byte-identical
  resume semantics;
* :mod:`repro.resilient.chaos` -- deterministic fault injection into
  the harness itself (raising/hanging/killed/crashing units), the
  machinery behind ``tests/chaos/`` and the CI chaos job.

Determinism contract: supervision, journaling and chaos never touch an
RNG stream; unit streams derive from ``(seed, label)`` alone, so
retried, resumed, or fault-riddled runs produce byte-identical
``campaign.json`` artifacts once their units complete.
"""

from .chaos import (
    ChaosFatalError,
    ChaosSpec,
    ChaosTransientError,
    FAULT_KINDS,
    SimulatedCrash,
)
from .journal import (
    CampaignJournal,
    EventJournal,
    FSYNC_POLICIES,
    JournalEntry,
    JournalHeader,
    LoadedJournal,
    read_journal_header,
)
from .policy import (
    FailureClass,
    SupervisionPolicy,
    UnitTimeoutError,
    classify_failure,
)
from .runner import ResilientCampaign, ResilientRunReport
from .supervisor import SupervisedExecutor, UnitFailure, UnitReport

__all__ = [
    "ChaosFatalError",
    "ChaosSpec",
    "ChaosTransientError",
    "FAULT_KINDS",
    "SimulatedCrash",
    "CampaignJournal",
    "EventJournal",
    "FSYNC_POLICIES",
    "JournalEntry",
    "JournalHeader",
    "LoadedJournal",
    "read_journal_header",
    "FailureClass",
    "SupervisionPolicy",
    "UnitTimeoutError",
    "classify_failure",
    "ResilientCampaign",
    "ResilientRunReport",
    "SupervisedExecutor",
    "UnitFailure",
    "UnitReport",
]
