"""Supervision policy: timeouts, retries, backoff, failure taxonomy.

The paper classifies what the *DUT* does under beam as SDC, AppCrash or
SysCrash (Section 3.6).  The resilient layer applies the same taxonomy
to the *harness* itself -- a work unit that dies is triaged exactly like
an irradiated benchmark run:

* **AppCrash-like** (transient) -- the unit raised an exception; a
  restart (retry) is expected to clear it.
* **SysCrash-like** (transient) -- the worker process died or stopped
  responding (timeout, broken pool); the supervisor "power-cycles"
  (restarts the pool / reruns the unit) and retries.
* **SDC-like** (fatal) -- a deterministic configuration/programming
  error: rerunning would reproduce the same wrong behavior, so the unit
  is quarantined immediately instead of burning retries.

:class:`SupervisionPolicy` bundles the knobs; the per-unit timeout can
be calibrated from observed run durations through the existing watchdog
machinery (:meth:`SupervisionPolicy.from_watchdog`), which makes the
Section 3.6 response-timeout model the single timeout source of the
harness -- there is no second timer stack.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from enum import Enum
from typing import Optional, Sequence

from ..errors import (
    AnalysisError,
    ChaosError,
    ConfigurationError,
    ReproIOError,
    SupervisionError,
)
from ..harness.watchdog import WatchdogPolicy, calibrate_watchdog


class FailureClass(Enum):
    """Triage verdict for a failed work unit (paper taxonomy, Section 3.6)."""

    #: Unit raised; retry after a restart (transient).
    APP_CRASH = "appcrash"
    #: Worker died / stopped responding; retry after a power-cycle
    #: (pool restart) -- transient.
    SYS_CRASH = "syscrash"
    #: Deterministically wrong configuration or code; retrying
    #: reproduces the same failure, so quarantine immediately.
    SDC = "sdc"

    @property
    def transient(self) -> bool:
        """True when a retry has a chance of clearing the failure."""
        return self is not FailureClass.SDC


class UnitTimeoutError(SupervisionError):
    """A work unit exceeded the supervision timeout (SysCrash-like)."""


#: Exception types whose recurrence is deterministic: retrying cannot
#: help, the unit is quarantined on first sight (SDC-like).
_FATAL_TYPES = (
    ConfigurationError,
    AnalysisError,
    ReproIOError,
    ChaosError,
    TypeError,
    ValueError,
    KeyError,
    AttributeError,
    ZeroDivisionError,
    AssertionError,
)

#: Exception types signalling the *worker*, not the unit, died
#: (SysCrash-like): process pool breakage, OS-level trouble, timeouts.
_SYSTEM_TYPES = (
    UnitTimeoutError,
    TimeoutError,
    BrokenProcessPool,
    ConnectionError,
    MemoryError,
    OSError,
)


def classify_failure(exc: BaseException) -> FailureClass:
    """Triage one work-unit exception into the paper's taxonomy.

    Chaos-injected faults (see :mod:`repro.resilient.chaos`) carry their
    own class and win over the type tables.
    """
    declared = getattr(exc, "failure_class", None)
    if isinstance(declared, FailureClass):
        return declared
    if isinstance(exc, _FATAL_TYPES):
        return FailureClass.SDC
    if isinstance(exc, _SYSTEM_TYPES):
        return FailureClass.SYS_CRASH
    return FailureClass.APP_CRASH


@dataclass(frozen=True)
class SupervisionPolicy:
    """How hard the supervisor fights for each work unit.

    Attributes
    ----------
    timeout_s:
        Per-unit response timeout; ``None`` disables timeout
        supervision (the default: simulated sessions are pure CPU work
        with no natural wall-clock bound).
    max_retries:
        Retries after the first attempt before a transient unit is
        quarantined.
    backoff_s / backoff_factor / max_backoff_s:
        Deterministic exponential backoff between retries:
        ``backoff_s * backoff_factor**(attempt-1)``, capped.  No jitter
        -- two runs of the same campaign wait the same schedule, and no
        RNG stream is ever touched.
    max_pool_breakages:
        Worker-pool deaths tolerated before the supervisor degrades
        from parallel to serial execution for the rest of the batch.
    """

    timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    max_pool_breakages: int = 2

    def __post_init__(self) -> None:
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise SupervisionError("timeout must be positive (or None)")
        if self.max_retries < 0:
            raise SupervisionError("max_retries must be nonnegative")
        if self.backoff_s < 0 or self.max_backoff_s < 0:
            raise SupervisionError("backoff must be nonnegative")
        if self.backoff_factor < 1.0:
            raise SupervisionError("backoff factor must be >= 1")
        if self.max_pool_breakages < 0:
            raise SupervisionError("max_pool_breakages must be nonnegative")

    def backoff_delay(self, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1-based), capped."""
        if attempt < 1:
            raise SupervisionError("attempt is 1-based")
        return min(
            self.backoff_s * self.backoff_factor ** (attempt - 1),
            self.max_backoff_s,
        )

    def backoff_schedule(self) -> "list[float]":
        """The full deterministic retry schedule, for logs and docs."""
        return [
            self.backoff_delay(attempt)
            for attempt in range(1, self.max_retries + 1)
        ]

    # -- watchdog bridge ---------------------------------------------------------

    @classmethod
    def from_watchdog(
        cls, watchdog: WatchdogPolicy, **overrides: object
    ) -> "SupervisionPolicy":
        """Build a policy whose timeout comes from a calibrated watchdog.

        This is the single timeout mechanism of the harness: the
        Section 3.6 response-timeout calibration
        (:func:`repro.harness.watchdog.calibrate_watchdog`) produces a
        :class:`~repro.harness.watchdog.WatchdogPolicy`, and the
        supervision layer consumes its ``timeout_s`` directly.
        """
        return cls(timeout_s=watchdog.timeout_s).replace_(**overrides)

    @classmethod
    def calibrated(
        cls,
        run_durations_s: Sequence[float],
        false_alarm_target: float = 1e-4,
        margin_s: float = 5.0,
        **overrides: object,
    ) -> "SupervisionPolicy":
        """Calibrate the timeout from observed fault-free unit durations.

        Convenience composition of
        :func:`~repro.harness.watchdog.calibrate_watchdog` and
        :meth:`from_watchdog`.
        """
        watchdog = calibrate_watchdog(
            run_durations_s,
            false_alarm_target=false_alarm_target,
            margin_s=margin_s,
        )
        return cls.from_watchdog(watchdog, **overrides)

    def replace_(self, **overrides: object) -> "SupervisionPolicy":
        """A copy with the given fields overridden."""
        return replace(self, **overrides)  # type: ignore[arg-type]
