"""ResilientCampaign: checkpointed, supervised, resumable campaign runs.

The plain :class:`~repro.harness.campaign.Campaign` loses everything if
one session raises or the run is interrupted; this runner adds the
operational layer a multi-day beam campaign actually needs:

* every completed work unit is checkpointed to an append-only JSONL
  journal (fsynced per unit) *as it completes*;
* a crashed or SIGTERMed run resumes with ``--resume``: journaled units
  are loaded back, only the missing ones are flown;
* because session streams derive from ``(seed, label)`` alone -- never
  from cross-session draw order -- and because the journal stores the
  *encoded* session payload, a resumed run's ``campaign.json`` is
  byte-identical to the uninterrupted run's;
* work units fly under :class:`~repro.resilient.SupervisedExecutor`
  (timeouts, retries, quarantine, parallel-to-serial degradation), so a
  poison unit costs its own data, not the campaign's.

Telemetry: per-unit metric snapshots ride in the journal, so a resumed
run's merged counters equal the uninterrupted run's (the resume itself
is visible separately as ``resilient.resumed_units``).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..engine import CAMPAIGN_WARMUP, ExecutionContext
from ..errors import ReproIOError, SupervisionError
from ..harness.campaign import Campaign, CampaignResult
from ..io.json_store import (
    SCHEMA_VERSION,
    campaign_from_dict,
    session_to_dict,
)
from ..io.results_dir import ResultsDirectory
from ..io.atomic import atomic_write_json
from ..scheduler import Broker
from ..telemetry import NULL_TELEMETRY
from ..core.report import Table
from .chaos import ChaosSpec, SimulatedCrash
from .journal import (
    CampaignJournal,
    JournalEntry,
    JournalHeader,
)
from .policy import SupervisionPolicy
from .supervisor import SupervisedExecutor, UnitReport


class ResilientRunReport:
    """Everything a fault-tolerant run produced, failures included.

    Attributes
    ----------
    campaign:
        The (possibly partial) decoded campaign result -- quarantined
        sessions are absent from it.
    campaign_dict:
        The byte-stable encoded campaign (what ``campaign.json``
        holds); resumed sessions keep their original journal bytes.
    unit_reports:
        One :class:`~repro.resilient.supervisor.UnitReport` per plan,
        in plan order (status ``ok``, ``resumed`` or ``quarantined``).
    resumed_units / salvaged_lines:
        Resume bookkeeping (0 on a fresh run).
    """

    def __init__(
        self,
        campaign: CampaignResult,
        campaign_dict: dict,
        unit_reports: List[UnitReport],
        resumed_units: int = 0,
        salvaged_lines: int = 0,
    ) -> None:
        self.campaign = campaign
        self.campaign_dict = campaign_dict
        self.unit_reports = unit_reports
        self.resumed_units = resumed_units
        self.salvaged_lines = salvaged_lines

    @property
    def ok(self) -> bool:
        """True when every work unit completed (fresh or resumed)."""
        return not self.failed_units

    @property
    def failed_units(self) -> List[UnitReport]:
        """Reports of quarantined units, in plan order."""
        return [r for r in self.unit_reports if r.status == "quarantined"]

    def failure_table(self) -> Table:
        """Per-unit outcome table (printed by ``run --strict``)."""
        table = Table(
            title="Work-unit supervision report",
            header=["Unit", "Status", "Attempts", "Class", "Error"],
        )
        for report in self.unit_reports:
            table.add_row(
                report.key,
                report.status,
                report.attempts,
                report.failure_class.value if report.failure_class else "-",
                report.error or "-",
            )
        return table

    def failures_dict(self) -> dict:
        """JSON-shaped failure report (persisted as ``failures.json``)."""
        return {
            "schema": 1,
            "ok": self.ok,
            "resumed_units": self.resumed_units,
            "salvaged_lines": self.salvaged_lines,
            "units": [r.to_dict() for r in self.unit_reports],
        }

    def persist(self, results: ResultsDirectory) -> List[str]:
        """Write campaign.json (+ dmesg logs, + failures.json) atomically.

        ``campaign.json`` is produced from :attr:`campaign_dict` -- the
        journal payload bytes -- not from a decode/re-encode round trip,
        which is what keeps interrupted-and-resumed runs byte-identical
        to uninterrupted ones.
        """
        written = [results.save_campaign_dict(self.campaign_dict)]
        written.extend(results.save_dmesg(self.campaign).values())
        written.append(
            atomic_write_json(results.failures_path(), self.failures_dict())
        )
        return written


class ResilientCampaign:
    """A :class:`Campaign` wrapped in checkpointing and supervision.

    Parameters
    ----------
    plans / seed / time_scale / context / vectorized / tech_node:
        Exactly as for :class:`~repro.harness.campaign.Campaign`.
    policy:
        Supervision knobs (timeouts/retries/backoff/degradation).
    workers:
        Worker processes for the supervised executor (0/1 = serial).
    chaos:
        Optional deterministic fault plan (harness self-test only).
    fsync:
        Journal fsync policy (``"unit"`` or ``"never"``).
    """

    def __init__(
        self,
        plans=None,
        seed: int = 2023,
        time_scale: float = 1.0,
        context: Optional[ExecutionContext] = None,
        vectorized: bool = True,
        policy: Optional[SupervisionPolicy] = None,
        workers: int = 0,
        chaos: Optional[ChaosSpec] = None,
        fsync: str = "unit",
        tech_node: Optional[str] = None,
    ) -> None:
        # Reuse Campaign's plan preparation (time scaling, flux
        # override, context handling, node scaling) so both runners fly
        # literally the same plans from the same inputs.
        self._campaign = Campaign(
            plans=plans,
            seed=seed,
            time_scale=time_scale,
            context=context,
            vectorized=vectorized,
            tech_node=tech_node,
        )
        self.tech_node = self._campaign.tech_node
        self.context = self._campaign.context
        self.plans = self._campaign.plans
        self.vectorized = vectorized
        self.policy = policy or SupervisionPolicy()
        self.workers = int(workers)
        self.chaos = chaos
        self.fsync = fsync
        self.executor = SupervisedExecutor(
            policy=self.policy,
            workers=self.workers,
            chaos=chaos,
            warmup=CAMPAIGN_WARMUP,
        )

    def config_hash(self) -> str:
        """Stable hash of the flown configuration (same as Campaign's)."""
        return self._campaign.config_hash()

    # -- the run loop ------------------------------------------------------------

    def run(
        self, results: ResultsDirectory, resume: bool = False
    ) -> ResilientRunReport:
        """Fly (or resume) the campaign, checkpointing every unit.

        With ``resume=True`` an existing journal under *results* is
        loaded, its config hash checked against this configuration, and
        only the units it does not hold are flown.
        """
        telemetry = self.context.telemetry or NULL_TELEMETRY
        labels = [plan.label for plan in self.plans]
        header = JournalHeader(
            config_hash=self.config_hash(),
            seed=self.context.seed,
            time_scale=self.context.time_scale,
            units=tuple(labels),
        )
        journal_path = results.journal_path(ensure_root=True)

        completed: Dict[str, JournalEntry] = {}
        salvaged = 0
        if resume:
            loaded = CampaignJournal.load(journal_path)
            stored_header, completed, salvaged = (
                loaded.header, loaded.entries, loaded.salvaged,
            )
            if stored_header.config_hash != header.config_hash:
                raise ReproIOError(
                    f"journal at {journal_path!r} was written by a "
                    f"different campaign configuration "
                    f"(hash {stored_header.config_hash[:12]}... vs "
                    f"{header.config_hash[:12]}...); refusing to resume"
                )
            # Drop journal entries for units no longer in the plan
            # (config hash covers plans, so this cannot happen unless
            # the hash matched -- keep it as a hard invariant anyway).
            completed = {
                key: entry
                for key, entry in completed.items()
                if key in set(labels)
            }
            if salvaged:
                telemetry.count("resilient.journal_salvaged", n=salvaged)
            telemetry.count("resilient.resumed_units", n=len(completed))
            # Truncate to the last valid line so a salvaged torn tail
            # is removed before new records are appended after it.
            journal = CampaignJournal(journal_path, fsync=self.fsync).reopen(
                valid_end=loaded.valid_end
            )
        else:
            journal = CampaignJournal.create(
                journal_path, header, fsync=self.fsync
            )

        # Scheduling goes through the broker: the campaign is planned
        # once (stable unit ids), journaled units are settled as
        # recovered, and only the remainder is leased to the executor.
        plan = self._campaign.plan_campaign(with_metrics=telemetry.enabled)
        broker = Broker(telemetry=telemetry)
        broker.submit(plan)
        unit_ids = {unit.label: unit.unit_id for unit in plan.units}
        for label in completed:
            broker.mark_recovered(unit_ids[label], None)

        fresh: Dict[str, dict] = {}
        fresh_reports: Dict[str, UnitReport] = {}

        def _checkpoint(
            index: int, lease, report: UnitReport, result
        ) -> None:
            fresh_reports[report.key] = report
            if report.ok:
                session_result, sram_bits, snapshot = result
                entry = JournalEntry(
                    key=report.key,
                    attempts=report.attempts,
                    sram_bits=sram_bits,
                    session=session_to_dict(session_result),
                    metrics=snapshot,
                )
                journal.append_unit(entry)
                fresh[report.key] = {
                    "entry": entry,
                    "session_result": session_result,
                }
            if (
                report.ok
                and self.chaos is not None
                and self.chaos.crash_after_units is not None
                and len(completed) + len(fresh)
                >= self.chaos.crash_after_units
            ):
                raise SimulatedCrash(
                    f"chaos: simulated crash after "
                    f"{len(completed) + len(fresh)} journaled unit(s)"
                )

        try:
            with telemetry.span(
                "campaign.resilient_run",
                sessions=len(self.plans),
                resumed=len(completed),
            ):
                broker.drain(
                    self.executor,
                    logbook=self.context.logbook,
                    telemetry=self.context.telemetry,
                    on_result=_checkpoint,
                )
        finally:
            journal.close()
            self.executor.close()

        return self._assemble(
            completed, fresh, fresh_reports, telemetry, salvaged
        )

    # -- assembly ----------------------------------------------------------------

    def _assemble(
        self,
        completed: Dict[str, JournalEntry],
        fresh: Dict[str, dict],
        fresh_reports: Dict[str, UnitReport],
        telemetry,
        salvaged: int,
    ) -> ResilientRunReport:
        sessions: Dict[str, dict] = {}
        sram_bits = 0
        unit_reports: List[UnitReport] = []
        result = CampaignResult()

        for plan in self.plans:
            label = plan.label
            if label in completed:
                entry = completed[label]
                sessions[label] = entry.session
                if not sram_bits:
                    sram_bits = entry.sram_bits
                telemetry.merge_snapshot(entry.metrics)
                # Resumed sessions are decoded from their journal
                # payload for the in-memory result; campaign.json keeps
                # the original bytes via `sessions` above.
                unit_reports.append(
                    UnitReport(
                        key=label,
                        status="resumed",
                        attempts=entry.attempts,
                        retries=0,
                        timeouts=0,
                    )
                )
            elif label in fresh:
                entry = fresh[label]["entry"]
                sessions[label] = entry.session
                if not sram_bits:
                    sram_bits = entry.sram_bits
                telemetry.merge_snapshot(entry.metrics)
                unit_reports.append(fresh_reports[label])
            else:
                report = fresh_reports.get(label)
                if report is None:
                    raise SupervisionError(
                        f"unit {label!r} neither completed nor reported"
                    )
                unit_reports.append(report)

        campaign_dict = {
            "schema": SCHEMA_VERSION,
            "sram_bits": sram_bits,
            "sessions": sessions,
        }
        decoded = campaign_from_dict(campaign_dict)
        for label, session in decoded.sessions.items():
            # Fresh units keep their original in-memory objects (exact
            # floats, no round trip); resumed ones use the decoded form.
            if label in fresh:
                result.sessions[label] = fresh[label]["session_result"]
            else:
                result.sessions[label] = session
        result.sram_bits = sram_bits

        resumed_count = sum(
            1 for r in unit_reports if r.status == "resumed"
        )
        return ResilientRunReport(
            campaign=result,
            campaign_dict=campaign_dict,
            unit_reports=unit_reports,
            resumed_units=resumed_count,
            salvaged_lines=salvaged,
        )
