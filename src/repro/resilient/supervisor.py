"""SupervisedExecutor: per-unit timeouts, retries, quarantine, degradation.

Wraps the engine's execution model with the supervision loop a real
beam-campaign Control-PC runs: every work unit gets a response timeout
and a bounded, deterministically backed-off retry budget; failures are
triaged with the paper's SDC/AppCrash/SysCrash taxonomy
(:func:`~repro.resilient.policy.classify_failure`); units that keep
failing are *quarantined* (the batch continues without them, exactly
like a benchmark pulled from the rotation); and when worker processes
keep dying the executor degrades from parallel to serial rather than
aborting the campaign.

Determinism contract: supervision never touches an RNG stream -- units
derive their own streams from ``(seed, key)``, so a unit that succeeds
on attempt 3 returns the byte-identical result it would have returned
on attempt 1, and a campaign that survives injected faults produces
byte-identical artifacts to one that never saw them.

Results are delivered in submission order.  A quarantined unit yields a
:class:`UnitFailure` sentinel in the result list (callers opt into
strictness; the default keeps the rest of the campaign's data).  The
optional ``on_result`` callback fires in submission order as each
unit's fate is settled -- the checkpoint journal hangs off it.
"""

from __future__ import annotations

import concurrent.futures
import os
import queue
import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..engine.executor import Executor, WorkUnit
from ..engine.pool import WarmupSpec, WorkerPool
from ..errors import CampaignInterrupted, SupervisionError
from ..telemetry import NULL_TELEMETRY, Telemetry
from .chaos import ChaosSpec, chaos_call
from .policy import (
    FailureClass,
    SupervisionPolicy,
    UnitTimeoutError,
    classify_failure,
)


@dataclass(frozen=True)
class UnitFailure:
    """Sentinel result for a quarantined work unit."""

    key: str
    failure_class: FailureClass
    attempts: int
    error: str

    def __bool__(self) -> bool:
        return False


@dataclass
class UnitReport:
    """Supervision outcome of one work unit (ok or quarantined)."""

    key: str
    status: str  # "ok" | "quarantined"
    attempts: int
    retries: int
    timeouts: int
    failure_class: Optional[FailureClass] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failure_class": (
                self.failure_class.value if self.failure_class else None
            ),
            "error": self.error,
        }


@dataclass
class _UnitState:
    """Book-keeping for one in-flight unit (parallel path)."""

    unit: WorkUnit
    attempt: int = 0
    retries: int = 0
    timeouts: int = 0
    future: Optional[concurrent.futures.Future] = None
    done: bool = False


def _run_in_thread(unit: WorkUnit, timeout_s: float) -> Any:
    """Run a unit with a wall-clock bound (serial path).

    The unit runs on a daemon thread; on timeout the thread is
    abandoned (it holds no locks and its result is discarded) and
    :class:`UnitTimeoutError` is raised, mirroring the Control-PC
    declaring a run dead after the response timeout.
    """
    channel: "queue.Queue[tuple[bool, Any]]" = queue.Queue(maxsize=1)

    def _target() -> None:
        try:
            channel.put((True, unit.run()))
        except BaseException as exc:  # ship the failure to the supervisor
            channel.put((False, exc))

    thread = threading.Thread(
        target=_target, name=f"repro-unit-{unit.key}", daemon=True
    )
    thread.start()
    try:
        ok, payload = channel.get(timeout=timeout_s)
    except queue.Empty:
        raise UnitTimeoutError(
            f"unit {unit.key!r} exceeded the {timeout_s:.3f}s response "
            f"timeout"
        ) from None
    if ok:
        return payload
    raise payload


class SupervisedExecutor(Executor):
    """Fault-tolerant executor: the resilient layer's one run loop.

    Parameters
    ----------
    policy:
        Timeout/retry/backoff/degradation knobs
        (:class:`~repro.resilient.policy.SupervisionPolicy`).
    workers:
        Worker processes; 0/1 = serial in-process execution.
    chaos:
        Optional :class:`~repro.resilient.chaos.ChaosSpec` injecting
        deterministic faults into unit attempts (harness self-test).
    sleep:
        Backoff sleeper, injectable so tests assert the deterministic
        schedule without waiting it out.
    warmup:
        Optional :class:`~repro.engine.pool.WarmupSpec` pre-building
        per-worker state when the pool spawns.

    The worker pool is a persistent :class:`~repro.engine.pool.
    WorkerPool`: it spawns lazily on the first parallel batch and is
    reused across ``map()`` calls (service jobs, broker drain batches)
    until :meth:`close`.  Supervision dispatches one future per unit --
    per-unit timeouts and retry budgets need per-unit completion, so
    this path deliberately skips chunked dispatch.
    """

    name = "supervised"

    def __init__(
        self,
        policy: Optional[SupervisionPolicy] = None,
        workers: int = 1,
        chaos: Optional[ChaosSpec] = None,
        sleep: Callable[[float], None] = time.sleep,
        warmup: Optional[WarmupSpec] = None,
    ) -> None:
        if workers < 0:
            raise SupervisionError("workers must be nonnegative")
        self.policy = policy or SupervisionPolicy()
        self.workers = int(workers)
        self.chaos = chaos
        self._sleep = sleep
        self.pool: Optional[WorkerPool] = (
            WorkerPool(self.workers, warmup=warmup)
            if self.workers > 1
            else None
        )
        #: Per-map reports, in submission order (inspected by callers).
        self.last_reports: List[UnitReport] = []

    def close(self) -> None:
        """Release the worker processes (respawned lazily if reused)."""
        if self.pool is not None:
            self.pool.close()

    # -- public API --------------------------------------------------------------

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
        on_result: Optional[Callable[[int, UnitReport, Any], None]] = None,
    ) -> List[Any]:
        """Supervise a batch; results (or :class:`UnitFailure`) in order.

        ``on_result(index, report, result)`` fires in submission order
        as each unit settles -- for checkpoint journaling.
        """
        units = list(units)
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        started = time.monotonic()
        with tele.span(
            "supervisor.map",
            executor=self.name,
            units=len(units),
            workers=self.workers,
        ):
            if self.workers > 1 and len(units) > 1:
                results, reports = self._map_parallel(
                    units, tele, logbook, started, on_result
                )
            else:
                results, reports = self._map_serial(
                    units, tele, logbook, started, on_result
                )
        self.last_reports = reports
        tele.count("engine.units", sum(1 for r in reports if r.ok))
        return results

    # -- shared supervision machinery --------------------------------------------

    def _wrap(self, unit: WorkUnit, attempt: int) -> WorkUnit:
        """The unit as actually executed for one attempt (chaos-aware)."""
        if self.chaos is None:
            return unit
        fault = self.chaos.fault_for(unit.key, attempt)
        return WorkUnit(
            key=unit.key,
            fn=chaos_call,
            args=(
                fault,
                self.chaos.hang_s,
                unit.key,
                attempt,
                os.getpid(),
                unit.fn,
                unit.args,
                unit.kwargs,
            ),
        )

    def _on_failure(
        self,
        state: _UnitState,
        exc: BaseException,
        tele: Telemetry,
        logbook,
        started: float,
    ) -> Optional[UnitReport]:
        """Triage one failed attempt.

        Returns the final (quarantined) report when the unit is out of
        budget, or ``None`` when the supervisor should retry.
        """
        failure_class = classify_failure(exc)
        attempts = state.attempt + 1
        tele.count("resilient.failures", unit_class=failure_class.value)
        if isinstance(exc, UnitTimeoutError):
            state.timeouts += 1
            tele.count("resilient.timeouts")
        retry = (
            failure_class.transient
            and state.retries < self.policy.max_retries
        )
        if not retry:
            tele.count("resilient.quarantined", unit_class=failure_class.value)
            self._log(
                logbook, started, "engine",
                f"quarantine {state.unit.key} after {attempts} attempt(s): "
                f"{failure_class.value} ({exc.__class__.__name__})",
            )
            return UnitReport(
                key=state.unit.key,
                status="quarantined",
                attempts=attempts,
                retries=state.retries,
                timeouts=state.timeouts,
                failure_class=failure_class,
                error=f"{exc.__class__.__name__}: {exc}",
            )
        state.retries += 1
        state.attempt += 1
        tele.count("resilient.retries", unit_class=failure_class.value)
        delay = self.policy.backoff_delay(state.retries)
        self._log(
            logbook, started, "engine",
            f"retry {state.unit.key} (attempt {state.attempt + 1}, "
            f"{failure_class.value}, backoff {delay:.3f}s)",
        )
        self._sleep(delay)
        return None

    # -- serial path -------------------------------------------------------------

    def _attempt_serial(self, unit: WorkUnit, attempt: int) -> Any:
        wrapped = self._wrap(unit, attempt)
        if self.policy.timeout_s is None:
            return wrapped.run()
        return _run_in_thread(wrapped, self.policy.timeout_s)

    def _map_serial(
        self,
        units: Sequence[WorkUnit],
        tele: Telemetry,
        logbook,
        started: float,
        on_result,
    ):
        results: List[Any] = []
        reports: List[UnitReport] = []
        for index, unit in enumerate(units):
            result, report = self._supervise_one(
                _UnitState(unit=unit), tele, logbook, started
            )
            results.append(result)
            reports.append(report)
            if on_result is not None:
                on_result(index, report, result)
        return results, reports

    def _supervise_one(
        self,
        state: _UnitState,
        tele: Telemetry,
        logbook,
        started: float,
    ):
        """Run one unit to completion in-process, honoring *state*.

        Takes an existing :class:`_UnitState` (not just a unit) so the
        parallel-to-serial degradation path keeps the attempt/retry/
        timeout budget a unit already burned in the pool -- and so
        chaos faults keep firing at the right attempt numbers.
        """
        unit = state.unit
        self._log(
            logbook, started, "engine", f"run {unit.key} (supervised)"
        )
        while True:
            attempt_started = time.perf_counter()
            try:
                result = self._attempt_serial(unit, state.attempt)
            except CampaignInterrupted:
                raise
            except Exception as exc:
                report = self._on_failure(
                    state, exc, tele, logbook, started
                )
                if report is None:
                    continue
                result = UnitFailure(
                    key=unit.key,
                    failure_class=report.failure_class,
                    attempts=report.attempts,
                    error=report.error,
                )
            else:
                tele.observe(
                    "engine.unit_seconds",
                    time.perf_counter() - attempt_started,
                )
                report = UnitReport(
                    key=unit.key,
                    status="ok",
                    attempts=state.attempt + 1,
                    retries=state.retries,
                    timeouts=state.timeouts,
                )
                self._log(logbook, started, "engine", f"done {unit.key}")
            state.done = True
            return result, report

    # -- parallel path -----------------------------------------------------------

    def _map_parallel(
        self,
        units: Sequence[WorkUnit],
        tele: Telemetry,
        logbook,
        started: float,
        on_result,
    ):
        states = [_UnitState(unit=unit) for unit in units]
        results: List[Any] = [None] * len(units)
        reports: List[UnitReport] = [None] * len(units)  # type: ignore[list-item]
        breakages = 0
        degraded = False
        pool = self.pool

        def _submit(state: _UnitState) -> None:
            wrapped = self._wrap(state.unit, state.attempt)
            state.future = pool.submit(
                wrapped.fn, *wrapped.args, **wrapped.kwargs
            )

        def _resubmit_pending() -> None:
            # After a pool breakage every uncollected future is void;
            # units are pure functions of their arguments, so rerunning
            # them at their current attempt number is safe and cannot
            # perturb any RNG stream.
            for state in states:
                if not state.done:
                    _submit(state)

        try:
            try:
                pool.ensure(tele)
                for state in states:
                    self._log(
                        logbook, started, "engine",
                        f"dispatch {state.unit.key} "
                        f"(supervised x{self.workers})",
                    )
                    _submit(state)
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                # No process support at all: degrade immediately.
                self._log(
                    logbook, started, "engine",
                    f"process pool unavailable "
                    f"({exc.__class__.__name__}); degrading to serial",
                )
                tele.count("resilient.degraded")
                return self._map_serial(
                    units, tele, logbook, started, on_result
                )

            for index, state in enumerate(states):
                while not state.done:
                    if degraded:
                        # Continue the *same* _UnitState serially so the
                        # attempt/retry/timeout budget already burned in
                        # the pool carries over instead of resetting.
                        results[index], reports[index] = self._supervise_one(
                            state, tele, logbook, started
                        )
                        break
                    dispatch_started = time.perf_counter()
                    try:
                        result = state.future.result(
                            timeout=self.policy.timeout_s
                        )
                    except concurrent.futures.TimeoutError:
                        # The worker may be hung; the future cannot be
                        # cancelled once running, so retire the whole
                        # pool (a Control-PC power cycle) and count it
                        # as a breakage.
                        breakages += 1
                        tele.count("resilient.pool_breakages")
                        pool.kill_workers(tele)
                        exceeded = breakages > self.policy.max_pool_breakages
                        if exceeded:
                            degraded = True
                            tele.count("resilient.degraded")
                            self._log(
                                logbook, started, "engine",
                                "workers keep dying; degrading to serial",
                            )
                        else:
                            pool.ensure(tele)
                        timeout_exc = UnitTimeoutError(
                            f"unit {state.unit.key!r} exceeded the "
                            f"{self.policy.timeout_s:.3f}s response timeout"
                        )
                        report = self._on_failure(
                            state, timeout_exc, tele, logbook, started
                        )
                        if report is not None:
                            self._finish_failed(state, report, results,
                                                reports, index)
                        if not degraded:
                            _resubmit_pending()
                        continue
                    except BrokenProcessPool as exc:
                        # The pool died; the unit whose future we were
                        # waiting on is not necessarily the culprit, so
                        # breakages are budgeted separately
                        # (max_pool_breakages) and never consume a
                        # unit's retry budget.
                        breakages += 1
                        tele.count("resilient.pool_breakages")
                        pool.mark_broken()
                        if breakages > self.policy.max_pool_breakages:
                            degraded = True
                            tele.count("resilient.degraded")
                            self._log(
                                logbook, started, "engine",
                                "workers keep dying; degrading to serial",
                            )
                            continue
                        self._log(
                            logbook, started, "engine",
                            f"worker died ({exc.__class__.__name__}); "
                            f"restarting pool "
                            f"(breakage {breakages}/"
                            f"{self.policy.max_pool_breakages})",
                        )
                        pool.ensure(tele)
                        _resubmit_pending()
                        continue
                    except CampaignInterrupted:
                        raise
                    except Exception as exc:
                        report = self._on_failure(
                            state, exc, tele, logbook, started
                        )
                        if report is None:
                            _submit(state)
                        else:
                            self._finish_failed(state, report, results,
                                                reports, index)
                        continue
                    # Success.
                    tele.observe(
                        "engine.unit_seconds",
                        time.perf_counter() - dispatch_started,
                    )
                    results[index] = result
                    reports[index] = UnitReport(
                        key=state.unit.key,
                        status="ok",
                        attempts=state.attempt + 1,
                        retries=state.retries,
                        timeouts=state.timeouts,
                    )
                    state.done = True
                    self._log(
                        logbook, started, "engine", f"done {state.unit.key}"
                    )
                if on_result is not None:
                    on_result(index, reports[index], results[index])
        except BaseException:
            # Interrupt/SIGTERM path: release the processes instead of
            # keeping a half-cancelled pool warm.
            pool.close(cancel=True)
            raise
        if degraded:
            # The pool was killed or marked broken on the way down;
            # reap whatever is left so nothing lingers next to the
            # serial continuation.
            pool.close(cancel=True)
        return results, reports

    @staticmethod
    def _finish_failed(
        state: _UnitState,
        report: UnitReport,
        results: List[Any],
        reports: List[UnitReport],
        index: int,
    ) -> None:
        results[index] = UnitFailure(
            key=state.unit.key,
            failure_class=report.failure_class,
            attempts=report.attempts,
            error=report.error,
        )
        reports[index] = report
        state.done = True

    def __repr__(self) -> str:
        return (
            f"SupervisedExecutor(workers={self.workers}, "
            f"policy={self.policy!r})"
        )
