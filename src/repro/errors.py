"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-types map to the
major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An experiment or platform was configured with invalid parameters."""


class VoltageError(ConfigurationError):
    """A requested voltage is outside the regulator's reachable range."""


class FrequencyError(ConfigurationError):
    """A requested frequency is outside the PLL's reachable range."""


class GeometryError(ConfigurationError):
    """An SRAM array or cache was declared with an impossible geometry."""


class TechError(ConfigurationError):
    """The technology-node registry or model was misused (unknown node
    name, duplicate registration, physically inconsistent parameters,
    or an evaluation outside the model's valid voltage range)."""


class ProtectionError(ReproError):
    """An ECC/parity codec was used with mismatched word sizes."""


class CodecError(ProtectionError):
    """The codec registry or plugin API was misused (unknown codec name,
    duplicate registration, malformed plugin)."""


class InjectionError(ReproError):
    """A fault-injection request referenced a nonexistent bit or array."""


class BeamError(ReproError):
    """The beam facility was driven outside its operational envelope."""


class EngineError(ReproError):
    """The execution engine was configured or driven incorrectly."""


class PoolUnavailable(EngineError):
    """The worker-pool *infrastructure* failed (spawn, transport, IPC).

    Deliberately distinct from an exception raised by a unit function:
    executors react to pool trouble (fall back to serial, degrade),
    while unit failures must surface to the caller unchanged.
    """


class SessionError(ReproError):
    """A test session was used in an invalid order (e.g. results before run)."""


class WorkloadError(ReproError):
    """A workload failed verification in fault-free conditions."""


class AnalysisError(ReproError):
    """Raw data handed to the analysis layer was inconsistent."""


class TelemetryError(ReproError):
    """A telemetry instrument, manifest, or merge was used incorrectly."""


class ReproIOError(ReproError):
    """An on-disk artifact is missing, torn, or corrupt beyond salvage."""


class SupervisionError(ReproError):
    """The resilient execution layer was configured or driven incorrectly."""


class ChaosError(ReproError):
    """A chaos specification is malformed (harness self-test layer)."""


class CampaignInterrupted(ReproError):
    """A campaign run was interrupted (SIGTERM or injected crash).

    The journal written so far is intact; ``repro-campaign run --resume``
    picks the campaign up from the last completed work unit.
    """


class SchedulerError(ReproError):
    """The campaign broker/service layer was configured or driven
    incorrectly (bad spec, unknown submission, stale lease misuse)."""


class SchedulerBusy(SchedulerError):
    """The broker's bounded work queue cannot accept a submission.

    Backpressure, not failure: the campaign was *rejected before
    queueing*, nothing was enqueued, and resubmitting later (or against
    a broker with spare capacity) is safe.  The CLI maps this to exit
    code 5.
    """


class LeaseError(SchedulerError):
    """A lease operation referenced an unknown, expired-and-reassigned,
    or already-settled work unit lease."""


class StaleFencingToken(SchedulerError):
    """A store write carried a fencing epoch that has been superseded.

    Raised when a broker whose lease expired (and was taken over by a
    broker holding a higher epoch) -- or whose identity was re-registered
    by a newer incarnation -- tries to commit or publish a lease.  The
    write was rejected *before* touching shared state: the stale
    broker's payload is never adopted, closing the double-commit window
    that ``os.link`` exclusivity alone cannot close on non-POSIX-atomic
    network filesystems.
    """


class StoreUnavailable(SchedulerError):
    """The shared store's transient-I/O retry budget is exhausted.

    EIO/ESTALE/EAGAIN-class errors are retried with a bounded,
    deterministic backoff; when the filesystem keeps failing past the
    budget, the operation degrades to this typed failure (backpressure,
    like :class:`SchedulerBusy`) instead of wedging or silently
    dropping state.
    """


class LogbookError(ReproError):
    """A logbook entry used a kind outside the documented closed set."""


class ValidationError(ReproError):
    """A validate-subsystem misuse: bad gate parameters, malformed
    golden files, or an unknown oracle/suite/pairing name.

    Gate *failures* are not errors -- they are reported as
    :class:`~repro.validate.GateResult` with ``ok=False``; this error
    covers the cases where the validation itself cannot run.
    """
