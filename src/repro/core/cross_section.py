"""Dynamic cross-section (Eq. 1 of the paper).

    DCS = number of events / particle fluence      [cm^2]

The DCS measures how likely a radiation-induced event (memory upset,
SDC, crash) is per unit particle fluence, under a given workload,
configuration and environment.  Larger DCS = more susceptible.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import CONFIDENCE_LEVEL
from ..errors import AnalysisError
from .confidence import ConfidenceInterval, poisson_interval


@dataclass(frozen=True)
class DcsEstimate:
    """A measured dynamic cross-section with its Poisson uncertainty.

    Attributes
    ----------
    events:
        Observed event count.
    fluence_per_cm2:
        Accumulated particle fluence.
    interval:
        95 % (by default) confidence interval on the DCS in cm^2.
    """

    events: int
    fluence_per_cm2: float
    interval: ConfidenceInterval

    @property
    def cm2(self) -> float:
        """Point estimate of the cross-section, cm^2."""
        return self.interval.value

    def per_bit(self, bits: int) -> float:
        """Cross-section normalized per bit, cm^2/bit."""
        if bits <= 0:
            raise AnalysisError("bit count must be positive")
        return self.cm2 / bits


def dynamic_cross_section(
    events: int,
    fluence_per_cm2: float,
    level: float = CONFIDENCE_LEVEL,
) -> DcsEstimate:
    """Compute the DCS of *events* over *fluence_per_cm2* (Eq. 1)."""
    if events < 0:
        raise AnalysisError("event count must be nonnegative")
    if fluence_per_cm2 <= 0:
        raise AnalysisError("fluence must be positive")
    interval = poisson_interval(events, level).scaled(1.0 / fluence_per_cm2)
    return DcsEstimate(
        events=events, fluence_per_cm2=fluence_per_cm2, interval=interval
    )


def per_bit_cross_section(
    events: int, fluence_per_cm2: float, bits: int
) -> float:
    """Per-bit cross-section, cm^2/bit -- the Section 3.3 sanity metric.

    The paper expects ~1e-15 cm^2/bit for 28 nm SRAM; the reproduction's
    Table 2 sessions land below that because workload masking hides a
    fraction of raw upsets.
    """
    return dynamic_cross_section(events, fluence_per_cm2).per_bit(bits)
