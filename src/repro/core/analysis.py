"""Campaign-level analysis: from raw session data to the paper's results.

:class:`CampaignAnalysis` wraps a
:class:`~repro.harness.campaign.CampaignResult` and exposes one method
per published result: Table 2 rows, Fig. 8 failure mixes, Fig. 11 FIT
rates, Fig. 12/13 notification splits, and per-benchmark upset rates
(Fig. 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import AnalysisError
from ..harness.campaign import CampaignResult
from ..injection.events import OutcomeKind
from .fit import FitEstimate, fit_rate, ser_fit_per_mbit
from .rates import RateEstimate, rate_per_minute
from .report import Table


class CampaignAnalysis:
    """Analysis views over a completed campaign."""

    def __init__(self, campaign: CampaignResult) -> None:
        if not campaign.sessions:
            raise AnalysisError("campaign has no sessions")
        if campaign.sram_bits <= 0:
            raise AnalysisError("campaign must record the chip SRAM size")
        self.campaign = campaign

    # -- Table 2 -------------------------------------------------------------------

    def table2(self) -> Table:
        """Regenerate Table 2 (one column per session, transposed to rows)."""
        table = Table(
            title="Table 2: Neutron Beam Time Sessions",
            header=[
                "Session",
                "Voltage (mV)",
                "Duration (min)",
                "Fluence (n/cm2)",
                "NYC-equivalent (years)",
                "SDCs and crashes (#)",
                "SDCs and crashes rate (/min)",
                "Memory upsets (#)",
                "Memory upsets rate (/min)",
                "Memory SER (FIT/Mbit)",
            ],
        )
        for label in self.campaign.labels():
            s = self.campaign.session(label)
            table.add_row(
                label,
                s.plan.point.pmd_mv,
                round(s.duration_minutes, 1),
                s.fluence.fluence_per_cm2,
                s.fluence.nyc_equivalent_years(),
                s.failure_count,
                s.failure_rate_per_min,
                s.upset_count,
                s.upset_rate_per_min,
                s.memory_ser_fit_per_mbit(self.campaign.sram_bits),
            )
        return table

    # -- rates ----------------------------------------------------------------------

    def upset_rate(self, label: str) -> RateEstimate:
        """Memory-upset rate of one session, with its 95 % interval."""
        s = self.campaign.session(label)
        return rate_per_minute(s.upset_count, s.duration_minutes)

    def benchmark_upset_rates(self, label: str) -> Dict[str, RateEstimate]:
        """Per-benchmark upset rates within one session (Fig. 5 view)."""
        s = self.campaign.session(label)
        per_bench: Dict[str, List[float]] = {}
        for run in s.runs:
            per_bench.setdefault(run.benchmark, [0.0, 0.0])
            per_bench[run.benchmark][0] += run.upsets.total_upsets
            per_bench[run.benchmark][1] += run.duration_s / 60.0
        out = {}
        for bench, (events, minutes) in sorted(per_bench.items()):
            if minutes > 0:
                out[bench] = rate_per_minute(int(events), minutes)
        return out

    def level_upset_rates(self, label: str) -> Dict[str, float]:
        """Upsets/minute per (cache level, severity) for one session.

        Keys look like ``"L2 Cache/CE"`` -- the Fig. 6/7 bars.
        """
        s = self.campaign.session(label)
        minutes = s.duration_minutes
        if minutes <= 0:
            raise AnalysisError(f"session {label!r} has no beam time")
        rates: Dict[str, float] = {}
        for (level, severity), count in sorted(
            s.upsets.counts.items(), key=lambda kv: (kv[0][0].value, kv[0][1].value)
        ):
            rates[f"{level.value}/{severity.value}"] = count / minutes
        return rates

    # -- failure mixes (Fig. 8) --------------------------------------------------------

    def failure_mix(self, label: str) -> Dict[OutcomeKind, float]:
        """Failure-category percentages for one session (Fig. 8)."""
        s = self.campaign.session(label)
        counts = s.failure_counts()
        total = sum(counts.values())
        if total == 0:
            raise AnalysisError(f"session {label!r} observed no failures")
        return {kind: 100.0 * n / total for kind, n in counts.items()}

    # -- FIT rates (Figs. 11-13) ----------------------------------------------------------

    def category_fit(self, label: str, kind: OutcomeKind) -> FitEstimate:
        """FIT of one failure category in one session (a Fig. 11 bar)."""
        s = self.campaign.session(label)
        events = len(s.failures_of_kind(kind))
        return fit_rate(events, s.fluence.fluence_per_cm2)

    def total_fit(self, label: str) -> FitEstimate:
        """Total failure FIT of one session (Fig. 11's Total bar)."""
        s = self.campaign.session(label)
        return fit_rate(s.failure_count, s.fluence.fluence_per_cm2)

    def sdc_fit_by_notification(self, label: str) -> Dict[str, FitEstimate]:
        """SDC FIT split by hardware notification (Figs. 12-13)."""
        s = self.campaign.session(label)
        sdcs = s.failures_of_kind(OutcomeKind.SDC)
        notified = sum(1 for f in sdcs if f.hw_notified)
        silent = len(sdcs) - notified
        fluence = s.fluence.fluence_per_cm2
        return {
            "without_notification": fit_rate(silent, fluence),
            "with_notification": fit_rate(notified, fluence),
        }

    def memory_ser(self, label: str) -> float:
        """Memory SER in FIT/Mbit for one session (Table 2, last row)."""
        s = self.campaign.session(label)
        return ser_fit_per_mbit(
            s.upset_count, s.fluence.fluence_per_cm2, self.campaign.sram_bits
        )

    # -- cross-session comparisons -----------------------------------------------------------

    def sdc_fit_increase(
        self, low_label: str, nominal_label: Optional[str] = None
    ) -> float:
        """SDC FIT multiplier of a low-voltage session over nominal.

        The paper's headline: 16.3x at Vmin (920 mV) vs nominal.
        """
        nominal_label = nominal_label or self.campaign.labels()[0]
        low = self.category_fit(low_label, OutcomeKind.SDC).fit
        nom = self.category_fit(nominal_label, OutcomeKind.SDC).fit
        if nom <= 0:
            raise AnalysisError("nominal session has zero SDC FIT")
        return low / nom

    def total_fit_increase(
        self, low_label: str, nominal_label: Optional[str] = None
    ) -> float:
        """Total FIT multiplier of a low-voltage session over nominal."""
        nominal_label = nominal_label or self.campaign.labels()[0]
        low = self.total_fit(low_label).fit
        nom = self.total_fit(nominal_label).fit
        if nom <= 0:
            raise AnalysisError("nominal session has zero total FIT")
        return low / nom
