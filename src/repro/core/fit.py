"""Failures-in-time (FIT) rates (Eq. 2 of the paper).

    FIT = DCS * 13 n/cm^2/h * 1e9 h

i.e. the expected number of failures per billion device-hours when the
device operates in the reference New York City sea-level neutron
environment (JEDEC JESD89B).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import (
    CONFIDENCE_LEVEL,
    FIT_HOURS,
    NYC_FLUX_PER_CM2_HOUR,
)
from ..errors import AnalysisError
from ..units import bits_to_mbit
from .confidence import ConfidenceInterval
from .cross_section import DcsEstimate, dynamic_cross_section


@dataclass(frozen=True)
class FitEstimate:
    """A FIT rate with its confidence interval.

    Attributes
    ----------
    interval:
        Interval on the FIT value.
    dcs:
        The underlying cross-section estimate.
    """

    interval: ConfidenceInterval
    dcs: DcsEstimate

    @property
    def fit(self) -> float:
        """Point estimate, failures per 1e9 device-hours."""
        return self.interval.value

    @property
    def events(self) -> int:
        """The event count behind the estimate."""
        return self.dcs.events


def fit_from_dcs(
    dcs: DcsEstimate,
    flux_per_cm2_hour: float = NYC_FLUX_PER_CM2_HOUR,
) -> FitEstimate:
    """Convert a cross-section into a FIT rate for an environment flux."""
    if flux_per_cm2_hour <= 0:
        raise AnalysisError("environment flux must be positive")
    factor = flux_per_cm2_hour * FIT_HOURS
    return FitEstimate(interval=dcs.interval.scaled(factor), dcs=dcs)


def fit_rate(
    events: int,
    fluence_per_cm2: float,
    flux_per_cm2_hour: float = NYC_FLUX_PER_CM2_HOUR,
    level: float = CONFIDENCE_LEVEL,
) -> FitEstimate:
    """FIT rate straight from an event count and a fluence (Eqs. 1+2)."""
    dcs = dynamic_cross_section(events, fluence_per_cm2, level)
    return fit_from_dcs(dcs, flux_per_cm2_hour)


def ser_fit_per_mbit(
    upsets: int,
    fluence_per_cm2: float,
    sram_bits: int,
    flux_per_cm2_hour: float = NYC_FLUX_PER_CM2_HOUR,
) -> float:
    """Memory soft-error rate in FIT per Mbit (Table 2, last row)."""
    if sram_bits <= 0:
        raise AnalysisError("SRAM size must be positive")
    estimate = fit_rate(upsets, fluence_per_cm2, flux_per_cm2_hour)
    return estimate.fit / bits_to_mbit(sram_bits)


def mttf_hours(fit: float) -> float:
    """Mean time to failure implied by a FIT rate, in hours."""
    if fit <= 0:
        raise AnalysisError("FIT must be positive for a finite MTTF")
    return FIT_HOURS / fit
