"""Table rendering: ASCII output and CSV export.

Every experiment driver produces a :class:`Table`; benches print them in
the paper's row/column layout and can additionally persist CSVs for
plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import List, Union

from ..errors import AnalysisError

Cell = Union[str, int, float]


@dataclass
class Table:
    """A titled grid of cells with a header row."""

    title: str
    header: List[str]
    rows: List[List[Cell]] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        """Append one row (must match the header width)."""
        if len(cells) != len(self.header):
            raise AnalysisError(
                f"row has {len(cells)} cells, header has {len(self.header)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Cell]:
        """Extract one column by header name."""
        if name not in self.header:
            raise AnalysisError(f"no column {name!r}")
        idx = self.header.index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Render as aligned ASCII text."""
        return render_table(self)

    def to_csv(self) -> str:
        """Render as CSV text (header first)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.header)
        for row in self.rows:
            writer.writerow(_format_cell(c) for c in row)
        return buffer.getvalue()


def _format_cell(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) >= 1e5 or abs(cell) < 1e-3):
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def render_table(table: Table) -> str:
    """Aligned ASCII rendering of a :class:`Table`."""
    formatted = [[_format_cell(c) for c in row] for row in table.rows]
    widths = [
        max(len(table.header[i]), *(len(r[i]) for r in formatted))
        if formatted
        else len(table.header[i])
        for i in range(len(table.header))
    ]
    lines = [table.title, ""]
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(table.header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in formatted:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_csv(table: Table, path: str) -> None:
    """Persist a table as a CSV file."""
    with open(path, "w", newline="") as handle:
        handle.write(table.to_csv())
