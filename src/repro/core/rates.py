"""Event-rate estimation helpers (upsets/minute and friends)."""

from __future__ import annotations

from dataclasses import dataclass

from ..constants import CONFIDENCE_LEVEL
from ..errors import AnalysisError
from .confidence import ConfidenceInterval, poisson_rate_interval


@dataclass(frozen=True)
class RateEstimate:
    """An event rate per minute with its Poisson uncertainty."""

    events: int
    minutes: float
    interval: ConfidenceInterval

    @property
    def per_minute(self) -> float:
        """Point estimate, events per minute."""
        return self.interval.value

    @property
    def per_hour(self) -> float:
        """Point estimate, events per hour."""
        return self.per_minute * 60.0

    def relative_to(self, baseline: "RateEstimate") -> float:
        """Rate ratio against a baseline (the susceptibility multiplier)."""
        if baseline.per_minute <= 0:
            raise AnalysisError("baseline rate must be positive")
        return self.per_minute / baseline.per_minute

    def increase_percent(self, baseline: "RateEstimate") -> float:
        """Percentage increase over a baseline (Fig. 10's y-axis)."""
        return (self.relative_to(baseline) - 1.0) * 100.0


def rate_per_minute(
    events: int, minutes: float, level: float = CONFIDENCE_LEVEL
) -> RateEstimate:
    """Estimate an events-per-minute rate with a 95 % interval."""
    if events < 0:
        raise AnalysisError("event count must be nonnegative")
    if minutes <= 0:
        raise AnalysisError("duration must be positive")
    return RateEstimate(
        events=events,
        minutes=minutes,
        interval=poisson_rate_interval(events, minutes, level),
    )
