"""Chip-population guardband analytics.

The paper characterizes one chip; a fleet operator undervolts
thousands.  Chip-to-chip Vmin variation (measured by the related work
the paper builds on, [36]/[57]/[74]) decides whether the fleet runs at
a single conservative voltage or per-chip characterized settings --
and how much of the guardband each policy actually recovers.

Model: per-chip safe Vmin ~ Normal(mu, sigma).  A fleet-wide setting V
is safe for a chip iff V >= its Vmin, so the fleet-safe voltage at
a target violation probability epsilon is the (1-epsilon) quantile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..constants import PMD_NOMINAL_MV, VOLTAGE_STEP_MV
from ..errors import AnalysisError


@dataclass(frozen=True)
class VminPopulation:
    """Chip-to-chip distribution of the safe Vmin at one frequency.

    Attributes
    ----------
    mean_mv:
        Population mean of the safe Vmin (the studied chip's 920 mV is
        one draw from this).
    sigma_mv:
        Chip-to-chip standard deviation (~10-15 mV is typical of the
        multi-chip studies [36][74]).
    nominal_mv:
        The shared nominal voltage.
    """

    mean_mv: float = 917.0
    sigma_mv: float = 12.0
    nominal_mv: float = float(PMD_NOMINAL_MV)

    def __post_init__(self) -> None:
        if self.sigma_mv <= 0:
            raise AnalysisError("sigma must be positive")
        if self.mean_mv >= self.nominal_mv:
            raise AnalysisError("population mean must sit below nominal")

    # -- population statistics ------------------------------------------------

    def violation_probability(self, fleet_voltage_mv: float) -> float:
        """P(a random chip's Vmin exceeds the fleet setting)."""
        z = (fleet_voltage_mv - self.mean_mv) / self.sigma_mv
        return float(stats.norm.sf(z))

    def fleet_safe_voltage_mv(
        self, violation_target: float = 1e-4, step_mv: int = VOLTAGE_STEP_MV
    ) -> int:
        """Lowest grid voltage whose violation probability is under target."""
        if not 0 < violation_target < 1:
            raise AnalysisError("violation target must be in (0, 1)")
        quantile = self.mean_mv + self.sigma_mv * stats.norm.isf(
            violation_target
        )
        # Round *up* to the regulator grid: safety is one-sided.
        steps = -(-quantile // step_mv)
        voltage = int(steps * step_mv)
        return min(voltage, int(self.nominal_mv))

    def sample_chips(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw per-chip Vmins (clipped to the nominal ceiling)."""
        if count <= 0:
            raise AnalysisError("chip count must be positive")
        draws = rng.normal(self.mean_mv, self.sigma_mv, size=count)
        return np.minimum(draws, self.nominal_mv)

    # -- guardband recovery -----------------------------------------------------

    def guardband_recovered_fleetwide(
        self, violation_target: float = 1e-4, margin_mv: int = 0
    ) -> float:
        """Fraction of the mean guardband a single fleet voltage recovers.

        ``margin_mv`` models design implication #2: operating that many
        millivolts above the identified safe point.
        """
        fleet_v = self.fleet_safe_voltage_mv(violation_target) + margin_mv
        recovered = self.nominal_mv - fleet_v
        available = self.nominal_mv - self.mean_mv
        return max(recovered, 0.0) / available

    def guardband_recovered_per_chip(
        self, count: int, rng: np.random.Generator, margin_mv: int = 0
    ) -> float:
        """Mean recovered-guardband fraction with per-chip settings."""
        vmins = self.sample_chips(count, rng)
        recovered = np.maximum(self.nominal_mv - (vmins + margin_mv), 0.0)
        available = self.nominal_mv - self.mean_mv
        return float(recovered.mean() / available)


def per_chip_advantage_mv(
    population: VminPopulation, violation_target: float = 1e-4
) -> float:
    """Extra undervolt (mV) per-chip characterization buys on average.

    The fleet-wide setting must clear the population *tail*; per-chip
    settings clear each chip's own Vmin, recovering the difference
    between the (1-eps) quantile and the mean.
    """
    fleet_v = population.fleet_safe_voltage_mv(violation_target)
    return float(fleet_v - population.mean_mv)
