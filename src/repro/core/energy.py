"""Energy accounting and reliability-constrained operating-point selection.

Two analyses the paper motivates but leaves to the reader:

* **Energy per unit of work.**  Undervolting at fixed frequency cuts
  power with no performance cost, so energy/work falls one-for-one with
  power.  Cutting the *clock* also cuts power but stretches runtime, so
  the energy story at 790 mV / 900 MHz needs the runtime model, not
  just Fig. 9's watts.
* **Design implication #2 as an optimizer.**  "Operate slightly above
  the lowest safe Vmin": :class:`OperatingPointSelector` makes that
  quantitative -- among the characterized settings, pick the
  lowest-energy point whose SDC FIT stays under a budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import AnalysisError
from ..soc.dvfs import OperatingPoint, TABLE3_OPERATING_POINTS
from ..soc.power import PowerModel


@dataclass(frozen=True)
class EnergyModel:
    """Energy/runtime model over operating points.

    Attributes
    ----------
    power_model:
        Calibrated chip power model.
    reference_freq_mhz:
        Frequency the workload runtimes were measured at.
    compute_bound_fraction:
        Fraction of runtime that scales inversely with clock frequency
        (1.0 = fully compute bound; memory-bound phases do not stretch).
    """

    power_model: PowerModel
    reference_freq_mhz: int = 2400
    compute_bound_fraction: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.compute_bound_fraction <= 1.0:
            raise AnalysisError("compute-bound fraction must be in [0, 1]")
        if self.reference_freq_mhz <= 0:
            raise AnalysisError("reference frequency must be positive")

    def runtime_scale(self, freq_mhz: int) -> float:
        """Runtime multiplier at *freq_mhz* vs the reference clock."""
        if freq_mhz <= 0:
            raise AnalysisError("frequency must be positive")
        slowdown = self.reference_freq_mhz / freq_mhz
        f = self.compute_bound_fraction
        return f * slowdown + (1.0 - f)

    def runtime_s(self, reference_runtime_s: float, point: OperatingPoint) -> float:
        """Workload runtime at an operating point."""
        if reference_runtime_s <= 0:
            raise AnalysisError("reference runtime must be positive")
        return reference_runtime_s * self.runtime_scale(point.freq_mhz)

    def energy_joules(
        self,
        reference_runtime_s: float,
        point: OperatingPoint,
        activity: float = 1.0,
    ) -> float:
        """Energy of one workload execution at an operating point."""
        watts = self.power_model.total_watts(
            point.pmd_mv, point.soc_mv, point.freq_mhz, activity=activity
        )
        return watts * self.runtime_s(reference_runtime_s, point)

    def energy_delay_product(
        self, reference_runtime_s: float, point: OperatingPoint
    ) -> float:
        """EDP = energy x runtime (J*s), the usual efficiency figure."""
        runtime = self.runtime_s(reference_runtime_s, point)
        return self.energy_joules(reference_runtime_s, point) * runtime

    def savings_vs(
        self,
        reference_runtime_s: float,
        point: OperatingPoint,
        baseline: OperatingPoint,
    ) -> float:
        """Fractional energy savings of *point* over *baseline*."""
        base = self.energy_joules(reference_runtime_s, baseline)
        here = self.energy_joules(reference_runtime_s, point)
        return (base - here) / base


@dataclass(frozen=True)
class CandidatePoint:
    """One characterized operating point with its measured FIT rates."""

    point: OperatingPoint
    sdc_fit: float
    total_fit: float

    def __post_init__(self) -> None:
        if self.sdc_fit < 0 or self.total_fit < 0:
            raise AnalysisError("FIT rates must be nonnegative")


class OperatingPointSelector:
    """Chooses the most energy-efficient point under a reliability budget.

    Parameters
    ----------
    energy_model:
        Energy accounting model.
    reference_runtime_s:
        Runtime of the representative workload at the reference clock.
    """

    def __init__(
        self,
        energy_model: EnergyModel,
        reference_runtime_s: float = 3.0,
    ) -> None:
        if reference_runtime_s <= 0:
            raise AnalysisError("reference runtime must be positive")
        self.energy_model = energy_model
        self.reference_runtime_s = reference_runtime_s

    def feasible(
        self,
        candidates: List[CandidatePoint],
        sdc_fit_budget: float,
        total_fit_budget: Optional[float] = None,
    ) -> List[CandidatePoint]:
        """Candidates whose FIT rates stay within the budgets."""
        if sdc_fit_budget <= 0:
            raise AnalysisError("SDC FIT budget must be positive")
        out = []
        for candidate in candidates:
            if candidate.sdc_fit > sdc_fit_budget:
                continue
            if total_fit_budget is not None and (
                candidate.total_fit > total_fit_budget
            ):
                continue
            out.append(candidate)
        return out

    def select(
        self,
        candidates: List[CandidatePoint],
        sdc_fit_budget: float,
        total_fit_budget: Optional[float] = None,
        *,
        preserve_performance: bool = False,
    ) -> CandidatePoint:
        """The lowest-energy feasible candidate.

        With ``preserve_performance=True``, candidates at reduced clock
        frequency are excluded (the paper's "voltage reduction does not
        affect performance, frequency reduction does").
        """
        feasible = self.feasible(candidates, sdc_fit_budget, total_fit_budget)
        if preserve_performance:
            reference = self.energy_model.reference_freq_mhz
            feasible = [c for c in feasible if c.point.freq_mhz == reference]
        if not feasible:
            raise AnalysisError("no operating point satisfies the FIT budget")
        return min(
            feasible,
            key=lambda c: self.energy_model.energy_joules(
                self.reference_runtime_s, c.point
            ),
        )


def candidates_from_paper_fit() -> List[CandidatePoint]:
    """The Table 3 points with the paper's Fig. 11/13 FIT rates."""
    nominal, safe, vmin, lowfreq = TABLE3_OPERATING_POINTS
    return [
        CandidatePoint(nominal, sdc_fit=2.54, total_fit=8.31),
        CandidatePoint(safe, sdc_fit=4.82, total_fit=8.66),
        CandidatePoint(vmin, sdc_fit=41.43, total_fit=44.94),
        CandidatePoint(lowfreq, sdc_fit=5.27, total_fit=11.42),
    ]
