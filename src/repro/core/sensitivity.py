"""One-at-a-time sensitivity of the headline outputs to the calibration.

Every reproduction stands on calibrated parameters; this module
quantifies how much each one steers the headline outputs (total upset
rate at Vmin, SDC rate at Vmin, the power-savings figure) when varied
over a plausibility band -- the tornado chart reviewers ask for.
Deterministic: it evaluates the calibrated *models*, not Monte-Carlo
sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..errors import AnalysisError
from ..injection.calibration import (
    LEVEL_BASE_RATES_980MV,
    LEVEL_VOLTAGE_SLOPES,
    LevelRateModel,
    OutcomeMixModel,
)
from ..soc.power import PowerModel

#: A parameterized output: factor -> output value.
OutputFn = Callable[[float], float]


@dataclass(frozen=True)
class SensitivityEntry:
    """One row of the tornado table.

    Attributes
    ----------
    parameter:
        What was varied.
    output:
        Which headline output was measured.
    low / nominal / high:
        Output at the low factor, factor 1, and the high factor.
    """

    parameter: str
    output: str
    low: float
    nominal: float
    high: float

    @property
    def swing(self) -> float:
        """|high - low| -- the tornado bar length."""
        return abs(self.high - self.low)

    @property
    def relative_swing(self) -> float:
        """Swing as a fraction of the nominal output."""
        if self.nominal == 0:
            raise AnalysisError("zero nominal output has no relative swing")
        return self.swing / abs(self.nominal)


def _rate_model_with(slope_factor: float = 1.0, base_factor: float = 1.0):
    return LevelRateModel(
        base_rates={
            key: rate * base_factor
            for key, rate in LEVEL_BASE_RATES_980MV.items()
        },
        slopes={
            level: k * slope_factor
            for level, k in LEVEL_VOLTAGE_SLOPES.items()
        },
    )


#: The calibrated parameters and the output each one feeds.
_STUDIES: Dict[str, Dict[str, OutputFn]] = {
    "level_voltage_slopes": {
        "upsets_per_min@920mV": lambda f: _rate_model_with(
            slope_factor=f
        ).total_rate_per_min(920, 920),
        "upsets_per_min@790mV": lambda f: _rate_model_with(
            slope_factor=f
        ).total_rate_per_min(790, 950),
    },
    "level_base_rates": {
        "upsets_per_min@980mV": lambda f: _rate_model_with(
            base_factor=f
        ).total_rate_per_min(980, 950),
        "upsets_per_min@920mV": lambda f: _rate_model_with(
            base_factor=f
        ).total_rate_per_min(920, 920),
    },
    "outcome_sdc_anchor": {
        "sdc_per_min@920mV": lambda f: OutcomeMixModel(
            anchors={
                key: {
                    cat: rate * (f if cat == "SDC" else 1.0)
                    for cat, rate in rates.items()
                }
                for key, rates in OutcomeMixModel().anchors.items()
            }
        ).rate_per_min("SDC", 2400, 920),
    },
    "pmd_dynamic_power": {
        "power_savings_pct@920mV": lambda f: _power_savings_with(f),
    },
}


def _power_savings_with(pmd_factor: float) -> float:
    base = PowerModel.calibrated()
    model = PowerModel(
        a_pmd=base.a_pmd * pmd_factor,
        a_soc=base.a_soc,
        p_static=base.p_static,
    )
    return model.savings_fraction(920, 920, 2400) * 100.0


def run_sensitivity(
    low: float = 0.8, high: float = 1.2
) -> List[SensitivityEntry]:
    """Evaluate every (parameter, output) pair over [low, 1, high]."""
    if not 0 < low < 1 < high:
        raise AnalysisError("need low < 1 < high factors")
    entries: List[SensitivityEntry] = []
    for parameter, outputs in _STUDIES.items():
        for output, fn in outputs.items():
            entries.append(
                SensitivityEntry(
                    parameter=parameter,
                    output=output,
                    low=float(fn(low)),
                    nominal=float(fn(1.0)),
                    high=float(fn(high)),
                )
            )
    entries.sort(key=lambda e: e.relative_swing, reverse=True)
    return entries


def dominant_parameter(entries: List[SensitivityEntry]) -> str:
    """The parameter with the largest relative swing on any output."""
    if not entries:
        raise AnalysisError("empty sensitivity results")
    return entries[0].parameter
