"""Confidence intervals for radiation-test statistics.

All error bars in the paper use a 95 % confidence level (Section 3.5).
Event counts in beam testing are Poisson; the exact (Garwood)
chi-square interval is the standard choice in SEE test guidelines
(JESD89B).  Failure probabilities (pfail) are binomial; the Wilson
score interval behaves well at the extreme proportions Fig. 4 probes.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy import stats

from ..constants import CONFIDENCE_LEVEL
from ..errors import AnalysisError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided interval around a point estimate."""

    value: float
    lower: float
    upper: float
    level: float = CONFIDENCE_LEVEL

    def __post_init__(self) -> None:
        if not self.lower <= self.value <= self.upper:
            raise AnalysisError(
                f"interval [{self.lower}, {self.upper}] does not contain "
                f"the estimate {self.value}"
            )
        if not 0 < self.level < 1:
            raise AnalysisError("confidence level must be in (0, 1)")

    @property
    def halfwidth(self) -> float:
        """Half the interval span (the symmetric error-bar length)."""
        return 0.5 * (self.upper - self.lower)

    def scaled(self, factor: float) -> "ConfidenceInterval":
        """Scale the whole interval (e.g. counts -> rates -> FIT)."""
        if factor < 0:
            raise AnalysisError("scale factor must be nonnegative")
        return ConfidenceInterval(
            value=self.value * factor,
            lower=self.lower * factor,
            upper=self.upper * factor,
            level=self.level,
        )


def poisson_interval(
    count: int, level: float = CONFIDENCE_LEVEL
) -> ConfidenceInterval:
    """Exact (Garwood) interval for a Poisson count.

    lower = chi2.ppf(alpha/2, 2k) / 2     (0 when k = 0)
    upper = chi2.ppf(1 - alpha/2, 2k + 2) / 2
    """
    if count < 0:
        raise AnalysisError("count must be nonnegative")
    if not 0 < level < 1:
        raise AnalysisError("confidence level must be in (0, 1)")
    alpha = 1.0 - level
    lower = 0.0 if count == 0 else 0.5 * stats.chi2.ppf(alpha / 2.0, 2 * count)
    upper = 0.5 * stats.chi2.ppf(1.0 - alpha / 2.0, 2 * count + 2)
    return ConfidenceInterval(
        value=float(count), lower=float(lower), upper=float(upper), level=level
    )


def poisson_rate_interval(
    count: int, exposure: float, level: float = CONFIDENCE_LEVEL
) -> ConfidenceInterval:
    """Interval on a Poisson rate = count / exposure."""
    if exposure <= 0:
        raise AnalysisError("exposure must be positive")
    return poisson_interval(count, level).scaled(1.0 / exposure)


def _check_binomial_args(successes: int, trials: int, level: float) -> None:
    if trials <= 0:
        raise AnalysisError("trials must be positive")
    if not 0 <= successes <= trials:
        raise AnalysisError("successes must be within [0, trials]")
    if not 0 < level < 1:
        raise AnalysisError("confidence level must be in (0, 1)")


def binomial_interval(
    successes: int, trials: int, level: float = CONFIDENCE_LEVEL
) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    _check_binomial_args(successes, trials, level)
    z = stats.norm.ppf(0.5 + level / 2.0)
    p = successes / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    margin = (
        z
        * ((p * (1 - p) / trials + z * z / (4 * trials * trials)) ** 0.5)
        / denom
    )
    # Clamp against floating-point residue at the extremes (p = 0 or 1,
    # where center -/+ margin should equal p exactly).
    lower = min(max(0.0, float(center - margin)), p)
    upper = max(min(1.0, float(center + margin)), p)
    return ConfidenceInterval(value=p, lower=lower, upper=upper, level=level)


def clopper_pearson_interval(
    successes: int, trials: int, level: float = CONFIDENCE_LEVEL
) -> ConfidenceInterval:
    """Exact (Clopper-Pearson) interval for a binomial proportion.

    Conservative by construction -- coverage is always >= *level* --
    which is the safe choice at the handful-of-events trial counts the
    Figs. 12-13 splits produce (where Wilson can under-cover).

    lower = Beta.ppf(alpha/2, k, n-k+1)        (0 when k = 0)
    upper = Beta.ppf(1-alpha/2, k+1, n-k)      (1 when k = n)
    """
    _check_binomial_args(successes, trials, level)
    alpha = 1.0 - level
    p = successes / trials
    if successes == 0:
        lower = 0.0
    else:
        lower = float(
            stats.beta.ppf(alpha / 2.0, successes, trials - successes + 1)
        )
    if successes == trials:
        upper = 1.0
    else:
        upper = float(
            stats.beta.ppf(1.0 - alpha / 2.0, successes + 1, trials - successes)
        )
    return ConfidenceInterval(
        value=p, lower=min(lower, p), upper=max(upper, p), level=level
    )
