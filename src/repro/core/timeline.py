"""Event-timeline analytics: arrival statistics and accumulation checks.

Section 3.3's central methodological constraint is that benchmark runs
stay short enough that *multiple* radiation events almost never land in
one run -- beam events must look like a homogeneous Poisson process,
not bursts.  These analytics verify that property on a session's event
stream (and would expose a broken injector or a flux excursion in a
real campaign's logs):

* exponential inter-arrival check (Kolmogorov-Smirnov),
* per-run multiplicity histogram vs the Poisson prediction,
* burstiness (index of dispersion of windowed counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np
from scipy import stats

from ..errors import AnalysisError


@dataclass(frozen=True)
class ArrivalCheck:
    """Result of the exponential inter-arrival test.

    Attributes
    ----------
    events:
        Number of events analyzed.
    mean_interarrival_s:
        Mean spacing.
    ks_pvalue:
        p-value of the KS test against the fitted exponential; small
        values reject the homogeneous-Poisson hypothesis.
    """

    events: int
    mean_interarrival_s: float
    ks_pvalue: float

    def is_poisson_like(self, alpha: float = 0.01) -> bool:
        """Accept homogeneity unless the KS test rejects at *alpha*."""
        return self.ks_pvalue >= alpha


def check_interarrivals(times_s: Sequence[float]) -> ArrivalCheck:
    """KS-test the event stream's spacings against an exponential."""
    times = np.sort(np.asarray(list(times_s), dtype=float))
    if times.size < 10:
        raise AnalysisError("need at least 10 events for an arrival check")
    gaps = np.diff(times)
    gaps = gaps[gaps > 0]
    if gaps.size < 5:
        raise AnalysisError("too many simultaneous events to test spacings")
    mean = float(gaps.mean())
    _stat, pvalue = stats.kstest(gaps, "expon", args=(0, mean))
    return ArrivalCheck(
        events=int(times.size),
        mean_interarrival_s=mean,
        ks_pvalue=float(pvalue),
    )


def run_multiplicity_histogram(
    event_times_s: Sequence[float],
    run_starts_s: Sequence[float],
    run_durations_s: Sequence[float],
) -> Dict[int, int]:
    """Events-per-run histogram (the anti-accumulation check).

    Section 3.3 sizes the benchmarks so that runs with >= 2 events are
    rare; the histogram makes that measurable.
    """
    starts = np.asarray(list(run_starts_s), dtype=float)
    durations = np.asarray(list(run_durations_s), dtype=float)
    if starts.size != durations.size:
        raise AnalysisError("starts and durations must align")
    if starts.size == 0:
        raise AnalysisError("need at least one run")
    events = np.sort(np.asarray(list(event_times_s), dtype=float))
    histogram: Dict[int, int] = {}
    for start, duration in zip(starts, durations):
        count = int(
            np.searchsorted(events, start + duration)
            - np.searchsorted(events, start)
        )
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def multi_event_run_fraction(histogram: Dict[int, int]) -> float:
    """Fraction of runs that saw two or more events."""
    total = sum(histogram.values())
    if total == 0:
        raise AnalysisError("empty histogram")
    multi = sum(n for count, n in histogram.items() if count >= 2)
    return multi / total


def dispersion_index(
    event_times_s: Sequence[float],
    horizon_s: float,
    window_s: float,
) -> float:
    """Index of dispersion (variance/mean) of windowed event counts.

    1.0 for a Poisson process; substantially above 1 indicates bursts
    (e.g. a beam excursion), below 1 indicates regularity.
    """
    if horizon_s <= 0 or window_s <= 0 or window_s > horizon_s:
        raise AnalysisError("need 0 < window <= horizon")
    events = np.asarray(list(event_times_s), dtype=float)
    edges = np.arange(0.0, horizon_s + window_s, window_s)
    counts, _ = np.histogram(events, bins=edges)
    if counts.size < 5:
        raise AnalysisError("need at least 5 windows")
    mean = counts.mean()
    if mean == 0:
        raise AnalysisError("no events in the horizon")
    return float(counts.var(ddof=1) / mean)


def expected_multiplicity(
    rate_per_min: float, run_duration_s: float
) -> Dict[int, float]:
    """Poisson prediction for the per-run multiplicity distribution."""
    if rate_per_min < 0 or run_duration_s <= 0:
        raise AnalysisError("rate must be nonnegative, duration positive")
    lam = rate_per_min * run_duration_s / 60.0
    return {k: float(stats.poisson.pmf(k, lam)) for k in range(5)}
