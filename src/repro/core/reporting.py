"""Campaign report generator: one markdown document per campaign.

Combines every analysis view over a campaign -- Table 2, the failure
mixes, the FIT rates, the notification splits, the arrival-statistics
checks, and the cross-study SER consistency verdict -- into a single
markdown report, the artifact a test campaign actually delivers to its
stakeholders.
"""

from __future__ import annotations

from typing import List

from ..errors import AnalysisError
from ..harness.campaign import CampaignResult
from ..injection.events import OutcomeKind
from .analysis import CampaignAnalysis
from .comparison import REFERENCE_STUDIES, is_consistent_with_reference
from .report import Table
from .timeline import check_interarrivals


def _table_to_markdown(table: Table) -> str:
    """Render a :class:`Table` as a GitHub-flavored markdown table."""
    from .report import _format_cell

    lines = [
        "| " + " | ".join(table.header) + " |",
        "|" + "|".join("---" for _ in table.header) + "|",
    ]
    for row in table.rows:
        lines.append("| " + " | ".join(_format_cell(c) for c in row) + " |")
    return "\n".join(lines)


class CampaignReport:
    """Builds the markdown report for one campaign."""

    def __init__(self, campaign: CampaignResult) -> None:
        self.campaign = campaign
        self.analysis = CampaignAnalysis(campaign)

    # -- sections ---------------------------------------------------------------

    def summary_section(self) -> str:
        """Headline numbers."""
        labels = self.campaign.labels()
        nominal, vmin = labels[0], None
        for label in labels:
            point = self.campaign.session(label).plan.point
            if point.freq_mhz == 2400:
                vmin = label
        lines = ["## Summary", ""]
        total_failures = sum(
            self.campaign.session(label).failure_count for label in labels
        )
        total_upsets = sum(
            self.campaign.session(label).upset_count for label in labels
        )
        total_minutes = sum(
            self.campaign.session(label).duration_minutes for label in labels
        )
        lines.append(
            f"- {len(labels)} sessions, {total_minutes:.0f} beam minutes, "
            f"{total_upsets} memory upsets, {total_failures} failures"
        )
        try:
            sdc_x = self.analysis.sdc_fit_increase(vmin, nominal)
            total_x = self.analysis.total_fit_increase(vmin, nominal)
            lines.append(
                f"- SDC FIT increase at Vmin vs nominal: x{sdc_x:.1f}; "
                f"total FIT: x{total_x:.1f}"
            )
        except AnalysisError:
            lines.append(
                "- FIT multipliers unavailable (a session saw no SDCs)"
            )
        return "\n".join(lines)

    def table2_section(self) -> str:
        """The regenerated Table 2."""
        return "## Beam sessions (Table 2)\n\n" + _table_to_markdown(
            self.analysis.table2()
        )

    def failures_section(self) -> str:
        """Failure mixes and FIT rates per session."""
        table = Table(
            title="",
            header=[
                "Session", "AppCrash FIT", "SysCrash FIT", "SDC FIT",
                "Total FIT", "SDC share (%)",
            ],
        )
        for label in self.campaign.labels():
            session = self.campaign.session(label)
            kinds = [
                OutcomeKind.APP_CRASH, OutcomeKind.SYS_CRASH, OutcomeKind.SDC,
            ]
            fits = [self.analysis.category_fit(label, k).fit for k in kinds]
            share = (
                100.0
                * len(session.failures_of_kind(OutcomeKind.SDC))
                / session.failure_count
                if session.failure_count
                else 0.0
            )
            table.add_row(
                label, *fits, self.analysis.total_fit(label).fit, share
            )
        return "## Failures and FIT\n\n" + _table_to_markdown(table)

    def statistics_section(self) -> str:
        """Arrival-statistics health checks per session."""
        lines = ["## Beam-statistics checks", ""]
        for label in self.campaign.labels():
            session = self.campaign.session(label)
            times = [u.time_s for u in session.upsets.upsets]
            if len(times) < 10:
                lines.append(f"- {label}: too few upsets for an arrival check")
                continue
            check = check_interarrivals(times)
            verdict = "Poisson-like" if check.is_poisson_like() else "SUSPECT"
            lines.append(
                f"- {label}: {check.events} upsets, mean spacing "
                f"{check.mean_interarrival_s:.1f}s, KS p={check.ks_pvalue:.3f} "
                f"-> {verdict}"
            )
        return "\n".join(lines)

    def soundness_section(self) -> str:
        """Cross-study SER consistency (the Section 3.5 argument)."""
        reference = next(r for r in REFERENCE_STUDIES if r.static_test)
        lines = ["## Soundness vs published reference", ""]
        for label in self.campaign.labels():
            ser = self.analysis.memory_ser(label)
            ok = is_consistent_with_reference(ser, reference)
            lines.append(
                f"- {label}: {ser:.2f} FIT/Mbit vs {reference.name} "
                f"({reference.ser_fit_per_mbit} static) -> "
                f"{'consistent' if ok else 'INCONSISTENT'}"
            )
        return "\n".join(lines)

    # -- assembly -----------------------------------------------------------------

    def render(self) -> str:
        """The complete markdown report."""
        sections: List[str] = [
            "# Radiation campaign report",
            self.summary_section(),
            self.table2_section(),
            self.failures_section(),
            self.statistics_section(),
            self.soundness_section(),
        ]
        return "\n\n".join(sections) + "\n"

    def write(self, path: str) -> str:
        """Write the report to *path*; returns the path."""
        with open(path, "w") as handle:
            handle.write(self.render())
        return path
