"""Power-vs-susceptibility trade-off analytics (Section 5).

Builds the Fig. 9 series (absolute power vs upsets/minute) and the
Fig. 10 series (power savings % vs susceptibility increase %) from the
calibrated power and rate models, and provides the comparison helpers
behind Observations #5-#7: where the susceptibility curve outpaces the
savings curve and how little the clock frequency matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import AnalysisError
from ..injection.calibration import LevelRateModel
from ..soc.dvfs import OperatingPoint, TABLE3_OPERATING_POINTS
from ..soc.power import PowerModel


@dataclass(frozen=True)
class TradeoffPoint:
    """One operating point of the Fig. 9 / Fig. 10 series.

    Attributes
    ----------
    point:
        The (frequency, voltages) setting.
    power_watts:
        Average chip power at the setting.
    upsets_per_min:
        Expected detected cache-upset rate at the setting.
    power_savings_pct:
        Power savings vs the nominal setting, percent.
    susceptibility_increase_pct:
        Upset-rate increase vs the nominal setting, percent.
    """

    point: OperatingPoint
    power_watts: float
    upsets_per_min: float
    power_savings_pct: float
    susceptibility_increase_pct: float


@dataclass(frozen=True)
class TradeoffSeries:
    """The full trade-off curve over a list of operating points."""

    points: List[TradeoffPoint]

    def __post_init__(self) -> None:
        if not self.points:
            raise AnalysisError("a trade-off series needs at least one point")

    @property
    def nominal(self) -> TradeoffPoint:
        """The first (reference) point of the series."""
        return self.points[0]

    def by_label(self, label: str) -> TradeoffPoint:
        """Look one point up by its operating-point label."""
        for p in self.points:
            if p.point.label == label:
                return p
        raise AnalysisError(f"no point labelled {label!r}")

    def savings_outpaced_by_susceptibility(self) -> List[TradeoffPoint]:
        """Points where susceptibility grew faster than savings.

        Observation #7: at 2.4 GHz the susceptibility increase runs
        ahead of the power savings; only the combined voltage+frequency
        reduction flips the balance.
        """
        return [
            p
            for p in self.points[1:]
            if p.susceptibility_increase_pct > p.power_savings_pct
        ]

    def marginal_ratios(self) -> List[float]:
        """Per-step (delta susceptibility)/(delta savings) ratios."""
        ratios = []
        for prev, here in zip(self.points, self.points[1:]):
            d_savings = here.power_savings_pct - prev.power_savings_pct
            d_susc = (
                here.susceptibility_increase_pct
                - prev.susceptibility_increase_pct
            )
            if d_savings == 0:
                raise AnalysisError("degenerate savings step in series")
            ratios.append(d_susc / d_savings)
        return ratios


def build_tradeoff_series(
    power_model: Optional[PowerModel] = None,
    rate_model: Optional[LevelRateModel] = None,
    points: Optional[List[OperatingPoint]] = None,
) -> TradeoffSeries:
    """Build the Fig. 9/10 series over the Table 3 operating points.

    The first point in *points* is the reference for both percentage
    axes (the paper uses 980 mV @ 2.4 GHz).
    """
    power_model = power_model or PowerModel.calibrated()
    rate_model = rate_model or LevelRateModel()
    points = points or TABLE3_OPERATING_POINTS

    reference = points[0]
    ref_power = power_model.total_watts(
        reference.pmd_mv, reference.soc_mv, reference.freq_mhz
    )
    ref_rate = rate_model.total_rate_per_min(
        reference.pmd_mv, reference.soc_mv
    )
    if ref_power <= 0 or ref_rate <= 0:
        raise AnalysisError("reference point must have positive power/rate")

    series = []
    for point in points:
        watts = power_model.total_watts(
            point.pmd_mv, point.soc_mv, point.freq_mhz
        )
        rate = rate_model.total_rate_per_min(point.pmd_mv, point.soc_mv)
        series.append(
            TradeoffPoint(
                point=point,
                power_watts=watts,
                upsets_per_min=rate,
                power_savings_pct=(ref_power - watts) / ref_power * 100.0,
                susceptibility_increase_pct=(rate / ref_rate - 1.0) * 100.0,
            )
        )
    return TradeoffSeries(points=series)
