"""Cross-study SER comparison and technology-scaling context.

Section 3.5 proves the campaign's soundness by comparing its memory SER
against a published 28 nm reference ([83]: 15 FIT/Mbit under a static
memory test at Beijing sea level) and attributing the gap to workload
masking.  This module packages that comparison -- and the
technology-node context the related work (Seifert [66, 67], Tonfat
[73]) frames it with -- as reusable analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import AnalysisError


@dataclass(frozen=True)
class ReferenceStudy:
    """One published SER measurement to compare against.

    Attributes
    ----------
    name:
        Citation tag.
    node_nm:
        Process node of the DUT.
    ser_fit_per_mbit:
        Reported memory SER, FIT/Mbit (sea level).
    static_test:
        True when the study ran an exhaustive memory test (no workload
        masking); False for workload-driven campaigns like the paper's.
    """

    name: str
    node_nm: int
    ser_fit_per_mbit: float
    static_test: bool

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise AnalysisError("process node must be positive")
        if self.ser_fit_per_mbit <= 0:
            raise AnalysisError("SER must be positive")


#: Published anchors used by the paper and its related work.
REFERENCE_STUDIES: List[ReferenceStudy] = [
    ReferenceStudy(
        name="Yang2019-CSNS-28nm [83]",
        node_nm=28,
        ser_fit_per_mbit=15.0,
        static_test=True,
    ),
    ReferenceStudy(
        name="this-paper-session1",
        node_nm=28,
        ser_fit_per_mbit=2.08,
        static_test=False,
    ),
]


def masking_factor(
    measured_ser: float, static_reference_ser: float
) -> float:
    """Fraction of raw upsets the workload hides.

    The paper's benchmarks neither touch the whole cache nor re-read
    every word before overwrite, so the dynamic SER undershoots the
    static reference; the masking factor is 1 - measured/static
    (~0.86 for the paper's 2.08 vs [83]'s 15).
    """
    if measured_ser < 0 or static_reference_ser <= 0:
        raise AnalysisError("SER values must be positive")
    if measured_ser > static_reference_ser:
        raise AnalysisError(
            "measured dynamic SER exceeds the static reference; "
            "check the normalization"
        )
    return 1.0 - measured_ser / static_reference_ser


def is_consistent_with_reference(
    measured_ser: float,
    reference: ReferenceStudy,
    max_masking: float = 0.95,
) -> bool:
    """The paper's soundness check (Section 3.5), as a predicate.

    A workload-driven SER is consistent with a static reference when it
    sits *below* it but not implausibly far below (masking above
    ``max_masking`` would mean the campaign barely saw the memory).
    """
    if not reference.static_test:
        raise AnalysisError("consistency check needs a static-test reference")
    if measured_ser > reference.ser_fit_per_mbit:
        return False
    return masking_factor(measured_ser, reference.ser_fit_per_mbit) <= max_masking


def scale_ser_per_bit(
    ser_fit_per_mbit: float,
    from_node_nm: int,
    to_node_nm: int,
    per_node_slope: float = 0.92,
) -> float:
    """Extrapolate per-bit SER across process nodes.

    Seifert's historical data [66, 67] shows per-bit SRAM SER roughly
    *flat to slightly decreasing* per technology generation (smaller
    collection volume offsets smaller Qcrit); ``per_node_slope`` is the
    per-generation multiplier (a generation being a ~0.7x linear
    shrink).  Chip-level SER still grows because integration doubles the
    bit count per generation.
    """
    if ser_fit_per_mbit <= 0:
        raise AnalysisError("SER must be positive")
    if from_node_nm <= 0 or to_node_nm <= 0:
        raise AnalysisError("nodes must be positive")
    if per_node_slope <= 0:
        raise AnalysisError("slope must be positive")
    import math

    generations = math.log(from_node_nm / to_node_nm, 1.0 / 0.7)
    return ser_fit_per_mbit * per_node_slope ** generations
