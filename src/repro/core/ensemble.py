"""Multi-seed campaign ensembles: robustness of the headline numbers.

A single campaign is one draw from the Monte-Carlo distribution; the
paper itself leans on Poisson error bars for exactly this reason.  An
ensemble flies the same campaign under several seeds and reports the
distribution of each headline metric -- the reproduction's answer to
"would the 16x SDC increase survive a different beam week?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..engine import Executor, SerialExecutor, WorkUnit
from ..errors import AnalysisError
from ..harness.campaign import Campaign, CampaignResult
from .analysis import CampaignAnalysis

#: A metric extractor over one campaign's analysis.
MetricFn = Callable[[CampaignAnalysis], float]


@dataclass(frozen=True)
class MetricDistribution:
    """Distribution of one metric over the ensemble.

    Attributes
    ----------
    name:
        Metric label.
    values:
        One value per seed.
    """

    name: str
    values: List[float]

    def __post_init__(self) -> None:
        if not self.values:
            raise AnalysisError(f"{self.name}: empty ensemble")

    @property
    def mean(self) -> float:
        """Ensemble mean."""
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Ensemble standard deviation (0 for singleton ensembles)."""
        if len(self.values) < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def spread(self) -> float:
        """Max - min over the ensemble."""
        return float(np.max(self.values) - np.min(self.values))

    def within(self, lower: float, upper: float) -> bool:
        """Does every ensemble member land in [lower, upper]?"""
        return all(lower <= v <= upper for v in self.values)


#: The study's headline metrics, as extractors.
HEADLINE_METRICS: Dict[str, MetricFn] = {
    "upset_rate_nominal": lambda a: a.upset_rate("session1").per_minute,
    "upset_rate_vmin": lambda a: a.upset_rate("session3").per_minute,
    "sdc_fit_increase": lambda a: a.sdc_fit_increase("session3", "session1"),
    "total_fit_increase": lambda a: a.total_fit_increase(
        "session3", "session1"
    ),
    "memory_ser_nominal": lambda a: a.memory_ser("session1"),
}


def _fly_campaign(seed: int, time_scale: float) -> CampaignResult:
    """Fly one ensemble member (module-level: must pickle)."""
    return Campaign(seed=seed, time_scale=time_scale).run()


class EnsembleRunner:
    """Flies the Table 2 campaign once per seed through the engine.

    Each seed is one :class:`~repro.engine.WorkUnit`, so a
    :class:`~repro.engine.ParallelExecutor` runs ensemble members
    concurrently; the metric extractors (arbitrary callables, often
    lambdas) are applied on the submitting side after the deterministic
    merge, so they never need to pickle.

    Parameters
    ----------
    seeds:
        Campaign seeds (>= 2 for meaningful spreads).
    time_scale:
        Per-session beam-time fraction.
    metrics:
        Metric extractors (defaults to the headline set).
    executor:
        Engine executor the member campaigns fan out through.
    """

    def __init__(
        self,
        seeds: Sequence[int],
        time_scale: float = 0.25,
        metrics: Dict[str, MetricFn] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        if not seeds:
            raise AnalysisError("need at least one seed")
        if len(set(seeds)) != len(seeds):
            raise AnalysisError("seeds must be distinct")
        metrics = metrics if metrics is not None else HEADLINE_METRICS
        if not metrics:
            raise AnalysisError("need at least one metric")
        self.seeds = [int(seed) for seed in seeds]
        self.time_scale = time_scale
        self.metrics = dict(metrics)
        self.executor = executor or SerialExecutor()

    def run(self) -> Dict[str, MetricDistribution]:
        """Fly every member; collect the metric distributions."""
        units = [
            WorkUnit(
                key=f"ensemble-seed{seed}",
                fn=_fly_campaign,
                args=(seed, self.time_scale),
            )
            for seed in self.seeds
        ]
        campaigns = self.executor.map(units)
        collected: Dict[str, List[float]] = {name: [] for name in self.metrics}
        for campaign in campaigns:
            analysis = CampaignAnalysis(campaign)
            for name, fn in self.metrics.items():
                collected[name].append(float(fn(analysis)))
        return {
            name: MetricDistribution(name=name, values=values)
            for name, values in collected.items()
        }


def run_ensemble(
    seeds: Sequence[int],
    time_scale: float = 0.25,
    metrics: Dict[str, MetricFn] = None,
    executor: Optional[Executor] = None,
) -> Dict[str, MetricDistribution]:
    """Fly the Table 2 campaign once per seed; collect metric distributions.

    Thin functional wrapper over :class:`EnsembleRunner`.
    """
    return EnsembleRunner(
        seeds, time_scale=time_scale, metrics=metrics, executor=executor
    ).run()


def coefficient_of_variation(distribution: MetricDistribution) -> float:
    """std/mean -- the ensemble's relative stability of one metric."""
    if distribution.mean == 0:
        raise AnalysisError("zero-mean metric has no CV")
    return distribution.std / abs(distribution.mean)
