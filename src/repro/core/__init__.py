"""Core analysis library: cross-sections, FIT rates, and trade-offs.

This is the paper's primary contribution as reusable code: given event
counts and fluences from a radiation campaign (real or simulated), it
computes dynamic cross-sections (Eq. 1), NYC sea-level FIT rates
(Eq. 2), FIT/Mbit SER, Poisson/binomial confidence intervals at the
paper's 95 % level, and the power-vs-susceptibility trade-off series of
Section 5 -- and renders them as the paper's tables and figures.
"""

from .confidence import (
    poisson_interval,
    poisson_rate_interval,
    binomial_interval,
    ConfidenceInterval,
)
from .cross_section import DcsEstimate, dynamic_cross_section, per_bit_cross_section
from .fit import (
    FitEstimate,
    fit_from_dcs,
    fit_rate,
    ser_fit_per_mbit,
    mttf_hours,
)
from .rates import RateEstimate, rate_per_minute
from .tradeoff import TradeoffPoint, TradeoffSeries, build_tradeoff_series
from .report import Table, render_table, write_csv
from .analysis import CampaignAnalysis
from .energy import (
    CandidatePoint,
    EnergyModel,
    OperatingPointSelector,
    candidates_from_paper_fit,
)
from .guardband import VminPopulation, per_chip_advantage_mv
from .comparison import (
    REFERENCE_STUDIES,
    ReferenceStudy,
    is_consistent_with_reference,
    masking_factor,
    scale_ser_per_bit,
)
from .reporting import CampaignReport
from .sensitivity import (
    SensitivityEntry,
    dominant_parameter,
    run_sensitivity,
)
from .ensemble import (
    HEADLINE_METRICS,
    MetricDistribution,
    coefficient_of_variation,
    run_ensemble,
)
from .timeline import (
    ArrivalCheck,
    check_interarrivals,
    dispersion_index,
    expected_multiplicity,
    multi_event_run_fraction,
    run_multiplicity_histogram,
)

__all__ = [
    "poisson_interval",
    "poisson_rate_interval",
    "binomial_interval",
    "ConfidenceInterval",
    "DcsEstimate",
    "dynamic_cross_section",
    "per_bit_cross_section",
    "FitEstimate",
    "fit_from_dcs",
    "fit_rate",
    "ser_fit_per_mbit",
    "mttf_hours",
    "RateEstimate",
    "rate_per_minute",
    "TradeoffPoint",
    "TradeoffSeries",
    "build_tradeoff_series",
    "Table",
    "render_table",
    "write_csv",
    "CampaignAnalysis",
    "CandidatePoint",
    "EnergyModel",
    "OperatingPointSelector",
    "candidates_from_paper_fit",
    "VminPopulation",
    "per_chip_advantage_mv",
    "REFERENCE_STUDIES",
    "ReferenceStudy",
    "is_consistent_with_reference",
    "masking_factor",
    "scale_ser_per_bit",
    "CampaignReport",
    "SensitivityEntry",
    "dominant_parameter",
    "run_sensitivity",
    "HEADLINE_METRICS",
    "MetricDistribution",
    "coefficient_of_variation",
    "run_ensemble",
    "ArrivalCheck",
    "check_interarrivals",
    "dispersion_index",
    "expected_multiplicity",
    "multi_event_run_fraction",
    "run_multiplicity_histogram",
]
