"""String-keyed technology-node registry: the plugin API of ``repro.tech``.

Mirrors the :mod:`repro.codecs` registry idiom: the registry is the one
place the rest of the system (campaigns, explorer sweeps, differential
pairings, benchmarks, CLI) learns which nodes exist.  Entries are plain
frozen :class:`~repro.tech.node.TechNode` records -- nothing is built
lazily because a node *is* its parameters.

Built-ins cover the family the roadmap asks for:

* ``xgene2-28`` -- the paper's own silicon (alias ``28nm``); every
  scale factor exactly 1.0, making it the byte-identity anchor.
* ``45nm`` -- a planar predecessor node, ITRS-style up-scaling.
* ``16nm`` / ``7nm`` -- FinFET successors, ITRS/lumos-style
  down-scaling with calibrated-expectation susceptibility factors.

Non-default electrical parameters follow the published ITRS scaling
ratios used by lumos (supply/threshold/frequency/area per step) rather
than measurements of real parts; their provenance is recorded as
*calibrated expectation* in the golden oracle files, in contrast to the
paper-measured 28 nm anchors.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import TechError
from .node import DEFAULT_NODE, TechNode

_REGISTRY: Dict[str, TechNode] = {}

#: Alternate lookup names (e.g. "28nm") -> canonical registry names.
_ALIASES: Dict[str, str] = {}


def register_node(
    node: TechNode,
    *,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> TechNode:
    """Register a node under its own name (plus optional aliases).

    Raises :class:`~repro.errors.TechError` on a duplicate name unless
    ``replace=True`` (tests and downstream experiments swap entries in
    with that).
    """
    if not isinstance(node, TechNode):
        raise TechError(f"expected a TechNode, got {type(node).__name__}")
    taken = set(_REGISTRY) | set(_ALIASES)
    if node.name in taken and not replace:
        raise TechError(
            f"node {node.name!r} is already registered; pass replace=True "
            "to override"
        )
    for alias in aliases:
        if (
            not alias
            or "/" in alias
            or any(ch.isspace() for ch in alias)
        ):
            raise TechError(f"invalid node alias {alias!r}")
        if alias in taken - {node.name} and not replace:
            raise TechError(f"node alias {alias!r} is already registered")
    _REGISTRY[node.name] = node
    _ALIASES.pop(node.name, None)
    for alias in aliases:
        _ALIASES[alias] = node.name
    return node


def unregister_node(name: str) -> None:
    """Remove a registered node and its aliases (for test isolation)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise TechError(f"unknown node {name!r}")
    del _REGISTRY[canonical]
    for alias in [a for a, c in _ALIASES.items() if c == canonical]:
        del _ALIASES[alias]


def get_node(name: str) -> TechNode:
    """Look a node up by canonical name or alias."""
    canonical = _ALIASES.get(name, name)
    try:
        return _REGISTRY[canonical]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY) | set(_ALIASES))) or "<none>"
        raise TechError(
            f"unknown node {name!r}; registered: {known}"
        ) from None


def list_nodes() -> List[str]:
    """Sorted canonical names of all registered nodes."""
    return sorted(_REGISTRY)


def default_node() -> TechNode:
    """The 28 nm X-Gene 2 anchor node."""
    return get_node(DEFAULT_NODE)


def _register_builtins() -> None:
    register_node(
        TechNode(
            name=DEFAULT_NODE,
            process_nm=28,
            pmd_nominal_mv=980,
            soc_nominal_mv=950,
            vth_mv=285.0,
            nominal_freq_mhz=2400,
            freq_step_mhz=300,
            floor_mv=500,
            description="28 nm X-Gene 2, the paper's measured part "
            "(Table 3 anchors; all scale factors 1.0)",
        ),
        aliases=("28nm",),
    )
    register_node(
        TechNode(
            name="45nm",
            process_nm=45,
            pmd_nominal_mv=1090,
            soc_nominal_mv=1055,
            vth_mv=320.0,
            nominal_freq_mhz=1500,
            freq_step_mhz=25,
            floor_mv=550,
            area_scale=2.6,
            cap_scale=1.9,
            leakage_scale=0.8,
            sigma0_scale=1.35,
            slope_scale=0.85,
            description="45 nm planar predecessor: ITRS-style "
            "up-scaled supplies, larger cells, shallower sigma(V)",
        )
    )
    register_node(
        TechNode(
            name="16nm",
            process_nm=16,
            pmd_nominal_mv=815,
            soc_nominal_mv=790,
            vth_mv=240.0,
            nominal_freq_mhz=3000,
            freq_step_mhz=25,
            floor_mv=480,
            area_scale=0.33,
            cap_scale=0.55,
            leakage_scale=1.25,
            sigma0_scale=0.55,
            slope_scale=1.15,
            description="16 nm FinFET successor: ITRS/lumos-style "
            "down-scaling, calibrated-expectation susceptibility",
        )
    )
    register_node(
        TechNode(
            name="7nm",
            process_nm=7,
            pmd_nominal_mv=675,
            soc_nominal_mv=655,
            vth_mv=210.0,
            nominal_freq_mhz=3600,
            freq_step_mhz=25,
            floor_mv=430,
            area_scale=0.08,
            cap_scale=0.30,
            leakage_scale=1.6,
            sigma0_scale=0.35,
            slope_scale=1.30,
            description="7 nm FinFET: deep-scaled supplies near the "
            "near-threshold band, steepest sigma(V) slopes",
        )
    )


_register_builtins()
