"""The :class:`TechNode` model family: one silicon point, parameterized.

The paper characterizes exactly one part -- a 28 nm X-Gene 2 -- but its
core contribution (sigma(V) susceptibility scaling under undervolting)
generalizes to any process node once the node-specific quantities are
parameterized:

* **Supply and threshold voltages.**  Each node carries its own PMD/SoC
  nominal supplies and a threshold voltage ``Vth``; every undervolt
  fraction in the rate models is taken against the *node's* nominal.
* **Frequency.**  ``f(V)`` follows the alpha-power law with velocity
  saturation above the near-threshold band and an exponential
  subthreshold characteristic below it (the lumos formulation):

      f_super(V) = c_super * (V - Vth)^alpha / V          V >  Vpivot
      f_sub(V)   = c_sub   * 10^((V - Vth)/Vslope) / V    V <= Vpivot

  with ``Vpivot = Vth + Vnth``.  ``c_super`` is normalized so the model
  reproduces the node's nominal frequency at its nominal supply, and
  ``c_sub`` is chosen to make the two branches continuous at the pivot.
* **Area / capacitance / leakage / cross-section scaling.**  Plain
  multiplicative factors relative to the 28 nm reference, applied by the
  ``for_node`` constructors of the power, cross-section and rate models.

The 28 nm X-Gene 2 itself is ``TechNode("xgene2-28")`` -- the registry
default -- with every scale factor at exactly 1.0.  The default node is
*inert by construction*: models asked to scale for it return their
paper-calibrated selves unchanged, which is what keeps default-node
campaign output byte-identical and is pinned by the ``tech_anchor``
differential pairing.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import constants
from ..errors import TechError
from ..soc.dvfs import OperatingPoint

#: Name of the paper's own silicon: the 28 nm X-Gene 2 reference node.
DEFAULT_NODE = "xgene2-28"

#: Reference-node electrical anchors (the paper's part, Section 3.1).
_REF_PMD_NOMINAL_MV = float(constants.PMD_NOMINAL_MV)
_REF_SOC_NOMINAL_MV = float(constants.SOC_NOMINAL_MV)
_REF_FREQ_MHZ = float(constants.FREQ_MAX_MHZ)
_REF_NUM_CORES = constants.NUM_CORES


def _snap_to_grid(scaled: float, nominal: int, step: int, floor: int) -> int:
    """Snap a scaled voltage onto the regulator grid below *nominal*.

    The grid is anchored at the nominal (regulators scale *downwards*
    in ``step`` mV increments), so the snapped value always satisfies
    ``(nominal - mv) % step == 0`` and ``floor <= mv <= nominal``.
    """
    steps = int(round((nominal - scaled) / step))
    mv = nominal - steps * step
    return max(floor, min(nominal, mv))


@dataclass(frozen=True)
class TechNode:
    """One technology node: electrical anchors plus scale factors.

    Attributes
    ----------
    name:
        Registry key ("xgene2-28", "7nm", ...).
    process_nm:
        Feature size, nanometres.
    pmd_nominal_mv / soc_nominal_mv:
        Nominal (maximum) domain supplies at this node, millivolts.
    vth_mv:
        Threshold voltage, millivolts.
    nominal_freq_mhz:
        Clock at the nominal PMD supply; the model's normalization
        point (``freq_mhz_at(pmd_nominal_mv) == nominal_freq_mhz``).
    freq_step_mhz:
        PLL grid granularity for this node's DVFS controller.
    floor_mv:
        Regulator floor; kept above the sub/super-threshold pivot so
        every reachable voltage stays in the modelled region.
    alpha:
        Velocity-saturation exponent of the alpha-power law.
    vslope_mv:
        Subthreshold swing of the exponential branch (mV/decade).
    nth_mv:
        Width of the near-threshold band: the sub/super pivot sits at
        ``vth_mv + nth_mv``.
    area_scale / cap_scale / leakage_scale:
        SRAM cell area, per-core switched capacitance, and static
        leakage relative to the 28 nm reference.
    sigma0_scale:
        Per-bit nominal-voltage SEU cross-section relative to 28 nm.
    slope_scale:
        Multiplier on every calibrated voltage-sensitivity slope
        (smaller margins => steeper sigma(V)).
    num_cores:
        Core count of the part built at this node (must be even: the
        X-Gene topology groups cores in dual-core PMD pairs).
    description:
        One-line provenance note for listings.
    """

    name: str
    process_nm: int
    pmd_nominal_mv: int
    soc_nominal_mv: int
    vth_mv: float
    nominal_freq_mhz: int
    freq_step_mhz: int = 300
    floor_mv: int = 500
    alpha: float = 1.4
    vslope_mv: float = 90.0
    nth_mv: float = 200.0
    area_scale: float = 1.0
    cap_scale: float = 1.0
    leakage_scale: float = 1.0
    sigma0_scale: float = 1.0
    slope_scale: float = 1.0
    num_cores: int = _REF_NUM_CORES
    description: str = ""

    def __post_init__(self) -> None:
        if (
            not self.name
            or "/" in self.name
            or any(ch.isspace() for ch in self.name)
        ):
            raise TechError(f"invalid node name {self.name!r}")
        if self.process_nm <= 0:
            raise TechError("process feature size must be positive")
        if self.pmd_nominal_mv <= 0 or self.soc_nominal_mv <= 0:
            raise TechError("nominal voltages must be positive")
        if self.vth_mv <= 0:
            raise TechError("threshold voltage must be positive")
        if self.nth_mv <= 0 or self.vslope_mv <= 0:
            raise TechError("near-threshold band and swing must be positive")
        if self.alpha <= 1.0:
            raise TechError(
                "alpha must exceed 1 (monotonic super-threshold f(V))"
            )
        if self.pivot_mv >= self.pmd_nominal_mv:
            raise TechError(
                f"{self.name}: nominal {self.pmd_nominal_mv} mV must sit "
                f"above the sub/super-threshold pivot {self.pivot_mv} mV"
            )
        if not self.pivot_mv <= self.floor_mv <= self.pmd_nominal_mv:
            raise TechError(
                f"{self.name}: regulator floor {self.floor_mv} mV must lie "
                f"in [{self.pivot_mv}, {self.pmd_nominal_mv}] mV"
            )
        if self.nominal_freq_mhz <= 0 or self.freq_step_mhz <= 0:
            raise TechError("frequencies must be positive")
        if self.nominal_freq_mhz % self.freq_step_mhz:
            raise TechError(
                f"{self.name}: nominal {self.nominal_freq_mhz} MHz is not "
                f"on its own {self.freq_step_mhz} MHz grid"
            )
        for label, scale in (
            ("area", self.area_scale),
            ("capacitance", self.cap_scale),
            ("leakage", self.leakage_scale),
            ("sigma0", self.sigma0_scale),
            ("slope", self.slope_scale),
        ):
            if scale <= 0:
                raise TechError(f"{label} scale must be positive")
        if self.num_cores < 2 or self.num_cores % 2:
            raise TechError("core count must be even and >= 2")

    # -- identity -----------------------------------------------------------------

    @property
    def is_default(self) -> bool:
        """Whether this is the paper's own 28 nm X-Gene 2 anchor."""
        return self.name == DEFAULT_NODE

    # -- frequency model ----------------------------------------------------------

    @property
    def pivot_mv(self) -> float:
        """Sub/super-threshold crossover voltage, millivolts."""
        return self.vth_mv + self.nth_mv

    def freq_mhz_at(self, pmd_mv: float) -> float:
        """Model clock (MHz) at a PMD supply, alpha-power with crossover.

        Continuous at the pivot by construction and normalized so the
        nominal supply yields exactly ``nominal_freq_mhz``.
        """
        v = pmd_mv / 1000.0
        vth = self.vth_mv / 1000.0
        if v <= vth:
            raise TechError(
                f"{self.name}: {pmd_mv} mV is at or below the "
                f"{self.vth_mv} mV threshold"
            )
        v0 = self.pmd_nominal_mv / 1000.0
        vpivot = self.pivot_mv / 1000.0
        vslope = self.vslope_mv / 1000.0
        csuper = self.nominal_freq_mhz * v0 / (v0 - vth) ** self.alpha
        if v > vpivot:
            return csuper * (v - vth) ** self.alpha / v
        csub = (
            csuper
            * (vpivot - vth) ** self.alpha
            / 10.0 ** ((vpivot - vth) / vslope)
        )
        return csub * 10.0 ** ((v - vth) / vslope) / v

    # -- cross-node scaling -------------------------------------------------------

    def scale_pmd_mv(self, reference_mv: float) -> int:
        """Map a 28 nm PMD voltage onto this node's regulator grid."""
        scaled = reference_mv * self.pmd_nominal_mv / _REF_PMD_NOMINAL_MV
        return _snap_to_grid(
            scaled,
            self.pmd_nominal_mv,
            constants.VOLTAGE_STEP_MV,
            self.floor_mv,
        )

    def scale_soc_mv(self, reference_mv: float) -> int:
        """Map a 28 nm SoC voltage onto this node's regulator grid."""
        scaled = reference_mv * self.soc_nominal_mv / _REF_SOC_NOMINAL_MV
        return _snap_to_grid(
            scaled,
            self.soc_nominal_mv,
            constants.VOLTAGE_STEP_MV,
            self.floor_mv,
        )

    def scale_freq_mhz(self, reference_mhz: float) -> int:
        """Map a 28 nm clock onto this node's PLL grid."""
        scaled = reference_mhz * self.nominal_freq_mhz / _REF_FREQ_MHZ
        step = self.freq_step_mhz
        mhz = int(round(scaled / step)) * step
        return max(step, min(self.nominal_freq_mhz, mhz))

    def scaled_point(self, point: OperatingPoint) -> OperatingPoint:
        """Translate a Table 3 operating point to this node.

        The default node returns the point *unchanged* (same object):
        the byte-identity guarantee of the 28 nm anchor.
        """
        if self.is_default:
            return point
        return OperatingPoint(
            label=point.label,
            freq_mhz=self.scale_freq_mhz(point.freq_mhz),
            pmd_mv=self.scale_pmd_mv(point.pmd_mv),
            soc_mv=self.scale_soc_mv(point.soc_mv),
        )

    def rate_scale(self, domain: str) -> float:
        """Upset-rate multiplier vs. 28 nm for one voltage domain.

        PMD-side structures replicate per core, so their aggregate rate
        scales with both the per-bit cross-section and the core count;
        the shared SoC L3 scales with the cross-section alone.
        """
        if domain == "pmd":
            return self.sigma0_scale * (self.num_cores / _REF_NUM_CORES)
        if domain == "soc":
            return self.sigma0_scale
        raise TechError(f"unknown voltage domain {domain!r}")

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.process_nm} nm, {self.num_cores} cores, "
            f"PMD {self.pmd_nominal_mv} mV, SoC {self.soc_nominal_mv} mV, "
            f"{self.nominal_freq_mhz} MHz"
        )
