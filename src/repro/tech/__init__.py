"""Technology-node scaling axis: escape the 28 nm X-Gene 2.

``repro.tech`` turns the paper's single silicon point into one member
of a parameterized family.  A :class:`TechNode` carries the node's
electrical anchors (nominal supplies, threshold voltage, nominal clock)
plus multiplicative scale factors for area, capacitance, leakage and
SEU cross-section; the registry (mirroring :mod:`repro.codecs`) names
the built-in calibrated family -- ``45nm``, ``xgene2-28`` (default,
alias ``28nm``), ``16nm``, ``7nm`` -- and accepts user plugins via
:func:`register_node`.

The default node is inert: every model's ``for_node`` constructor
returns its paper-calibrated self for ``xgene2-28``, so default-node
campaign output is byte-identical to the pre-scaling code path (pinned
by the ``tech_anchor`` differential pairing).
"""

from .cache import (
    CacheScaling,
    cache_scaling,
    chip_sram_budget,
    node_structures,
)
from .node import DEFAULT_NODE, TechNode
from .registry import (
    default_node,
    get_node,
    list_nodes,
    register_node,
    unregister_node,
)

__all__ = [
    "CacheScaling",
    "DEFAULT_NODE",
    "TechNode",
    "cache_scaling",
    "chip_sram_budget",
    "default_node",
    "get_node",
    "list_nodes",
    "node_structures",
    "register_node",
    "unregister_node",
]
