"""Cache geometry / energy scaling hooks, cacti-p-informed.

cacti-p models an SRAM's area, access energy and leakage from its
technology node and organization; we do not re-derive device physics
here, but the *shape* of its outputs is what these hooks reproduce: a
per-node triple (area, dynamic read energy, leakage) obtained by
scaling a 28 nm reference point with the node's multiplicative factors.

The 28 nm reference values are representative of a dense 6T SRAM macro
at that node (bitcell ~0.12 um^2 plus array overhead; read energy and
leakage in the range cacti-p reports for 32/28 nm LP arrays).  They are
deliberately round numbers with calibrated-expectation provenance --
the paper measures upset rates, not joules -- and exist so cross-node
sweeps can weigh reliability against an energy/area budget that moves
with the node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..soc.geometry import StructureSpec, total_capacity_bits, xgene2_structures
from .node import TechNode, _REF_PMD_NOMINAL_MV

#: 28 nm reference SRAM figures (dense 6T macro, cacti-p-informed).
REF_AREA_MM2_PER_MBIT = 0.20
REF_READ_ENERGY_PJ_PER_BIT = 0.24
REF_LEAKAGE_MW_PER_MBIT = 18.0

_BITS_PER_MBIT = 1024.0 * 1024.0


@dataclass(frozen=True)
class CacheScaling:
    """Per-node SRAM macro figures, per Mbit of data capacity."""

    area_mm2_per_mbit: float
    read_energy_pj_per_bit: float
    leakage_mw_per_mbit: float


def cache_scaling(node: TechNode) -> CacheScaling:
    """SRAM macro figures at *node*, scaled from the 28 nm reference.

    Area scales with the cell footprint; dynamic read energy with
    switched capacitance and the square of the supply (CV^2); leakage
    with the node's leakage factor times its cell area (smaller cells
    leak less per bit at equal technology).
    """
    v_ratio = node.pmd_nominal_mv / _REF_PMD_NOMINAL_MV
    return CacheScaling(
        area_mm2_per_mbit=REF_AREA_MM2_PER_MBIT * node.area_scale,
        read_energy_pj_per_bit=(
            REF_READ_ENERGY_PJ_PER_BIT * node.cap_scale * v_ratio * v_ratio
        ),
        leakage_mw_per_mbit=(
            REF_LEAKAGE_MW_PER_MBIT * node.leakage_scale * node.area_scale
        ),
    )


def node_structures(node: TechNode) -> List[StructureSpec]:
    """The chip's SRAM structure inventory built at *node*.

    The per-core/per-pair Table 1 structures replicate with the node's
    core count; capacities per structure stay at their Table 1 values
    (the scaling axis varies the part's *size*, not its cache design).
    """
    return xgene2_structures(num_cores=node.num_cores)


def chip_sram_budget(node: TechNode) -> dict:
    """Whole-chip SRAM area/energy/leakage budget at *node*.

    A convenience roll-up for reports and benchmarks: total data
    capacity of the node's structure inventory priced with its
    :func:`cache_scaling` figures.
    """
    scaling = cache_scaling(node)
    bits = total_capacity_bits(node_structures(node))
    mbit = bits / _BITS_PER_MBIT
    return {
        "node": node.name,
        "capacity_mbit": mbit,
        "area_mm2": scaling.area_mm2_per_mbit * mbit,
        "read_energy_pj_per_bit": scaling.read_energy_pj_per_bit,
        "leakage_mw": scaling.leakage_mw_per_mbit * mbit,
    }
