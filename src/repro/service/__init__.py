"""The campaign service: a shardable front-end over the broker.

``repro-campaign serve ROOT`` runs one :class:`CampaignService`: an
asyncio loop that accepts campaign specs from a watched job directory
and an optional local HTTP endpoint, leases work from its
:class:`~repro.scheduler.Broker` to a supervised worker pool, commits
completions through the shared scheduler directory, and assembles each
finished submission into a results directory byte-identical to a plain
``repro-campaign run`` of the same spec.

Two service processes pointed at one root shard the queue between them
-- and a killed one's leases expire and are picked up by the survivor.
"""

from .layout import (
    accepted_dir,
    ensure_layout,
    jobs_dir,
    rejected_dir,
    results_dir,
    scheduler_dir,
    status_path,
)
from .service import (
    CampaignService,
    STATUS_STALE_S,
    ServiceConfig,
    check_backpressure,
)

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "check_backpressure",
    "STATUS_STALE_S",
    "ensure_layout",
    "jobs_dir",
    "accepted_dir",
    "rejected_dir",
    "results_dir",
    "scheduler_dir",
    "status_path",
]
