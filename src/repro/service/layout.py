"""On-disk layout of a campaign service root.

One directory is the whole deployment::

    ROOT/
      jobs/                      # drop spec JSON here to submit
        accepted/                # accepted specs, renamed <submission>.json
        rejected/                # malformed jobs + .error.txt diagnoses
      scheduler/                 # shared broker state (multi-process safe)
        commits/                 # exclusive per-unit completion payloads
                                 #   (checksummed, fenced format-2 records)
        leases/                  # advisory per-unit lease files
        epochs/                  # append-only fencing-epoch ledger
        quarantine/              # commit records that failed verification,
                                 #   each next to a .reason.json diagnosis
        journal-<broker>.jsonl   # per-broker scheduling event journal
      results/<submission>/      # assembled campaign.json, dmesg, manifest
      status.json                # latest broker status snapshot (atomic)

Everything under ``scheduler/`` is written to be shared: a second
``repro-campaign serve ROOT`` on the same (possibly network-mounted)
root recovers committed units, takes over expired leases, and -- via
its fencing epoch -- can never have a late write from a superseded
broker adopted as truth.
"""

from __future__ import annotations

import os

JOBS_DIR = "jobs"
ACCEPTED_DIR = os.path.join(JOBS_DIR, "accepted")
REJECTED_DIR = os.path.join(JOBS_DIR, "rejected")
SCHEDULER_DIR = "scheduler"
RESULTS_DIR = "results"
STATUS_FILE = "status.json"


def jobs_dir(root: str) -> str:
    return os.path.join(root, JOBS_DIR)


def accepted_dir(root: str) -> str:
    return os.path.join(root, ACCEPTED_DIR)


def rejected_dir(root: str) -> str:
    return os.path.join(root, REJECTED_DIR)


def scheduler_dir(root: str) -> str:
    return os.path.join(root, SCHEDULER_DIR)


def results_dir(root: str, submission_id: str) -> str:
    return os.path.join(root, RESULTS_DIR, submission_id)


def status_path(root: str) -> str:
    return os.path.join(root, STATUS_FILE)


def ensure_layout(root: str) -> None:
    """Create the service directory tree (idempotent)."""
    for path in (
        jobs_dir(root),
        accepted_dir(root),
        rejected_dir(root),
        scheduler_dir(root),
        os.path.join(root, RESULTS_DIR),
    ):
        os.makedirs(path, exist_ok=True)
