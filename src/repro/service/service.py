"""CampaignService: the asyncio front-end over the broker.

One ``repro-campaign serve ROOT`` process is a *campaign service*: it
watches ``ROOT/jobs/`` for dropped spec files, optionally listens on a
local HTTP port, leases units from its broker to a
:class:`~repro.resilient.SupervisedExecutor` worker pool, commits every
completion through the shared scheduler directory, and assembles each
finished submission into ``ROOT/results/<submission>/campaign.json`` --
byte-identical to what ``repro-campaign run`` writes for the same spec.

Concurrency model
-----------------
One asyncio loop owns all scheduling state.  Work unit batches run in a
worker thread (``asyncio.to_thread``) because the supervised executor
is synchronous; the only cross-thread touch points are the settlement
callback and the heartbeat task, both serialized through one lock.  A
heartbeat task extends the batch's leases at a third of the TTL, so a
*live* worker never loses its lease mid-unit -- only a killed one does,
which is exactly when another broker should take over.

Shutdown
--------
SIGTERM/SIGINT set a flag; the loop stops accepting and leasing,
finishes (drains) the in-flight batch -- every completed unit is
committed and journaled -- writes a final status snapshot, and exits
143 with a resume hint.  A later ``serve`` on the same root recovers:
accepted-but-unassembled submissions are resubmitted, committed units
are adopted from the shared directory, and only the rest is re-leased.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from .. import __version__
from ..engine import CAMPAIGN_WARMUP
from ..errors import ReproError, SchedulerBusy, SchedulerError
from ..io.atomic import atomic_write_json
from ..io.json_store import campaign_dict_from_entries, campaign_from_dict
from ..io.results_dir import ResultsDirectory
from ..resilient import EventJournal, SupervisedExecutor, SupervisionPolicy
from ..scheduler import Broker, CampaignPlan, CampaignSpec, DirectoryStore
from ..scheduler.planner import plan_campaign
from ..telemetry import RunManifest, Telemetry
from . import layout

#: How stale a ``status.json`` may be and still count as "a broker is
#: alive there" for client-side backpressure checks.
STATUS_STALE_S = 60.0


@dataclass
class ServiceConfig:
    """Tunables of one campaign service process."""

    root: str
    workers: int = 2
    capacity: Optional[int] = 64
    lease_ttl_s: float = 15.0
    poll_s: float = 0.5
    http_port: Optional[int] = None
    idle_exit_s: Optional[float] = None
    broker_id: Optional[str] = None
    timeout_s: Optional[float] = None
    retries: int = 2
    #: Run the post-job gates (:mod:`repro.validate.postjob`) on every
    #: assembled submission, writing ``validation.json`` next to
    #: ``campaign.json`` and surfacing the verdict in ``status.json``.
    validate: bool = False
    #: Store-level chaos plan (inline JSON or a path, parsed by
    #: :meth:`~repro.scheduler.StoreChaosSpec.from_json`): wraps the
    #: scheduler directory in a :class:`~repro.scheduler.FaultyStore`.
    #: Harness self-test only -- the CI ``chaos-store`` job drives a
    #: 2-broker drain through it.
    store_chaos: Optional[str] = None

    def resolved_broker_id(self) -> str:
        return self.broker_id or f"broker-{os.getpid()}"


class CampaignService:
    """The serve-loop state machine (see module docstring)."""

    def __init__(
        self, config: ServiceConfig, telemetry: Optional[Telemetry] = None
    ) -> None:
        self.config = config
        self.root = config.root
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.broker_id = config.resolved_broker_id()
        layout.ensure_layout(self.root)
        if config.store_chaos:
            from ..scheduler import FaultyStore, StoreChaosSpec

            self.store: DirectoryStore = FaultyStore(
                layout.scheduler_dir(self.root),
                StoreChaosSpec.from_json(config.store_chaos),
                telemetry=self.telemetry,
            )
        else:
            self.store = DirectoryStore(
                layout.scheduler_dir(self.root), telemetry=self.telemetry
            )
        self.journal = EventJournal(
            os.path.join(
                layout.scheduler_dir(self.root),
                f"journal-{self.broker_id}.jsonl",
            ),
            header={"schema": 1, "broker": self.broker_id},
        )
        self.broker = Broker(
            capacity=config.capacity,
            lease_ttl_s=config.lease_ttl_s,
            store=self.store,
            telemetry=self.telemetry,
            broker_id=self.broker_id,
            journal=self.journal,
        )
        self.executor = SupervisedExecutor(
            policy=SupervisionPolicy(
                timeout_s=config.timeout_s, max_retries=config.retries
            ),
            workers=config.workers,
            warmup=CAMPAIGN_WARMUP,
        )
        #: Serializes broker access between the asyncio loop and the
        #: executor thread's settlement callback.
        self._lock = threading.Lock()
        self._plans: Dict[str, CampaignPlan] = {}
        self._assembled: Set[str] = set()
        #: Post-job gate verdicts by submission id (``--validate``).
        self._validation: Dict[str, bool] = {}
        self._stopping = False
        self._stop_signal: Optional[int] = None
        self._last_activity = time.monotonic()
        self._inflight = 0

    # -- submission paths --------------------------------------------------------

    def submit_spec(self, spec: CampaignSpec):
        """Plan and queue one spec; persist it under ``jobs/accepted/``.

        Raises :class:`~repro.errors.SchedulerBusy` (nothing queued,
        nothing persisted) when the bounded queue cannot take it.
        """
        plan = plan_campaign(spec, with_metrics=self.telemetry.enabled)
        with self._lock:
            submission = self.broker.submit(plan)
        sid = submission.submission_id
        self._plans.setdefault(sid, plan)
        accepted = os.path.join(
            layout.accepted_dir(self.root), f"{sid}.json"
        )
        if not os.path.exists(accepted):
            tmp = f"{accepted}.tmp-{os.getpid()}"
            with open(tmp, "w") as handle:
                handle.write(spec.to_json())
            os.replace(tmp, accepted)
        self._last_activity = time.monotonic()
        return submission

    def cancel_submission(self, submission_id: str) -> int:
        with self._lock:
            dropped = self.broker.cancel(submission_id)
        self._last_activity = time.monotonic()
        return dropped

    def scan_jobs_once(self) -> int:
        """Ingest dropped job files; returns how many were consumed.

        A job that the queue cannot take yet is *left in place* -- the
        file queue is the backpressure buffer for file-based clients --
        and scanning stops so later jobs cannot jump the queue.
        """
        jobs = layout.jobs_dir(self.root)
        consumed = 0
        for name in sorted(os.listdir(jobs)):
            path = os.path.join(jobs, name)
            if not name.endswith(".json") or not os.path.isfile(path):
                continue
            try:
                with open(path) as handle:
                    data = json.load(handle)
            except (json.JSONDecodeError, OSError) as exc:
                self._reject_job(name, path, f"unreadable job file: {exc}")
                consumed += 1
                continue
            if isinstance(data, dict) and "cancel" in data:
                try:
                    self.cancel_submission(str(data["cancel"]))
                except SchedulerError as exc:
                    self._reject_job(name, path, str(exc))
                else:
                    os.unlink(path)
                consumed += 1
                continue
            try:
                spec = CampaignSpec.from_dict(data)
            except SchedulerError as exc:
                self._reject_job(name, path, str(exc))
                consumed += 1
                continue
            try:
                self.submit_spec(spec)
            except SchedulerBusy:
                break
            os.unlink(path)
            consumed += 1
        return consumed

    def _reject_job(self, name: str, path: str, reason: str) -> None:
        rejected = os.path.join(layout.rejected_dir(self.root), name)
        os.replace(path, rejected)
        with open(f"{rejected}.error.txt", "w") as handle:
            handle.write(reason + "\n")
        self.telemetry.count("service.jobs_rejected")

    def recover(self) -> int:
        """Resubmit accepted-but-unassembled submissions (startup).

        Committed units come back from the shared scheduler directory
        via the broker's submit-time recovery; only the remainder will
        be leased again.
        """
        accepted = layout.accepted_dir(self.root)
        recovered = 0
        for name in sorted(os.listdir(accepted)):
            if not name.endswith(".json"):
                continue
            sid = name[: -len(".json")]
            results = ResultsDirectory(layout.results_dir(self.root, sid))
            if results.has_campaign():
                self._assembled.add(sid)
                continue
            with open(os.path.join(accepted, name)) as handle:
                spec = CampaignSpec.from_json(handle.read())
            self.submit_spec(spec)
            recovered += 1
        return recovered

    # -- the batch engine --------------------------------------------------------

    def _settle(self, lease, report, result) -> None:
        """Executor-thread callback: commit or fail one finished unit."""
        from ..io.json_store import session_to_dict

        with self._lock:
            if report.ok:
                session_result, sram_bits, snapshot = result
                payload = {
                    "key": lease.label,
                    "attempts": report.attempts,
                    "sram_bits": sram_bits,
                    "session": session_to_dict(session_result),
                    "metrics": snapshot,
                }
                if self.broker.complete(lease, result, payload=payload):
                    self.telemetry.merge_snapshot(snapshot)
            else:
                self.broker.fail(lease, report.error or "quarantined")

    async def _heartbeat(self, leases: List) -> None:
        interval = max(self.config.lease_ttl_s / 3.0, 0.05)
        live = list(leases)
        while live:
            await asyncio.sleep(interval)
            still = []
            with self._lock:
                for lease in live:
                    try:
                        still.append(self.broker.heartbeat(lease))
                    except ReproError:
                        pass  # settled (or taken over) meanwhile
            live = still

    async def _run_batch(self, leases: List) -> None:
        self._inflight = len(leases)
        heartbeat = asyncio.ensure_future(self._heartbeat(leases))
        try:
            await asyncio.to_thread(
                self.executor.map,
                [lease.unit for lease in leases],
                telemetry=self.telemetry,
                on_result=lambda index, report, result: self._settle(
                    leases[index], report, result
                ),
            )
        finally:
            self._inflight = 0
            heartbeat.cancel()
            try:
                await heartbeat
            except asyncio.CancelledError:
                pass
        self._last_activity = time.monotonic()

    # -- assembly ----------------------------------------------------------------

    def assemble_settled(self) -> List[str]:
        """Write results for every newly settled submission."""
        written = []
        with self._lock:
            submissions = self.broker.submissions()
            ready = [
                sub
                for sub in submissions
                if sub.submission_id not in self._assembled
                and not sub.cancelled
                and self.broker.is_settled(sub.submission_id)
            ]
            payloads = {
                sub.submission_id: self.broker.entries_for(
                    sub.submission_id
                )
                for sub in ready
            }
        for sub in ready:
            sid = sub.submission_id
            self._assemble_one(sub, payloads[sid])
            self._assembled.add(sid)
            written.append(sid)
            self.telemetry.count("service.assembled")
        return written

    def _assemble_one(self, submission, entries: List[dict]) -> None:
        """Mirror ``ResilientRunReport.persist`` from committed payloads.

        ``campaign.json`` is written from the committed payload bytes
        (never a decode/re-encode round trip), so a service-assembled
        campaign is byte-identical to a ``repro-campaign run`` of the
        same spec -- the differential suite's ``service`` pairing holds
        the harness to that.
        """
        sid = submission.submission_id
        campaign_dict = campaign_dict_from_entries(entries)
        results = ResultsDirectory(layout.results_dir(self.root, sid))
        results.save_campaign_dict(campaign_dict)
        results.save_dmesg(campaign_from_dict(campaign_dict))
        plan = self._plans.get(sid)
        manifest = RunManifest(
            seed=plan.seed if plan else 0,
            time_scale=plan.time_scale if plan else 0.0,
            executor=self.executor.name,
            workers=max(self.config.workers, 1),
            version=__version__,
            config_hash=submission.config_hash,
            stages={},
            metrics=self.telemetry.metrics.to_dict(),
            spans=[],
            command=f"repro-campaign serve {self.root}",
        )
        results.save_manifest(manifest)
        failed = {
            unit_id: status
            for unit_id, status in self._unit_statuses(sid).items()
            if status != "done"
        }
        atomic_write_json(
            results.failures_path(),
            {
                "schema": 1,
                "ok": not failed,
                "submission_id": sid,
                "failed_units": failed,
            },
        )
        self._record_event("assembled", submission=sid, ok=not failed)
        if self.config.validate:
            self._validate_one(sid, campaign_dict)

    def _validate_one(self, sid: str, campaign_dict: dict) -> None:
        """Run the post-job gates on one assembled submission.

        The verdict lands in three places: ``validation.json`` next to
        ``campaign.json`` (the full gate report), the scheduling
        journal, and the ``validation`` map of ``status.json`` -- so a
        drifted result is visible to ``repro-campaign status`` without
        opening the results directory.  A gate failure never unwinds
        the assembly: the campaign artifacts are already on disk and
        remain the evidence the gates are complaining about.
        """
        from ..validate.postjob import postjob_report

        try:
            report = postjob_report(campaign_dict)
        except ReproError as exc:
            report = {
                "schema": 1,
                "ok": False,
                "gates": [],
                "error": str(exc),
            }
        atomic_write_json(
            os.path.join(
                layout.results_dir(self.root, sid), "validation.json"
            ),
            report,
        )
        self._validation[sid] = bool(report["ok"])
        self.telemetry.count(
            "service.validated", ok="yes" if report["ok"] else "no"
        )
        self._record_event("validated", submission=sid, ok=report["ok"])

    def _unit_statuses(self, submission_id: str) -> Dict[str, str]:
        plan = self._plans.get(submission_id)
        if plan is None:
            return {}
        with self._lock:
            return {
                unit.unit_id: self.broker.unit_status(unit.unit_id)
                for unit in plan.units
            }

    def _record_event(self, event: str, **fields: object) -> None:
        self.journal.append(
            dict(
                fields,
                kind="event",
                event=event,
                broker=self.broker_id,
                t_unix=time.time(),
            )
        )

    # -- status ------------------------------------------------------------------

    def status_dict(self) -> dict:
        with self._lock:
            status = self.broker.status()
        status.update(
            {
                "state": "stopping" if self._stopping else "serving",
                "updated_unix": time.time(),
                "pid": os.getpid(),
                "workers": self.config.workers,
                "poll_s": self.config.poll_s,
                "inflight_batch": self._inflight,
                "assembled": sorted(self._assembled),
                "validation": dict(sorted(self._validation.items())),
                "http_port": self.config.http_port,
            }
        )
        return status

    def write_status(self, state: Optional[str] = None) -> None:
        status = self.status_dict()
        if state is not None:
            status["state"] = state
        atomic_write_json(
            layout.status_path(self.root), status, fsync=False
        )

    # -- the serve loop ----------------------------------------------------------

    def request_stop(self, signum: int) -> None:
        """Signal-safe stop request: drain in-flight, then exit."""
        self._stopping = True
        self._stop_signal = signum

    def _idle(self) -> bool:
        if self._inflight or self.broker.pending_count():
            return False
        jobs = layout.jobs_dir(self.root)
        return not any(
            name.endswith(".json")
            and os.path.isfile(os.path.join(jobs, name))
            for name in os.listdir(jobs)
        )

    async def _serve(self) -> int:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop, sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        http_server = None
        if self.config.http_port is not None:
            from .http import start_http

            http_server = await start_http(self)
        self.recover()
        self.write_status()
        try:
            while not self._stopping:
                self.scan_jobs_once()
                with self._lock:
                    leases = self.broker.lease(
                        self.broker_id,
                        limit=max(self.config.workers, 1),
                    )
                if leases:
                    await self._run_batch(leases)
                self.assemble_settled()
                self.write_status()
                if leases:
                    continue
                if (
                    self.config.idle_exit_s is not None
                    and self._idle()
                    and time.monotonic() - self._last_activity
                    >= self.config.idle_exit_s
                ):
                    break
                await asyncio.sleep(self.config.poll_s)
        finally:
            if http_server is not None:
                http_server.close()
                await http_server.wait_closed()
            self.assemble_settled()
            self.write_status(state="stopped")
            self.journal.close()
            self.executor.close()
        if self._stopping:
            from ..cli import EXIT_INTERRUPTED

            queued = self.broker.pending_count()
            print(
                f"interrupted (signal {self._stop_signal}); in-flight "
                f"leases drained and committed, {queued} unit(s) still "
                f"queued -- resume with:\n"
                f"  repro-campaign serve {self.root}",
                file=sys.stderr,
            )
            return EXIT_INTERRUPTED
        return 0

    def serve(self) -> int:
        """Run the service until idle-exit or a stop signal; exit code."""
        return asyncio.run(self._serve())


def check_backpressure(root: str, incoming_units: int = 4) -> None:
    """Client-side bounded-queue check for file-based submission.

    Reads the live broker's ``status.json``; when a recent snapshot
    shows the queue cannot take *incoming_units* more, raises
    :class:`~repro.errors.SchedulerBusy` (the CLI maps it to exit 5).
    A missing or stale snapshot passes -- with no broker alive, the
    job file simply waits in ``jobs/``.
    """
    try:
        with open(layout.status_path(root)) as handle:
            status = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError, OSError):
        return
    if status.get("state") not in ("serving", "stopping"):
        return
    updated = status.get("updated_unix")
    if not isinstance(updated, (int, float)):
        return
    if time.time() - updated > STATUS_STALE_S:
        return
    capacity = status.get("capacity")
    queued = status.get("queued_units", 0)
    if capacity is None:
        return
    if queued + incoming_units > capacity:
        raise SchedulerBusy(
            f"campaign service at {root!r} is at capacity "
            f"({queued} unit(s) queued, capacity {capacity}); "
            f"retry once the queue drains or raise --capacity"
        )
