"""A minimal JSON-over-HTTP endpoint for the campaign service.

Deliberately stdlib-only and tiny: the service speaks to local tooling
(``repro-campaign submit --url``, a Prometheus scraper, curl), not the
open internet.  Four routes::

    GET  /status   -> the broker status snapshot (JSON)
    GET  /metrics  -> the telemetry registry (Prometheus text format)
    POST /submit   -> body is a CampaignSpec JSON; 200 with the
                      submission id, 400 on a malformed spec, 503 with
                      ``Retry-After`` when the bounded queue is full
                      (the HTTP spelling of SchedulerBusy)
    POST /cancel   -> body {"submission_id": ...}; 200 with the number
                      of dropped units, 404 for an unknown submission

Requests are parsed directly off the asyncio stream -- request line,
headers, ``Content-Length`` body -- which covers every client above
without importing an HTTP framework.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple

from ..errors import SchedulerBusy, SchedulerError
from ..telemetry import metrics_to_prometheus

#: Bound on request head + body: campaign specs are a few hundred bytes.
MAX_HEAD_BYTES = 16 * 1024
MAX_BODY_BYTES = 256 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


def _response(
    status: int, body: bytes, content_type: str, extra: str = ""
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("ascii") + body


def _json_response(status: int, payload: dict, extra: str = "") -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json", extra)


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, bytes]]:
    """Parse one request: (method, path, body); None when malformed."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (
        asyncio.IncompleteReadError,
        asyncio.LimitOverrunError,
        ConnectionError,
    ):
        return None
    if len(head) > MAX_HEAD_BYTES:
        return None
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        return None
    method, path, _version = parts
    length = 0
    for line in lines[1:]:
        name, _, value = line.partition(":")
        if name.strip().lower() == "content-length":
            try:
                length = int(value.strip())
            except ValueError:
                return None
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return method, path, body


def _route(service, method: str, path: str, body: bytes) -> bytes:
    if method == "GET" and path == "/status":
        return _json_response(200, service.status_dict())
    if method == "GET" and path == "/metrics":
        text = metrics_to_prometheus(service.telemetry.metrics)
        return _response(
            200, text.encode("utf-8"), "text/plain; version=0.0.4"
        )
    if method == "POST" and path == "/submit":
        from ..scheduler import CampaignSpec

        try:
            spec = CampaignSpec.from_json(body.decode("utf-8"))
        except (SchedulerError, UnicodeDecodeError) as exc:
            return _json_response(400, {"error": str(exc)})
        try:
            submission = service.submit_spec(spec)
        except SchedulerBusy as exc:
            return _json_response(
                503,
                {"error": str(exc), "busy": True},
                extra="Retry-After: 5\r\n",
            )
        return _json_response(
            200,
            {
                "submission_id": submission.submission_id,
                "name": submission.name,
                "deduped": submission.deduped > 0,
            },
        )
    if method == "POST" and path == "/cancel":
        try:
            payload = json.loads(body.decode("utf-8"))
            sid = payload["submission_id"]
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            UnicodeDecodeError,
        ) as exc:
            return _json_response(400, {"error": f"bad cancel body: {exc}"})
        try:
            dropped = service.cancel_submission(sid)
        except SchedulerError as exc:
            return _json_response(404, {"error": str(exc)})
        return _json_response(
            200, {"submission_id": sid, "dropped": dropped}
        )
    if path in ("/status", "/metrics", "/submit", "/cancel"):
        return _json_response(405, {"error": f"{method} not allowed"})
    return _json_response(404, {"error": f"no route {path!r}"})


async def start_http(service, host: str = "127.0.0.1"):
    """Start the endpoint; returns the asyncio server (close to stop)."""

    async def handle(reader, writer):
        try:
            request = await _read_request(reader)
            if request is None:
                writer.write(
                    _json_response(400, {"error": "malformed request"})
                )
            else:
                writer.write(_route(service, *request))
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            writer.close()

    return await asyncio.start_server(
        handle, host, service.config.http_port
    )
