"""Software error-detection and selective-hardening mechanisms.

Design implication #4 of the paper: SDCs at low voltage come from
*unprotected* paths, so architects should "locate soft errors in those
circuit paths causing SDCs ... add new protection mechanisms".  This
subpackage implements the standard software-side answers and evaluates
their coverage against the library's own fault injector:

* :mod:`repro.resilience.abft` -- algorithm-based fault tolerance:
  checksum-carrying matrix kernels that detect (and for single faults,
  locate) data corruption at O(n) extra work.
* :mod:`repro.resilience.redundancy` -- dual- and triple-modular
  redundant execution wrappers over any workload.
* :mod:`repro.resilience.selective` -- budgeted selective hardening:
  choose which core structures to protect for the best SDC-FIT
  reduction per unit cost (Wu & Marculescu [81]'s knapsack).
* :mod:`repro.resilience.evaluation` -- fault-injection coverage
  measurement for any detector.
"""

from .abft import AbftReport, abft_matmul, abft_matvec, checksum_augment
from .redundancy import DmrResult, dmr_run, tmr_run
from .selective import HardeningChoice, HardeningOption, select_hardening
from .evaluation import CoverageReport, measure_detector_coverage

__all__ = [
    "AbftReport",
    "abft_matmul",
    "abft_matvec",
    "checksum_augment",
    "DmrResult",
    "dmr_run",
    "tmr_run",
    "HardeningChoice",
    "HardeningOption",
    "select_hardening",
    "CoverageReport",
    "measure_detector_coverage",
]
