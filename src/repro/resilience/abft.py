"""Algorithm-based fault tolerance (ABFT) for matrix kernels.

Huang & Abraham's classic scheme: augment a matrix with checksum rows/
columns; linear operations preserve the checksum relation, so verifying
it after the computation detects any corruption of the operands or the
result -- at O(n) extra arithmetic instead of full duplication.  For
the paper's context: ABFT is exactly the kind of *selective, cheap* SDC
detector that matters when undervolting multiplies the SDC FIT by 16x.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class AbftReport:
    """Outcome of one checksum-verified operation.

    Attributes
    ----------
    result:
        The computed (unaugmented) result.
    detected:
        Whether the checksum relation was violated.
    max_discrepancy:
        Largest absolute checksum violation observed.
    tolerance:
        Threshold used (absolute, scaled by the operand magnitudes).
    """

    result: np.ndarray
    detected: bool
    max_discrepancy: float
    tolerance: float


def checksum_augment(matrix: np.ndarray) -> np.ndarray:
    """Append a column-checksum row: A' = [A ; 1^T A]."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise AnalysisError("checksum augmentation needs a 2-D matrix")
    return np.vstack([matrix, matrix.sum(axis=0)])


def _tolerance(scale: float, n: int, rtol: float) -> float:
    return rtol * max(scale, 1.0) * n


def _verdict(discrepancy: float, extended: np.ndarray, tolerance: float) -> bool:
    """Checksum verdict, treating non-finite arithmetic as detected.

    A corrupted exponent can drive the product to inf/NaN; NaN compares
    False against any threshold, so an explicit finiteness check is
    required or precisely the worst corruptions would pass silently.
    """
    if not np.all(np.isfinite(extended)):
        return True
    return discrepancy > tolerance


def abft_matvec(
    matrix: np.ndarray, vector: np.ndarray, rtol: float = 1e-9
) -> AbftReport:
    """Checksum-verified matrix-vector product.

    Computes y = A x alongside the checksum row c = (1^T A) x and
    verifies sum(y) == c.  Any single corrupted element of A, x, or y
    breaks the relation (barring exact cancellation).
    """
    matrix = np.asarray(matrix, dtype=float)
    vector = np.asarray(vector, dtype=float)
    if matrix.ndim != 2 or vector.ndim != 1:
        raise AnalysisError("need a 2-D matrix and a 1-D vector")
    if matrix.shape[1] != vector.shape[0]:
        raise AnalysisError("shape mismatch")
    augmented = checksum_augment(matrix)
    with np.errstate(all="ignore"):
        extended = augmented @ vector
    result, checksum = extended[:-1], extended[-1]
    discrepancy = abs(float(result.sum() - checksum))
    scale = float(np.abs(extended).max()) if extended.size else 0.0
    tolerance = _tolerance(scale, matrix.shape[1], rtol)
    return AbftReport(
        result=result,
        detected=_verdict(discrepancy, extended, tolerance),
        max_discrepancy=discrepancy,
        tolerance=tolerance,
    )


def abft_matmul(
    a: np.ndarray, b: np.ndarray, rtol: float = 1e-9
) -> AbftReport:
    """Checksum-verified matrix product (full row+column checksums).

    C = A B carries both a column checksum (from A's checksum row) and
    a row checksum (from B's checksum column); verifying both detects
    any single corrupted element and *locates* it at the intersection.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise AnalysisError("incompatible matrix shapes")
    a_aug = checksum_augment(a)  # extra row
    b_aug = np.hstack([b, b.sum(axis=1, keepdims=True)])  # extra column
    with np.errstate(all="ignore"):
        full = a_aug @ b_aug
    result = full[:-1, :-1]
    col_check = full[-1, :-1]
    row_check = full[:-1, -1]
    corner = full[-1, -1]
    col_gap = float(np.abs(result.sum(axis=0) - col_check).max())
    row_gap = float(np.abs(result.sum(axis=1) - row_check).max())
    corner_gap = abs(float(result.sum() - corner))
    discrepancy = max(col_gap, row_gap, corner_gap)
    scale = float(np.abs(full).max()) if full.size else 0.0
    tolerance = _tolerance(scale, a.shape[1], rtol)
    return AbftReport(
        result=result,
        detected=_verdict(discrepancy, full, tolerance),
        max_discrepancy=discrepancy,
        tolerance=tolerance,
    )


def abft_matvec_encoded(
    augmented: np.ndarray, vector: np.ndarray, rtol: float = 1e-9
) -> AbftReport:
    """Checksum-verified product over a *pre-encoded* matrix.

    This is the deployment shape of ABFT: the checksum row is computed
    once at setup (fault-free), and every later corruption of the
    stored matrix, the vector, or the product violates the relation.
    ``abft_matvec`` encodes and computes in one step, which only guards
    the computation itself; this variant also guards the data at rest.
    """
    augmented = np.asarray(augmented, dtype=float)
    vector = np.asarray(vector, dtype=float)
    if augmented.ndim != 2 or augmented.shape[0] < 2:
        raise AnalysisError("need an encoded matrix with a checksum row")
    if augmented.shape[1] != vector.shape[0]:
        raise AnalysisError("shape mismatch")
    with np.errstate(all="ignore"):
        extended = augmented @ vector
    result, checksum = extended[:-1], extended[-1]
    discrepancy = abs(float(result.sum() - checksum))
    scale = float(np.abs(extended).max()) if extended.size else 0.0
    tolerance = _tolerance(scale, augmented.shape[1], rtol)
    return AbftReport(
        result=result,
        detected=_verdict(discrepancy, extended, tolerance),
        max_discrepancy=discrepancy,
        tolerance=tolerance,
    )


def overhead_fraction(n: int) -> float:
    """Arithmetic overhead of ABFT matmul for n x n operands.

    One extra row and column over n: ~(2n+1)/n^2 extra multiply-adds --
    vanishing for the matrix sizes HPC kernels use, which is ABFT's
    whole argument against duplication's 100 %.
    """
    if n <= 0:
        raise AnalysisError("matrix order must be positive")
    return (2.0 * n + 1.0) / (n * n)
