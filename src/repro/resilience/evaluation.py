"""Fault-injection coverage measurement for SDC detectors.

Closes the loop between the resilience mechanisms and the fault
injector: corrupt real data, run the protected computation, and count
how often the detector fires on genuinely corrupted results -- the
coverage number that justifies (or indicts) a mechanism's overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import AnalysisError

#: A detector trial: given an RNG, return (corruption_mattered, detected).
DetectorTrial = Callable[[np.random.Generator], "tuple[bool, bool]"]


@dataclass(frozen=True)
class CoverageReport:
    """Detector coverage over an injection campaign.

    Attributes
    ----------
    trials:
        Number of injections performed.
    effective_faults:
        Injections whose corruption actually changed the result.
    detected:
        Effective faults the detector flagged.
    false_alarms:
        Detections on trials whose corruption was masked.
    """

    trials: int
    effective_faults: int
    detected: int
    false_alarms: int

    @property
    def coverage(self) -> float:
        """P(detected | fault affected the result)."""
        if self.effective_faults == 0:
            raise AnalysisError("no effective faults; cannot assess coverage")
        return self.detected / self.effective_faults

    @property
    def false_alarm_rate(self) -> float:
        """P(detected | fault was masked)."""
        masked = self.trials - self.effective_faults
        return self.false_alarms / masked if masked else 0.0


def measure_detector_coverage(
    trial: DetectorTrial,
    trials: int,
    rng: np.random.Generator,
) -> CoverageReport:
    """Run *trials* injection trials against a detector."""
    if trials <= 0:
        raise AnalysisError("trial count must be positive")
    effective = detected = false_alarms = 0
    for _ in range(trials):
        mattered, fired = trial(rng)
        if mattered:
            effective += 1
            if fired:
                detected += 1
        elif fired:
            false_alarms += 1
    return CoverageReport(
        trials=trials,
        effective_faults=effective,
        detected=detected,
        false_alarms=false_alarms,
    )


def abft_matvec_trial(n: int = 64, seed: int = 0) -> DetectorTrial:
    """A canonical ABFT coverage trial: corrupt one element, verify.

    Encodes a random matrix once (fault-free), then per trial flips one
    exponent-region bit of a random element of the *encoded* matrix and
    checks whether the checksum relation catches it.
    """
    from .abft import abft_matvec_encoded, checksum_augment

    base_rng = np.random.default_rng(seed)
    matrix = base_rng.standard_normal((n, n))
    vector = base_rng.standard_normal(n)
    encoded = checksum_augment(matrix)
    clean = abft_matvec_encoded(encoded, vector)
    if clean.detected:
        raise AnalysisError("clean ABFT run must not alarm")
    clean_result = clean.result

    def trial(rng: np.random.Generator) -> "tuple[bool, bool]":
        corrupted = encoded.copy()
        row = int(rng.integers(0, n))  # corrupt data rows, not checksum
        col = int(rng.integers(0, n))
        view = corrupted[row : row + 1, col : col + 1].view(np.uint64)
        bit = int(rng.integers(40, 63))  # mantissa-top/exponent bits
        view ^= np.uint64(1) << np.uint64(bit)
        report = abft_matvec_encoded(corrupted, vector)
        mattered = not np.allclose(
            report.result, clean_result, rtol=1e-9, atol=0.0
        )
        return mattered, report.detected

    return trial
