"""Dual- and triple-modular redundant execution over workloads.

The brute-force SDC answer: run the computation twice and compare
(DMR: detects at 2x cost) or three times and vote (TMR: corrects at
3x cost).  These wrappers operate on any :class:`repro.workloads.base.
Workload`, optionally with a fault hook so coverage can be measured
with real injected corruption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..errors import AnalysisError
from ..workloads.base import Workload, WorkloadResult

#: A hook mutating one replica's state before execution (fault model).
FaultHook = Callable[[Dict[str, np.ndarray], int], None]


@dataclass(frozen=True)
class DmrResult:
    """Outcome of a redundant execution.

    Attributes
    ----------
    result:
        The delivered result (majority under TMR; first replica under
        DMR when the replicas agree).
    detected:
        Replicas disagreed.
    corrected:
        TMR only: a majority existed despite a disagreement.
    replicas:
        Number of replicas executed.
    """

    result: WorkloadResult
    detected: bool
    corrected: bool
    replicas: int


def _run_replica(
    workload: Workload, replica: int, fault_hook: Optional[FaultHook]
) -> WorkloadResult:
    state = workload.build_state()
    if fault_hook is not None:
        fault_hook(state, replica)
    return workload.run(state)


def dmr_run(
    workload: Workload,
    fault_hook: Optional[FaultHook] = None,
    rtol: float = 1e-12,
) -> DmrResult:
    """Run twice; a mismatch flags (but cannot correct) an error."""
    first = _run_replica(workload, 0, fault_hook)
    second = _run_replica(workload, 1, fault_hook)
    agree = first.matches(second, rtol=rtol)
    return DmrResult(
        result=first,
        detected=not agree,
        corrected=False,
        replicas=2,
    )


def tmr_run(
    workload: Workload,
    fault_hook: Optional[FaultHook] = None,
    rtol: float = 1e-12,
) -> DmrResult:
    """Run three times; majority vote corrects a single faulty replica."""
    replicas = [_run_replica(workload, i, fault_hook) for i in range(3)]
    agreements = {
        (i, j): replicas[i].matches(replicas[j], rtol=rtol)
        for i in range(3)
        for j in range(i + 1, 3)
    }
    if all(agreements.values()):
        return DmrResult(
            result=replicas[0], detected=False, corrected=False, replicas=3
        )
    # Find a majority pair.
    for (i, j), agree in agreements.items():
        if agree:
            return DmrResult(
                result=replicas[i], detected=True, corrected=True, replicas=3
            )
    # Three-way disagreement: detected but uncorrectable.
    return DmrResult(
        result=replicas[0], detected=True, corrected=False, replicas=3
    )


def redundancy_energy_overhead(replicas: int) -> float:
    """Fractional energy overhead of N-modular redundancy.

    (N - 1) extra executions; the comparison/vote is negligible.  The
    context that matters here: DMR's 100 % costs far more than the
    ~11 % power undervolting saves -- redundancy as an SDC answer can
    erase the entire energy benefit (the introduction's warning).
    """
    if replicas < 1:
        raise AnalysisError("need at least one replica")
    return float(replicas - 1)
