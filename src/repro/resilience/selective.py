"""Budgeted selective hardening of core structures.

Wu & Marculescu [81] frame soft-error hardening as an optimization:
protect the structures with the best reliability-per-cost under a
budget.  Given the per-structure SDC-FIT contributions from
:mod:`repro.injection.microarch` and per-structure protection costs
(area/power of parity, ECC or hardened cells), the greedy
density-ordered knapsack below chooses what to protect -- the
actionable form of the paper's design implication #4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import AnalysisError


@dataclass(frozen=True)
class HardeningOption:
    """One protectable structure.

    Attributes
    ----------
    structure:
        Structure name.
    sdc_fit:
        SDC FIT the structure contributes unprotected.
    coverage:
        Fraction of that FIT the protection removes (parity on a
        read-mostly structure ~0.95; hardened flops ~0.99).
    cost:
        Protection cost in budget units (e.g. % core power).
    """

    structure: str
    sdc_fit: float
    coverage: float
    cost: float

    def __post_init__(self) -> None:
        if self.sdc_fit < 0 or self.cost <= 0:
            raise AnalysisError("FIT must be nonnegative and cost positive")
        if not 0 < self.coverage <= 1:
            raise AnalysisError("coverage must be in (0, 1]")

    @property
    def fit_removed(self) -> float:
        """SDC FIT eliminated when this option is taken."""
        return self.sdc_fit * self.coverage

    @property
    def density(self) -> float:
        """FIT removed per unit cost -- the greedy ordering key."""
        return self.fit_removed / self.cost


@dataclass(frozen=True)
class HardeningChoice:
    """The selected protection set.

    Attributes
    ----------
    selected:
        Options taken, in selection order.
    total_cost:
        Budget consumed.
    fit_removed:
        Total SDC FIT eliminated.
    fit_remaining:
        SDC FIT left over all candidate structures.
    """

    selected: List[HardeningOption]
    total_cost: float
    fit_removed: float
    fit_remaining: float

    @property
    def reduction_fraction(self) -> float:
        """Fraction of the candidate SDC FIT removed."""
        total = self.fit_removed + self.fit_remaining
        return self.fit_removed / total if total > 0 else 0.0


def select_hardening(
    options: List[HardeningOption], budget: float
) -> HardeningChoice:
    """Greedy density-ordered selection under a cost budget.

    Greedy is optimal when costs are small relative to the budget and
    within a factor of the optimum generally -- and matches how
    architects actually iterate ("protect the worst offender next").
    """
    if budget <= 0:
        raise AnalysisError("budget must be positive")
    if not options:
        raise AnalysisError("no hardening options given")
    remaining_budget = budget
    selected: List[HardeningOption] = []
    removed = 0.0
    for option in sorted(options, key=lambda o: o.density, reverse=True):
        if option.cost <= remaining_budget:
            selected.append(option)
            remaining_budget -= option.cost
            removed += option.fit_removed
    total_fit = sum(o.sdc_fit for o in options)
    return HardeningChoice(
        selected=selected,
        total_cost=budget - remaining_budget,
        fit_removed=removed,
        fit_remaining=total_fit - removed,
    )


def options_from_microarch(
    injector,
    coverage: float = 0.95,
    cost_per_kbit: float = 0.08,
    susceptibility_multiplier: float = 1.0,
) -> List[HardeningOption]:
    """Build hardening options from a :class:`MicroarchInjector`.

    Cost scales with structure size (protection bits are proportional);
    the voltage multiplier prices the options at a scaled supply.
    """
    from ..injection.events import OutcomeKind

    options = []
    for structure in injector.structures:
        fit = injector.structure_fit(
            structure.name, OutcomeKind.SDC, susceptibility_multiplier
        )
        if fit <= 0:
            continue
        options.append(
            HardeningOption(
                structure=structure.name,
                sdc_fit=fit,
                coverage=coverage,
                cost=cost_per_kbit * structure.bits / 1024.0,
            )
        )
    if not options:
        raise AnalysisError("no vulnerable structures to harden")
    return options
