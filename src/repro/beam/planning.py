"""Beam-time planning: how many hours buy how much statistics.

Beam time is reserved months ahead and billed by the hour; session 4
ran only 165 minutes because the reservation ran out (Section 3.5).
This planner answers the questions the authors had to answer before
flying: how long until the fluence-significance threshold, how long
until N expected events, and what relative precision a session of a
given length will deliver on each event class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from scipy import stats

from ..constants import (
    CONFIDENCE_LEVEL,
    SIGNIFICANT_EVENTS,
    SIGNIFICANT_FLUENCE,
    TNF_HALO_FLUX_PER_CM2_S,
)
from ..errors import BeamError


@dataclass(frozen=True)
class BeamTimePlan:
    """Planning summary for one prospective session.

    Attributes
    ----------
    hours:
        Planned beam-on time.
    fluence_per_cm2:
        Fluence the session will accumulate.
    expected_events:
        Expected event count per class, by name.
    relative_precision:
        Expected half-width of the 95 % CI relative to the rate, per
        class (~z/sqrt(N) for Poisson counts).
    """

    hours: float
    fluence_per_cm2: float
    expected_events: Dict[str, float]
    relative_precision: Dict[str, float]

    @property
    def reaches_fluence_significance(self) -> bool:
        """Does the session clear the ESCC-25100 fluence threshold?"""
        return self.fluence_per_cm2 >= SIGNIFICANT_FLUENCE

    def reaches_event_significance(self, event_class: str) -> bool:
        """Does the class expect >= 100 events (the Schwank rule)?"""
        if event_class not in self.expected_events:
            raise BeamError(f"unknown event class {event_class!r}")
        return self.expected_events[event_class] >= SIGNIFICANT_EVENTS


class BeamTimePlanner:
    """Plans session lengths for target statistics.

    Parameters
    ----------
    flux_per_cm2_s:
        Beam flux at the DUT (halo flux by default).
    rates_per_min:
        Expected event rates per class (e.g. from the calibrated
        models, or from a pilot run).
    """

    def __init__(
        self,
        flux_per_cm2_s: float = TNF_HALO_FLUX_PER_CM2_S,
        rates_per_min: Dict[str, float] = None,
    ) -> None:
        if flux_per_cm2_s <= 0:
            raise BeamError("flux must be positive")
        self.flux = flux_per_cm2_s
        self.rates = dict(rates_per_min or {})
        for name, rate in self.rates.items():
            if rate < 0:
                raise BeamError(f"rate for {name!r} must be nonnegative")

    # -- time for targets ----------------------------------------------------------

    def hours_for_fluence(
        self, fluence: float = SIGNIFICANT_FLUENCE
    ) -> float:
        """Beam hours to accumulate a target fluence."""
        if fluence <= 0:
            raise BeamError("fluence target must be positive")
        return fluence / self.flux / 3600.0

    def hours_for_events(
        self, event_class: str, count: float = SIGNIFICANT_EVENTS
    ) -> float:
        """Beam hours until a class expects *count* events."""
        if count <= 0:
            raise BeamError("event target must be positive")
        rate = self.rates.get(event_class)
        if rate is None:
            raise BeamError(f"unknown event class {event_class!r}")
        if rate == 0:
            raise BeamError(f"{event_class!r} has zero rate; unreachable")
        return count / rate / 60.0

    def hours_for_precision(
        self,
        event_class: str,
        relative_halfwidth: float,
        level: float = CONFIDENCE_LEVEL,
    ) -> float:
        """Beam hours for a target relative CI half-width on a rate.

        For a Poisson count N the 95 % CI half-width is ~ z*sqrt(N), so
        the relative precision is z/sqrt(N): solve for N, then for time.
        """
        if not 0 < relative_halfwidth < 1:
            raise BeamError("relative half-width must be in (0, 1)")
        z = stats.norm.ppf(0.5 + level / 2.0)
        needed_events = (z / relative_halfwidth) ** 2
        return self.hours_for_events(event_class, needed_events)

    # -- session assessment -----------------------------------------------------------

    def plan(self, hours: float) -> BeamTimePlan:
        """Assess what a session of *hours* delivers."""
        if hours <= 0:
            raise BeamError("session length must be positive")
        minutes = hours * 60.0
        expected = {name: rate * minutes for name, rate in self.rates.items()}
        z = stats.norm.ppf(0.5 + CONFIDENCE_LEVEL / 2.0)
        precision = {
            name: (z / count ** 0.5 if count > 0 else float("inf"))
            for name, count in expected.items()
        }
        return BeamTimePlan(
            hours=hours,
            fluence_per_cm2=self.flux * hours * 3600.0,
            expected_events=expected,
            relative_precision=precision,
        )
