"""The TNF beam: proton current, neutron flux, and the beam envelope.

Under typical conditions a 100 uA proton current on the neutron
production target yields 2-3 x 10^6 n/cm^2/s (E > 10 MeV) at the test
position, and the flux cannot be reduced below that due to operational
constraints -- which is exactly why the DUT had to move to the halo
(Section 3.4).  The absolute flux carries ~20 % uncertainty from the
yearly activation-foil calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import (
    TNF_ABSOLUTE_FLUX_UNCERTAINTY,
    TNF_BEAM_SPOT_CM,
    TNF_FLUX_MAX_PER_CM2_S,
    TNF_FLUX_MIN_PER_CM2_S,
)
from ..errors import BeamError
from .positioning import BeamPosition, PositioningModel
from .spectrum import NeutronSpectrum


@dataclass(frozen=True)
class BeamState:
    """One operational configuration of the beam + DUT placement.

    Attributes
    ----------
    flux_center_per_cm2_s:
        Flux (E > 10 MeV) at the beam-center test position.
    position:
        Where the DUT sits.
    attenuation:
        Flux fraction at the DUT for this placement.
    """

    flux_center_per_cm2_s: float
    position: BeamPosition
    attenuation: float

    @property
    def flux_at_dut_per_cm2_s(self) -> float:
        """Flux (E > 10 MeV) actually seen by the DUT."""
        return self.flux_center_per_cm2_s * self.attenuation


class TnfBeam:
    """The TNF neutron beam and its operational envelope.

    Parameters
    ----------
    nominal_current_ua:
        Proton current on the production target, microamps.  Flux
        scales linearly with current around the 100 uA reference.
    spectrum:
        Beam energy spectrum model.
    positioning:
        DUT placement model.
    """

    REFERENCE_CURRENT_UA = 100.0

    def __init__(
        self,
        nominal_current_ua: float = 100.0,
        spectrum: NeutronSpectrum = None,
        positioning: PositioningModel = None,
    ) -> None:
        if nominal_current_ua <= 0:
            raise BeamError("proton current must be positive")
        self.current_ua = float(nominal_current_ua)
        self.spectrum = spectrum or NeutronSpectrum()
        self.positioning = positioning or PositioningModel()
        self.beam_spot_cm = TNF_BEAM_SPOT_CM

    def center_flux_range(self) -> "tuple[float, float]":
        """Flux range at the center for the present current (n/cm^2/s)."""
        scale = self.current_ua / self.REFERENCE_CURRENT_UA
        return (
            TNF_FLUX_MIN_PER_CM2_S * scale,
            TNF_FLUX_MAX_PER_CM2_S * scale,
        )

    def mean_center_flux(self) -> float:
        """Midpoint of the flux range -- the paper's (2+3)/2 convention."""
        lo, hi = self.center_flux_range()
        return 0.5 * (lo + hi)

    def sample_center_flux(self, rng: np.random.Generator) -> float:
        """One realization of the absolute center flux.

        Uniform within the operational range, then perturbed by the
        ~20 % absolute-calibration uncertainty of the activation-foil
        method.
        """
        lo, hi = self.center_flux_range()
        flux = rng.uniform(lo, hi)
        flux *= max(rng.normal(1.0, TNF_ABSOLUTE_FLUX_UNCERTAINTY), 0.05)
        return float(flux)

    def place_dut(
        self,
        position: BeamPosition,
        rng: np.random.Generator = None,
        *,
        mean_values: bool = True,
    ) -> BeamState:
        """Insert the DUT at a position and return the beam state.

        With ``mean_values=True`` (default) the deterministic mean flux
        and attenuation are used -- the mode the reproduction benches
        run in.  With ``mean_values=False`` a random realization of
        flux and placement is drawn (requires *rng*).
        """
        if mean_values:
            return BeamState(
                flux_center_per_cm2_s=self.mean_center_flux(),
                position=position,
                attenuation=self.positioning.attenuation(position),
            )
        if rng is None:
            raise BeamError("random placement requires an RNG")
        return BeamState(
            flux_center_per_cm2_s=self.sample_center_flux(rng),
            position=position,
            attenuation=self.positioning.sample_attenuation(position, rng),
        )
