"""SRAM "golden board" dosimeter and the halo flux calibration.

TRIUMF characterizes beam intensity with an SRAM-based dosimeter whose
SEU rate is proportional to flux [11].  The paper measured the
dosimeter's SEU rate once at the beam center and six times at the halo
position (moving the DUT between measurements to capture mechanical
positioning spread), and took the rate ratio as the halo attenuation:
0.60 +/- 0.02 % (Section 3.4).

:func:`calibrate_halo` reproduces exactly that procedure against the
simulated beam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import BeamError
from .facility import TnfBeam
from .positioning import BeamPosition


@dataclass(frozen=True)
class SramDosimeter:
    """A known-cross-section SRAM reference board.

    Attributes
    ----------
    bits:
        SRAM capacity of the dosimeter board.
    sigma_cm2_per_bit:
        Calibrated per-bit SEU cross-section of the dosimeter SRAM.
    """

    bits: int = 64 * 1024 * 1024
    sigma_cm2_per_bit: float = 1.2e-14

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise BeamError("dosimeter needs at least one bit")
        if self.sigma_cm2_per_bit <= 0:
            raise BeamError("dosimeter cross-section must be positive")

    def expected_seu_rate_per_s(self, flux_per_cm2_s: float) -> float:
        """Expected SEU rate of the board under a given flux."""
        if flux_per_cm2_s < 0:
            raise BeamError("flux must be nonnegative")
        return self.bits * self.sigma_cm2_per_bit * flux_per_cm2_s

    def measure_seu_count(
        self,
        flux_per_cm2_s: float,
        exposure_s: float,
        rng: np.random.Generator,
    ) -> int:
        """Count SEUs over one exposure (Poisson statistics)."""
        if exposure_s < 0:
            raise BeamError("exposure must be nonnegative")
        lam = self.expected_seu_rate_per_s(flux_per_cm2_s) * exposure_s
        return int(rng.poisson(lam))


@dataclass(frozen=True)
class HaloCalibration:
    """Result of the relative halo flux measurement.

    Attributes
    ----------
    attenuation_mean:
        Estimated halo/center flux ratio.
    attenuation_sigma:
        Combined statistical + positioning 1-sigma uncertainty.
    halo_rates_per_s:
        The individual halo SEU-rate measurements.
    center_rate_per_s:
        The single center SEU-rate measurement.
    """

    attenuation_mean: float
    attenuation_sigma: float
    halo_rates_per_s: List[float]
    center_rate_per_s: float


def calibrate_halo(
    beam: TnfBeam,
    dosimeter: SramDosimeter,
    rng: np.random.Generator,
    *,
    halo_measurements: int = 6,
    exposure_s: float = 600.0,
) -> HaloCalibration:
    """Run the paper's relative-intensity calibration procedure.

    One dosimeter exposure at the beam center, then *halo_measurements*
    exposures at the halo position, physically re-inserting the board
    (and thus re-rolling the positioning error) each time.  The halo
    attenuation is estimated from the rate ratios.
    """
    if halo_measurements < 2:
        raise BeamError("need at least two halo measurements")
    if exposure_s <= 0:
        raise BeamError("exposure must be positive")

    center_state = beam.place_dut(BeamPosition.CENTER, rng, mean_values=False)
    center_count = dosimeter.measure_seu_count(
        center_state.flux_at_dut_per_cm2_s, exposure_s, rng
    )
    if center_count == 0:
        raise BeamError("center exposure saw no SEUs; extend the exposure")
    center_rate = center_count / exposure_s

    halo_rates: List[float] = []
    for _ in range(halo_measurements):
        # Each measurement is a fresh physical placement at the halo,
        # against the same center flux realization.
        attenuation = beam.positioning.sample_attenuation(
            BeamPosition.HALO, rng
        )
        flux = center_state.flux_center_per_cm2_s * attenuation
        count = dosimeter.measure_seu_count(flux, exposure_s, rng)
        halo_rates.append(count / exposure_s)

    ratios = np.array(halo_rates) / center_rate
    return HaloCalibration(
        attenuation_mean=float(ratios.mean()),
        attenuation_sigma=float(ratios.std(ddof=1)),
        halo_rates_per_s=halo_rates,
        center_rate_per_s=center_rate,
    )
