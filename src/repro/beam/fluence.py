"""Fluence accounting and NYC sea-level equivalence.

Fluence (neutrons/cm^2 integrated over a session) is the denominator of
every cross-section in the study and drives both stopping rules (>= 1e11
n/cm^2 for statistical significance) and the "years of NYC equivalent
radiation" row of Table 2.
"""

from __future__ import annotations

from ..constants import (
    NYC_FLUX_PER_CM2_HOUR,
    SIGNIFICANT_FLUENCE,
)
from ..errors import BeamError
from ..units import hours_to_years, seconds_to_hours


class FluenceAccount:
    """Integrates fluence over a test session.

    Exposure segments at (possibly) different fluxes are accumulated;
    the account reports total fluence, exposure time, and the
    statistical-significance stopping condition.
    """

    def __init__(self) -> None:
        self._fluence = 0.0
        self._seconds = 0.0

    def expose(self, flux_per_cm2_s: float, seconds: float) -> None:
        """Add one exposure segment."""
        if flux_per_cm2_s < 0:
            raise BeamError("flux must be nonnegative")
        if seconds < 0:
            raise BeamError("exposure time must be nonnegative")
        self._fluence += flux_per_cm2_s * seconds
        self._seconds += seconds

    @property
    def fluence_per_cm2(self) -> float:
        """Accumulated fluence, neutrons/cm^2."""
        return self._fluence

    @property
    def exposure_seconds(self) -> float:
        """Accumulated beam-on time, seconds."""
        return self._seconds

    @property
    def exposure_minutes(self) -> float:
        """Accumulated beam-on time, minutes."""
        return self._seconds / 60.0

    def is_significant(self, threshold: float = SIGNIFICANT_FLUENCE) -> bool:
        """True once the ESCC-25100 fluence threshold is reached."""
        return self._fluence >= threshold

    def nyc_equivalent_years(self) -> float:
        """Years of natural NYC sea-level irradiation with equal fluence."""
        return nyc_equivalent_years(self._fluence)

    def __repr__(self) -> str:
        return (
            f"FluenceAccount({self._fluence:.3e} n/cm^2 over "
            f"{seconds_to_hours(self._seconds):.2f} h)"
        )


def nyc_equivalent_hours(fluence_per_cm2: float) -> float:
    """Hours of natural NYC irradiation matching *fluence_per_cm2*."""
    if fluence_per_cm2 < 0:
        raise BeamError("fluence must be nonnegative")
    return fluence_per_cm2 / NYC_FLUX_PER_CM2_HOUR


def nyc_equivalent_years(fluence_per_cm2: float) -> float:
    """Years of natural NYC irradiation matching *fluence_per_cm2*.

    Table 2's "Years of NYC equivalent radiation" row: e.g. session 1's
    1.49e11 n/cm^2 corresponds to ~1.3e6 years.
    """
    return hours_to_years(nyc_equivalent_hours(fluence_per_cm2))


def acceleration_factor(flux_per_cm2_s: float) -> float:
    """How much faster the beam ages the DUT than nature does.

    The ratio of the beam flux to the NYC reference flux; at the halo
    flux of 1.5e6 n/cm^2/s this is ~4e8.
    """
    if flux_per_cm2_s < 0:
        raise BeamError("flux must be nonnegative")
    nyc_per_s = NYC_FLUX_PER_CM2_HOUR / 3600.0
    return flux_per_cm2_s / nyc_per_s
