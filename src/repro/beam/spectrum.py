"""Atmospheric-like neutron energy spectrum.

The TNF beam is tuned to match the JEDEC JESD89B terrestrial reference
spectrum (Section 3.4).  Above ~10 MeV the differential flux of the
atmospheric spectrum is well approximated by a power law
dPhi/dE ~ E^-gamma with gamma ~= 1.25 over 10-1000 MeV; upset-relevant
fluence figures count only E > 10 MeV, with a separately book-kept
thermal component (~15 % of the >10 MeV flux in the halo configuration).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import TNF_THERMAL_FRACTION
from ..errors import BeamError


@dataclass(frozen=True)
class NeutronSpectrum:
    """Power-law approximation of the >10 MeV atmospheric spectrum.

    Attributes
    ----------
    e_min_mev / e_max_mev:
        Energy bounds of the fast component (MeV).
    gamma:
        Power-law index of the differential spectrum.
    thermal_fraction:
        Thermal-neutron flux as a fraction of the >10 MeV flux.
    """

    e_min_mev: float = 10.0
    e_max_mev: float = 1000.0
    gamma: float = 1.25
    thermal_fraction: float = TNF_THERMAL_FRACTION

    def __post_init__(self) -> None:
        if self.e_min_mev <= 0 or self.e_max_mev <= self.e_min_mev:
            raise BeamError("need 0 < e_min < e_max")
        if self.gamma <= 1.0:
            raise BeamError("spectrum index must exceed 1 for a finite integral")
        if not 0 <= self.thermal_fraction < 1:
            raise BeamError("thermal fraction must be in [0, 1)")

    def differential_flux(self, energy_mev: np.ndarray) -> np.ndarray:
        """Unnormalized dPhi/dE at the given energies (zero out of range)."""
        energy_mev = np.asarray(energy_mev, dtype=float)
        flux = np.where(
            (energy_mev >= self.e_min_mev) & (energy_mev <= self.e_max_mev),
            energy_mev ** (-self.gamma),
            0.0,
        )
        return flux

    def fraction_above(self, threshold_mev: float) -> float:
        """Fraction of the fast fluence above *threshold_mev*.

        Analytic integral of the power law; thresholds below e_min count
        the whole fast component.
        """
        if threshold_mev >= self.e_max_mev:
            return 0.0
        lo = max(threshold_mev, self.e_min_mev)
        g1 = 1.0 - self.gamma
        total = self.e_max_mev ** g1 - self.e_min_mev ** g1
        above = self.e_max_mev ** g1 - lo ** g1
        return float(above / total)

    def mean_energy_mev(self) -> float:
        """Fluence-weighted mean energy of the fast component."""
        g1 = 1.0 - self.gamma
        g2 = 2.0 - self.gamma
        num = (self.e_max_mev ** g2 - self.e_min_mev ** g2) / g2
        den = (self.e_max_mev ** g1 - self.e_min_mev ** g1) / g1
        return float(num / den)

    def sample_energies(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw neutron energies (MeV) by inverse-CDF of the power law."""
        if size < 0:
            raise BeamError("sample size must be nonnegative")
        u = rng.random(size)
        g1 = 1.0 - self.gamma
        lo = self.e_min_mev ** g1
        hi = self.e_max_mev ** g1
        return (lo + u * (hi - lo)) ** (1.0 / g1)
