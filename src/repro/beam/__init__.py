"""TRIUMF Neutron irradiation Facility (TNF) beam simulator.

Models the accelerated-radiation environment of Section 3.4:

* :mod:`repro.beam.spectrum` -- atmospheric-like neutron energy
  spectrum (JEDEC JESD89B shape) with a thermal-contamination tail.
* :mod:`repro.beam.facility` -- the TNF beam: proton current to flux,
  operational envelope, beam spot.
* :mod:`repro.beam.positioning` -- beam-center vs halo placement with
  mechanical positioning uncertainty.
* :mod:`repro.beam.dosimeter` -- the SRAM "golden board" dosimeter used
  for the relative flux calibration at the halo position.
* :mod:`repro.beam.fluence` -- fluence integration and NYC sea-level
  equivalence.
"""

from .spectrum import NeutronSpectrum
from .facility import TnfBeam, BeamState
from .positioning import BeamPosition, PositioningModel
from .dosimeter import SramDosimeter, HaloCalibration, calibrate_halo
from .fluence import FluenceAccount, nyc_equivalent_hours, nyc_equivalent_years
from .planning import BeamTimePlan, BeamTimePlanner
from .weibull import WeibullCurve, fit_weibull, rate_in_spectrum

__all__ = [
    "NeutronSpectrum",
    "TnfBeam",
    "BeamState",
    "BeamPosition",
    "PositioningModel",
    "SramDosimeter",
    "HaloCalibration",
    "calibrate_halo",
    "FluenceAccount",
    "nyc_equivalent_hours",
    "nyc_equivalent_years",
    "BeamTimePlan",
    "BeamTimePlanner",
    "WeibullCurve",
    "fit_weibull",
    "rate_in_spectrum",
]
