"""Weibull cross-section curves: the SEE community's device signature.

Single-event-effect testing characterizes a device by its cross-section
as a function of particle energy (protons/neutrons) or LET (heavy
ions), conventionally fit with a four-parameter Weibull:

    sigma(x) = sigma_sat * (1 - exp(-((x - x0) / W)^s))   for x > x0

with onset threshold ``x0``, width ``W``, shape ``s`` and saturation
cross-section ``sigma_sat``.  The fitted curve is what lets results
move between facilities (TNF's spectrum vs monoenergetic sources) and
feeds rate predictions for arbitrary environments -- the facility-side
complement to this library's FIT pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares

from ..errors import BeamError


@dataclass(frozen=True)
class WeibullCurve:
    """A fitted Weibull cross-section curve.

    Attributes
    ----------
    sigma_sat_cm2:
        Saturation cross-section.
    threshold:
        Onset energy/LET ``x0`` (no upsets below it).
    width:
        Scale parameter ``W``.
    shape:
        Shape parameter ``s``.
    """

    sigma_sat_cm2: float
    threshold: float
    width: float
    shape: float

    def __post_init__(self) -> None:
        if self.sigma_sat_cm2 <= 0:
            raise BeamError("saturation cross-section must be positive")
        if self.threshold < 0:
            raise BeamError("threshold must be nonnegative")
        if self.width <= 0 or self.shape <= 0:
            raise BeamError("width and shape must be positive")

    def sigma(self, x) -> np.ndarray:
        """Cross-section at energies/LETs *x* (vectorized)."""
        x = np.asarray(x, dtype=float)
        above = np.clip(x - self.threshold, 0.0, None)
        return self.sigma_sat_cm2 * -np.expm1(
            -((above / self.width) ** self.shape)
        )

    def onset_x(self, fraction: float = 0.1) -> float:
        """Energy/LET where sigma reaches *fraction* of saturation."""
        if not 0 < fraction < 1:
            raise BeamError("fraction must be in (0, 1)")
        return self.threshold + self.width * (
            -np.log(1.0 - fraction)
        ) ** (1.0 / self.shape)

    def saturated_above(self, tolerance: float = 0.05) -> float:
        """Energy/LET beyond which sigma is within tolerance of saturation."""
        if not 0 < tolerance < 1:
            raise BeamError("tolerance must be in (0, 1)")
        return self.threshold + self.width * (
            -np.log(tolerance)
        ) ** (1.0 / self.shape)


def fit_weibull(
    x: Sequence[float],
    sigma: Sequence[float],
    initial: Tuple[float, float, float, float] = None,
) -> WeibullCurve:
    """Least-squares fit of a Weibull curve to measured cross-sections.

    Parameters
    ----------
    x:
        Test energies/LETs.
    sigma:
        Measured cross-sections at each point.
    initial:
        Optional (sigma_sat, threshold, width, shape) starting point.
    """
    x = np.asarray(list(x), dtype=float)
    sigma = np.asarray(list(sigma), dtype=float)
    if x.size != sigma.size:
        raise BeamError("x and sigma must align")
    if x.size < 4:
        raise BeamError("need at least 4 points for a 4-parameter fit")
    if np.any(sigma < 0):
        raise BeamError("cross-sections must be nonnegative")
    if sigma.max() <= 0:
        raise BeamError("all cross-sections are zero; nothing to fit")

    if initial is None:
        # Data-driven starting point: saturation from the top samples,
        # threshold just below the first clearly-nonzero point, width
        # from the 63%-of-saturation crossing.
        s_sat0 = float(sigma.max())
        nonzero = x[sigma > 0.02 * s_sat0]
        x_on = float(nonzero.min()) if nonzero.size else float(x.min())
        threshold0 = max(0.8 * x_on, 0.0)
        above = x[sigma >= 0.63 * s_sat0]
        x63 = float(above.min()) if above.size else float(x.max())
        width0 = max(x63 - threshold0, 1e-6)
        initial = (s_sat0, threshold0, width0, 2.0)

    def residuals(params):
        s_sat, x0, width, shape = params
        curve = WeibullCurve(
            sigma_sat_cm2=max(s_sat, 1e-30),
            threshold=max(x0, 0.0),
            width=max(width, 1e-12),
            shape=max(shape, 1e-6),
        )
        # Per-point relative weighting: cross-sections span orders of
        # magnitude across the onset knee, and a plain scaled residual
        # lets degenerate near-step solutions fit the saturated points
        # while ignoring the knee entirely.
        scale = sigma.max()
        return (curve.sigma(x) - sigma) / (sigma + 0.02 * scale)

    lower = [1e-30, 0.0, 1e-12, 1e-6]
    upper = [
        10.0 * float(sigma.max()),
        float(x.max()),
        10.0 * float(x.max() - x.min() + 1.0),
        20.0,
    ]
    solution = least_squares(
        residuals,
        x0=np.clip(np.asarray(initial, dtype=float), lower, upper),
        bounds=(lower, upper),
        max_nfev=5000,
    )
    s_sat, x0, width, shape = solution.x
    return WeibullCurve(
        sigma_sat_cm2=float(max(s_sat, 1e-30)),
        threshold=float(max(x0, 0.0)),
        width=float(max(width, 1e-12)),
        shape=float(max(shape, 1e-6)),
    )


def rate_in_spectrum(
    curve: WeibullCurve,
    energies: np.ndarray,
    differential_flux: np.ndarray,
) -> float:
    """Fold a cross-section curve with a differential spectrum.

    rate = integral sigma(E) * dPhi/dE dE  -- the standard rate
    prediction once the Weibull is in hand (trapezoidal integration).
    """
    energies = np.asarray(energies, dtype=float)
    differential_flux = np.asarray(differential_flux, dtype=float)
    if energies.size != differential_flux.size:
        raise BeamError("energy grid and flux must align")
    if energies.size < 2:
        raise BeamError("need at least 2 grid points")
    if np.any(np.diff(energies) <= 0):
        raise BeamError("energy grid must be strictly increasing")
    integrate = getattr(np, "trapezoid", None) or np.trapz
    return float(
        integrate(curve.sigma(energies) * differential_flux, energies)
    )
