"""DUT placement relative to the beam: center vs halo.

On the first campaign day the DUT sat in the beam center and crashed
too often to collect data, so the board was raised 5-10 cm into the
beam *halo*, lowering the flux to ~0.6 % of the center value (Section
3.4).  The halo position, unlike the center, has no mechanical stop, so
each re-insertion carries a positioning uncertainty that the six
dosimeter measurements quantified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..constants import TNF_HALO_FRACTION, TNF_HALO_FRACTION_UNCERTAINTY
from ..errors import BeamError


class BeamPosition(enum.Enum):
    """The two test positions used during the campaign."""

    CENTER = "center"
    HALO = "halo"


@dataclass(frozen=True)
class PositioningModel:
    """Flux attenuation and repositioning jitter for each position.

    Attributes
    ----------
    halo_fraction:
        Mean fraction of the center flux seen at the halo.
    halo_fraction_sigma:
        1-sigma combined statistical+positioning uncertainty on that
        fraction (0.02 % in the paper -- i.e. on the *percentage*).
    """

    halo_fraction: float = TNF_HALO_FRACTION
    halo_fraction_sigma: float = TNF_HALO_FRACTION_UNCERTAINTY

    def __post_init__(self) -> None:
        if not 0 < self.halo_fraction <= 1:
            raise BeamError("halo fraction must be in (0, 1]")
        if self.halo_fraction_sigma < 0:
            raise BeamError("halo uncertainty must be nonnegative")

    def attenuation(self, position: BeamPosition) -> float:
        """Mean flux fraction for a position (1.0 at center)."""
        if position is BeamPosition.CENTER:
            return 1.0
        return self.halo_fraction

    def sample_attenuation(
        self, position: BeamPosition, rng: np.random.Generator
    ) -> float:
        """Flux fraction for one physical (re)placement of the DUT.

        Each slide down the access channel re-rolls the positioning
        error; the center position has a mechanical stop and no jitter.
        """
        if position is BeamPosition.CENTER:
            return 1.0
        frac = rng.normal(self.halo_fraction, self.halo_fraction_sigma)
        return float(np.clip(frac, 0.0, 1.0))

    def repositioning_spread(
        self, rng: np.random.Generator, measurements: int = 6
    ) -> "tuple[float, float]":
        """Simulate the paper's six halo measurements.

        Returns the sample mean and standard deviation of the measured
        attenuation fractions over *measurements* independent
        re-insertions, mirroring the calibration procedure of
        Section 3.4.
        """
        if measurements < 2:
            raise BeamError("need at least two measurements for a spread")
        samples = np.array(
            [
                self.sample_attenuation(BeamPosition.HALO, rng)
                for _ in range(measurements)
            ]
        )
        return float(samples.mean()), float(samples.std(ddof=1))
