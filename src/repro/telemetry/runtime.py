"""The `Telemetry` facade: one object instrumented code talks to.

Runners and executors accept an optional :class:`Telemetry`; when it is
absent they fall back to :data:`NULL_TELEMETRY`, a permanently disabled
instance whose every operation is a no-op, so hot paths carry no
``if telemetry is not None`` branching of their own.

The facade enforces the subsystem's one invariant by construction: it
exposes clocks and counts, never randomness -- there is no way to reach
an RNG stream through it, so instrumentation cannot perturb a
campaign's draws.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import ContextManager, Optional

from .metrics import DEFAULT_BUCKETS, MetricsRegistry
from .tracing import Tracer

_NULL_CONTEXT: ContextManager[None] = nullcontext()


class Telemetry:
    """Bundles a metrics registry and a tracer behind one switch.

    Parameters
    ----------
    enabled:
        When False, every method is a no-op and nothing is allocated
        per call -- the configuration :data:`NULL_TELEMETRY` ships.
    """

    def __init__(
        self,
        enabled: bool = True,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(enabled=enabled)

    def span(self, name: str, **labels: object) -> ContextManager:
        """Open a tracer span (a shared no-op context when disabled)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return self.tracer.span(name, **labels)

    def count(self, name: str, n: int = 1, **labels: object) -> None:
        """Increment a counter."""
        if self.enabled:
            self.metrics.counter(name, **labels).inc(n)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one histogram observation (default buckets)."""
        if self.enabled:
            self.metrics.histogram(name, DEFAULT_BUCKETS, **labels).observe(
                value
            )

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge."""
        if self.enabled:
            self.metrics.gauge(name, **labels).set(value)

    def merge_snapshot(self, snapshot: Optional[dict]) -> None:
        """Fold a work unit's registry snapshot in (submission order!).

        Callers must merge snapshots in submission order, not
        completion order -- that is what keeps merged counts identical
        between serial and parallel executions.
        """
        if self.enabled and snapshot:
            self.metrics.merge(snapshot)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, {len(self.metrics)} instruments)"


#: The shared disabled instance instrumented code defaults to.
NULL_TELEMETRY = Telemetry(enabled=False)
