"""Counters, gauges and fixed-bucket histograms for the hot path.

The registry is deliberately minimal: a metric is a name plus a sorted
label tuple, and the instruments are plain Python objects with one
mutable slot each, cheap enough to increment inside the injector's
per-upset loop.  Nothing in here ever touches an RNG stream, the wall
clock, or any other global -- instrumentation on vs. off cannot change
a campaign's draws.

Two determinism rules shape the design:

* **Counts are deterministic.**  Counter values are pure functions of
  the work performed, so a registry merged from per-work-unit snapshots
  in submission order is bit-identical between serial and parallel
  executions (asserted in ``tests/telemetry/``).
* **Timings are quarantined.**  Durations only ever land in histograms
  (and in span trees, see :mod:`repro.telemetry.tracing`); the
  count-comparison helpers (:meth:`MetricsRegistry.counter_values`)
  deliberately exclude them, so no determinism-checked artifact
  contains a wall-clock number.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TelemetryError

#: Default histogram bucket upper bounds, in seconds -- spans campaign
#: stages from sub-millisecond unit dispatch to hour-long sessions.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
)

#: A metric identity: (name, ((label, value), ...)).
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _labels_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing integer count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be nonnegative) to the count."""
        if n < 0:
            raise TelemetryError(f"{self.name}: counters cannot decrease")
        self.value += int(n)

    def __repr__(self) -> str:
        return f"Counter({self.name}{dict(self.labels)}, value={self.value})"


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge's value."""
        self.value = float(value)

    def __repr__(self) -> str:
        return f"Gauge({self.name}{dict(self.labels)}, value={self.value})"


class Histogram:
    """Fixed-bucket histogram of nonnegative observations.

    Buckets are upper bounds; an implicit +Inf bucket catches the tail.
    Per-bucket counts are *non-cumulative* in memory and cumulated only
    at export time (the Prometheus convention).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: Tuple[Tuple[str, str], ...],
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise TelemetryError(f"{name}: buckets must be sorted and nonempty")
        self.name = name
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name}{dict(self.labels)}, "
            f"count={self.count}, sum={self.sum:.6g})"
        )


class MetricsRegistry:
    """Get-or-create home of every instrument, with deterministic export.

    Instruments are addressed by ``(name, labels)``; repeated lookups
    return the same object, so hot paths can also hold the handle
    directly and skip the dict lookup entirely.
    """

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}

    # -- instrument access -----------------------------------------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        key = (name, _labels_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, key[1])
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        key = (name, _labels_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, key[1])
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        key = (name, _labels_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, key[1], buckets)
        return instrument

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- determinism-checked views ---------------------------------------------

    def counter_values(self) -> Dict[str, int]:
        """Every counter as ``name{label=value,...} -> count``.

        This is the *only* view the determinism tests compare: it
        contains event counts and nothing time-derived.
        """
        return {
            _render_key(name, labels): c.value
            for (name, labels), c in sorted(self._counters.items())
        }

    # -- merging -----------------------------------------------------------------

    def merge(self, snapshot: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its ``to_dict`` snapshot) into this one.

        Counters and histogram buckets add; gauges take the incoming
        value (last write wins).  Work units hand their registry back to
        the parent as a snapshot, and the parent merges strictly in
        submission order, which keeps the merged counts independent of
        scheduling.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.to_dict()
        for item in snapshot.get("counters", []):
            self.counter(item["name"], **item["labels"]).inc(int(item["value"]))
        for item in snapshot.get("gauges", []):
            self.gauge(item["name"], **item["labels"]).set(item["value"])
        for item in snapshot.get("histograms", []):
            hist = self.histogram(
                item["name"], tuple(item["buckets"]), **item["labels"]
            )
            if hist.buckets != tuple(item["buckets"]):
                raise TelemetryError(
                    f"{item['name']}: bucket layout mismatch on merge"
                )
            for idx, n in enumerate(item["counts"]):
                hist.counts[idx] += int(n)
            hist.sum += float(item["sum"])
            hist.count += int(item["count"])

    # -- snapshots ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """A picklable/JSON-able snapshot, deterministically ordered."""
        return {
            "counters": [
                {"name": name, "labels": dict(labels), "value": c.value}
                for (name, labels), c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": g.value}
                for (name, labels), g in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(labels),
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for (name, labels), h in sorted(self._histograms.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from a snapshot."""
        registry = cls()
        registry.merge(data)
        return registry

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    # -- iteration (exporters) ---------------------------------------------------

    def counters(self) -> List[Counter]:
        """All counters in deterministic order."""
        return [c for _, c in sorted(self._counters.items())]

    def gauges(self) -> List[Gauge]:
        """All gauges in deterministic order."""
        return [g for _, g in sorted(self._gauges.items())]

    def histograms(self) -> List[Histogram]:
        """All histograms in deterministic order."""
        return [h for _, h in sorted(self._histograms.items())]


def _render_key(name: str, labels: Iterable[Tuple[str, str]]) -> str:
    labels = tuple(labels)
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"
