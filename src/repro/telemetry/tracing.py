"""Span-based tracing: a nestable tree of timed stages.

A span brackets one stage of a run (``with tracer.span("fly_session",
label="session3"): ...``) and records both a wall-clock start (for
humans reading a manifest) and a monotonic duration (for correctness:
wall clocks can step, ``time.perf_counter`` cannot).  Spans nest: a
span opened while another is active becomes its child, so a campaign
run leaves behind a tree like::

    campaign.run                      12.41s
      executor.map                    12.40s
        unit session1                  3.52s
        ...

Tracing shares the telemetry determinism rule: it reads clocks but
never an RNG stream, and its output (being all timings) is excluded
from every determinism-checked artifact.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed stage.

    Attributes
    ----------
    name:
        Stage label, e.g. ``"fly_session"``.
    labels:
        Extra discriminators (session label, executor name, ...).
    started_unix:
        Wall-clock start (seconds since the epoch).
    duration_s:
        Monotonic duration; 0 while the span is still open.
    children:
        Spans opened while this one was active.
    """

    name: str
    labels: Dict[str, str] = field(default_factory=dict)
    started_unix: float = 0.0
    duration_s: float = 0.0
    children: List["Span"] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-able encoding of the span subtree."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "started_unix": self.started_unix,
            "duration_s": self.duration_s,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        """Rebuild a span subtree from its encoding."""
        return cls(
            name=data["name"],
            labels=dict(data.get("labels", {})),
            started_unix=float(data.get("started_unix", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Yield ``(depth, span)`` over the subtree, pre-order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


class Tracer:
    """Collects a forest of spans via a context-manager API.

    Disabled tracers (``Tracer(enabled=False)``) skip all bookkeeping,
    so instrumented code does not need its own on/off branches.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **labels: object) -> Iterator[Optional[Span]]:
        """Open a span around a block; close and time it on exit."""
        if not self.enabled:
            yield None
            return
        span = Span(
            name=name,
            labels={k: str(v) for k, v in labels.items()},
            started_unix=time.time(),
        )
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self._roots.append(span)
        self._stack.append(span)
        started = time.perf_counter()
        try:
            yield span
        finally:
            span.duration_s = time.perf_counter() - started
            self._stack.pop()

    @property
    def roots(self) -> List[Span]:
        """Top-level spans, in open order."""
        return list(self._roots)

    def stage_durations(self) -> Dict[str, float]:
        """Flattened ``path -> seconds`` view of the forest.

        Paths join nested span names with ``/``; repeated paths (e.g.
        one span per session) sum their durations, which is what a
        manifest's per-stage accounting wants.
        """
        durations: Dict[str, float] = {}

        def visit(span: Span, prefix: str) -> None:
            path = f"{prefix}/{span.name}" if prefix else span.name
            durations[path] = durations.get(path, 0.0) + span.duration_s
            for child in span.children:
                visit(child, path)

        for root in self._roots:
            visit(root, "")
        return durations

    def to_list(self) -> List[dict]:
        """JSON-able encoding of the whole forest."""
        return [root.to_dict() for root in self._roots]

    def render(self, indent: int = 2) -> str:
        """The forest as an indented console tree."""
        lines = []
        for root in self._roots:
            for depth, span in root.walk():
                label = (
                    " ".join(f"{k}={v}" for k, v in sorted(span.labels.items()))
                )
                suffix = f"  [{label}]" if label else ""
                lines.append(
                    f"{' ' * (indent * depth)}{span.name:<32} "
                    f"{span.duration_s * 1e3:10.1f} ms{suffix}"
                )
        return "\n".join(lines)
