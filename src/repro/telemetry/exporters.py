"""Telemetry exporters: JSON, Prometheus text format, console summary.

Three consumers, three formats:

* machines replaying a run read the JSON snapshot (also what
  ``manifest.json`` embeds);
* a scrape endpoint (or ``promtool``-style tooling) reads the
  Prometheus text exposition, with metric names sanitized to
  ``repro_``-prefixed underscore form;
* humans read :func:`console_summary`, a compact account of what a run
  did and where its time went.
"""

from __future__ import annotations

import re
from typing import List, Optional, Union

from .manifest import RunManifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracing import Span

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def metrics_to_json(
    metrics: Union[MetricsRegistry, dict], indent: Optional[int] = 2
) -> str:
    """The registry snapshot as a JSON document."""
    registry = _as_registry(metrics)
    return registry.to_json(indent=indent)


def metrics_to_prometheus(
    metrics: Union[MetricsRegistry, dict], prefix: str = "repro"
) -> str:
    """The registry in the Prometheus text exposition format (0.0.4).

    Counters gain the conventional ``_total`` suffix, histograms expand
    into cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``,
    and all names are sanitized to ``[a-zA-Z0-9_:]``.
    """
    registry = _as_registry(metrics)
    lines: List[str] = []
    typed: set = set()

    def declare(name: str, kind: str) -> None:
        # One TYPE line per metric family, however many label sets.
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for counter in registry.counters():
        name = _metric_name(prefix, counter.name, "_total")
        declare(name, "counter")
        lines.append(f"{name}{_label_set(counter.labels)} {counter.value}")
    for gauge in registry.gauges():
        name = _metric_name(prefix, gauge.name)
        declare(name, "gauge")
        lines.append(f"{name}{_label_set(gauge.labels)} {_fmt(gauge.value)}")
    for hist in registry.histograms():
        name = _metric_name(prefix, hist.name)
        declare(name, "histogram")
        cumulative = 0
        for upper, n in zip(hist.buckets, hist.counts):
            cumulative += n
            lines.append(
                f"{name}_bucket"
                f"{_label_set(hist.labels, le=_fmt(upper))} {cumulative}"
            )
        lines.append(
            f"{name}_bucket{_label_set(hist.labels, le='+Inf')} {hist.count}"
        )
        lines.append(f"{name}_sum{_label_set(hist.labels)} {_fmt(hist.sum)}")
        lines.append(f"{name}_count{_label_set(hist.labels)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def console_summary(
    metrics: Union[MetricsRegistry, dict, None] = None,
    manifest: Optional[RunManifest] = None,
) -> str:
    """A human-readable summary of a run's telemetry.

    Either argument may be omitted; a manifest that embeds a metrics
    snapshot supplies both run bookkeeping and the counts.
    """
    registry = None
    if metrics is not None:
        registry = _as_registry(metrics)
    elif manifest is not None and manifest.metrics:
        registry = _as_registry(manifest.metrics)

    sections: List[str] = []
    if manifest is not None:
        sections.append(_manifest_section(manifest))
    if registry is not None:
        sections.append(_metrics_section(registry))
        pool = _pool_section(registry)
        if pool:
            sections.append(pool)
    if manifest is not None and manifest.spans:
        sections.append(_spans_section(manifest.spans))
    if not sections:
        return "telemetry: nothing recorded"
    return "\n\n".join(sections)


# -- section renderers --------------------------------------------------------------


def _manifest_section(manifest: RunManifest) -> str:
    lines = [
        "Run manifest",
        f"  created      {manifest.created_iso}",
        f"  seed         {manifest.seed}",
        f"  time_scale   {manifest.time_scale}",
        f"  executor     {manifest.executor} (workers={manifest.workers})",
        f"  version      repro {manifest.version}",
        f"  config_hash  {manifest.config_hash}",
    ]
    if manifest.command:
        lines.append(f"  command      {manifest.command}")
    if manifest.stages:
        lines.append("  stages:")
        for path, seconds in sorted(manifest.stages.items()):
            lines.append(f"    {path:<40} {seconds * 1e3:10.1f} ms")
    return "\n".join(lines)


def _metrics_section(registry: MetricsRegistry) -> str:
    lines = ["Metrics"]
    counters = registry.counters()
    gauges = registry.gauges()
    histograms = registry.histograms()
    if counters:
        lines.append("  counters:")
        for counter in counters:
            lines.append(
                f"    {_pretty_key(counter):<48} {counter.value:>12}"
            )
    if gauges:
        lines.append("  gauges:")
        for gauge in gauges:
            lines.append(
                f"    {_pretty_key(gauge):<48} {_fmt(gauge.value):>12}"
            )
    if histograms:
        lines.append("  histograms:")
        for hist in histograms:
            lines.append(
                f"    {_pretty_key(hist):<48} "
                f"n={hist.count} mean={hist.mean * 1e3:.2f}ms"
            )
    if len(lines) == 1:
        lines.append("  (empty)")
    return "\n".join(lines)


def _pool_section(registry: MetricsRegistry) -> str:
    """Digest of the warm worker pool's behaviour, or "" without one.

    Raw ``engine.pool.*`` counters already appear in the metrics
    section; this renders the two questions an operator actually asks
    -- did the pool stay warm (spawns vs reuses) and did workers see
    pre-built state (warm-chunk hit rate) -- as ratios.
    """
    values = {
        c.name: c.value
        for c in registry.counters()
        if c.name.startswith("engine.pool.") and not c.labels
    }
    if not values:
        return ""
    lines = ["Worker pool"]
    spawns = values.get("engine.pool.spawns", 0)
    reuses = values.get("engine.pool.reuses", 0)
    batches = spawns + reuses
    if batches:
        lines.append(
            f"  pool reuse    {reuses}/{batches} batch(es) on a warm pool"
            f" ({spawns} spawn(s))"
        )
    respawns = values.get("engine.pool.respawns", 0)
    kills = values.get("engine.pool.kills", 0)
    if respawns or kills:
        lines.append(
            f"  recoveries    {respawns} respawn(s), {kills} kill(s)"
        )
    warm = values.get("engine.pool.warm_hits", 0)
    cold = values.get("engine.pool.cold_chunks", 0)
    if warm + cold:
        rate = 100.0 * warm / (warm + cold)
        lines.append(
            f"  warm chunks   {warm}/{warm + cold} ({rate:.1f}% hit pre-built"
            f" worker state)"
        )
    chunks = values.get("engine.pool.chunks", 0)
    if chunks:
        lines.append(f"  dispatch      {chunks} chunk(s)")
    pickle_bytes = values.get("engine.pool.pickle_bytes", 0)
    if pickle_bytes:
        lines.append(f"  transport     {pickle_bytes} pickled byte(s)")
    segments = values.get("engine.pool.shm_segments", 0)
    if segments:
        lines.append(
            f"                {segments} shared-memory segment(s)"
        )
    if len(lines) == 1:
        return ""
    return "\n".join(lines)


def _spans_section(spans: List[dict]) -> str:
    lines = ["Spans"]
    for encoded in spans:
        for depth, span in Span.from_dict(encoded).walk():
            label = " ".join(
                f"{k}={v}" for k, v in sorted(span.labels.items())
            )
            suffix = f"  [{label}]" if label else ""
            lines.append(
                f"  {'  ' * depth}{span.name:<30} "
                f"{span.duration_s * 1e3:10.1f} ms{suffix}"
            )
    return "\n".join(lines)


# -- helpers ------------------------------------------------------------------------


def _as_registry(metrics: Union[MetricsRegistry, dict]) -> MetricsRegistry:
    if isinstance(metrics, MetricsRegistry):
        return metrics
    return MetricsRegistry.from_dict(metrics)


def _metric_name(prefix: str, name: str, suffix: str = "") -> str:
    return _NAME_RE.sub("_", f"{prefix}_{name}") + suffix


def _label_set(labels, **extra: str) -> str:
    pairs = [(_LABEL_RE.sub("_", k), v) for k, v in labels] + [
        (k, v) for k, v in extra.items()
    ]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return f"{{{inner}}}"


def _escape(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"")


def _pretty_key(instrument: Union[Counter, Gauge, Histogram]) -> str:
    if not instrument.labels:
        return instrument.name
    inner = ",".join(f"{k}={v}" for k, v in instrument.labels)
    return f"{instrument.name}{{{inner}}}"


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))
