"""Observability for the reproduction: metrics, spans, run manifests.

The paper's methodology is bookkeeping-heavy -- fluence accounting,
per-session logs, effective beam hours -- and this package gives the
simulated campaigns the same discipline:

* :class:`MetricsRegistry` -- counters, gauges and fixed-bucket
  histograms cheap enough for the injector hot path;
* :class:`Tracer` / ``span()`` -- nestable timed stages recording
  wall-clock starts and monotonic durations;
* :class:`RunManifest` -- seed, time scale, executor, package version,
  config hash and per-stage durations, persisted as ``manifest.json``;
* exporters -- JSON, Prometheus text format, and a human console
  summary;
* :class:`Telemetry` -- the facade runners accept, with
  :data:`NULL_TELEMETRY` as the all-no-op default.

Determinism contract: telemetry never touches an RNG stream, so
instrumentation on vs. off produces byte-identical campaign results;
and because work units carry their own registry snapshots back to the
parent for a submission-order merge, metric *counts* are bit-identical
between serial and parallel runs, while timings stay quarantined in
histograms/spans that no determinism-checked artifact contains.
"""

from .exporters import console_summary, metrics_to_json, metrics_to_prometheus
from .manifest import RunManifest, stable_config_hash
from .metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .runtime import NULL_TELEMETRY, Telemetry
from .tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "RunManifest",
    "Span",
    "Telemetry",
    "Tracer",
    "console_summary",
    "metrics_to_json",
    "metrics_to_prometheus",
    "stable_config_hash",
]
