"""Run manifests: what configuration produced this results directory?

Beam-test practice treats the session log as a first-class artifact --
the paper's fluence tables are reconstructed from per-session
bookkeeping, not memory.  :class:`RunManifest` is the reproduction's
equivalent: every ``repro-campaign run`` leaves a ``manifest.json``
next to ``campaign.json`` recording the seed, time scale, executor,
package version, a stable hash of the flown configuration, per-stage
durations, and (when telemetry is enabled) the merged metrics snapshot
and span tree.

The manifest is *about* a determinism-checked artifact but is not one
itself: it may carry wall-clock timings, while ``campaign.json`` never
does.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import TelemetryError

MANIFEST_SCHEMA = 1


def stable_config_hash(config: object) -> str:
    """A short stable hash of any JSON-encodable configuration.

    Non-JSON leaves fall back to ``repr``; keys are sorted, so two
    structurally equal configurations always hash alike across
    processes and Python versions.
    """
    encoded = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunManifest:
    """Everything needed to account for (and re-fly) one run.

    Attributes
    ----------
    seed / time_scale:
        The campaign's determinism inputs.
    executor / workers:
        Engine executor name and worker count used.
    version:
        ``repro`` package version that produced the run.
    config_hash:
        Stable hash of the flown session plans (see
        :func:`stable_config_hash`).
    created_unix:
        Wall-clock creation time (seconds since the epoch).
    stages:
        Per-stage durations in seconds, from the tracer
        (``path -> seconds``).
    metrics:
        Merged :class:`~repro.telemetry.metrics.MetricsRegistry`
        snapshot (empty when telemetry was off).
    spans:
        Span-tree encoding from the tracer (empty when telemetry was
        off).
    command:
        The CLI invocation, when launched from the shell.
    """

    seed: int
    time_scale: float
    executor: str
    workers: int
    version: str
    config_hash: str
    created_unix: float = field(default_factory=time.time)
    stages: Dict[str, float] = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    spans: List[dict] = field(default_factory=list)
    command: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-able encoding."""
        return {
            "schema": MANIFEST_SCHEMA,
            "seed": self.seed,
            "time_scale": self.time_scale,
            "executor": self.executor,
            "workers": self.workers,
            "version": self.version,
            "config_hash": self.config_hash,
            "created_unix": self.created_unix,
            "stages": dict(self.stages),
            "metrics": self.metrics,
            "spans": list(self.spans),
            "command": self.command,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        """Decode a manifest; raises on wrong schema or missing fields."""
        if not isinstance(data, dict):
            raise TelemetryError("manifest is not a JSON object")
        if data.get("schema") != MANIFEST_SCHEMA:
            raise TelemetryError(
                f"unsupported manifest schema {data.get('schema')!r} "
                f"(expected {MANIFEST_SCHEMA})"
            )
        try:
            return cls(
                seed=int(data["seed"]),
                time_scale=float(data["time_scale"]),
                executor=str(data["executor"]),
                workers=int(data["workers"]),
                version=str(data["version"]),
                config_hash=str(data["config_hash"]),
                created_unix=float(data.get("created_unix", 0.0)),
                stages={
                    k: float(v) for k, v in data.get("stages", {}).items()
                },
                metrics=dict(data.get("metrics", {})),
                spans=list(data.get("spans", [])),
                command=data.get("command"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed manifest: {exc!r}") from exc

    def to_json(self, indent: int = 2) -> str:
        """The manifest as a JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        """Decode a manifest from JSON text."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise TelemetryError(f"manifest is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    @property
    def created_iso(self) -> str:
        """Creation time as a UTC ISO-8601 string."""
        return time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(self.created_unix)
        )
