"""Figure 10: power savings vs susceptibility increase, in percent.

Both axes are relative to the nominal setting (980 mV @ 2.4 GHz).
Observation #7's asymmetry should hold: at 2.4 GHz the susceptibility
curve rises faster than the savings curve; only the combined
voltage+frequency cut at 790 mV / 900 MHz buys savings faster than
susceptibility (at a performance cost the paper notes).
"""

from __future__ import annotations

from ..core.report import Table
from ..core.tradeoff import build_tradeoff_series
from .config import ExperimentResult


def run(seed: int = 0, time_scale: float = 1.0) -> ExperimentResult:
    """Regenerate the Fig. 10 percentage series."""
    series_obj = build_tradeoff_series()
    table = Table(
        title="Figure 10: Power savings vs susceptibility increase",
        header=[
            "Setting",
            "Power savings (%)",
            "Susceptibility increase (%)",
        ],
    )
    undervolted = series_obj.points[1:]
    for p in undervolted:
        table.add_row(
            f"{p.point.pmd_mv} mV @ {p.point.freq_mhz} MHz",
            p.power_savings_pct,
            p.susceptibility_increase_pct,
        )
    series = {
        "power_savings_pct": [p.power_savings_pct for p in undervolted],
        "susceptibility_increase_pct": [
            p.susceptibility_increase_pct for p in undervolted
        ],
        "outpaced": [
            p.point.label
            for p in series_obj.savings_outpaced_by_susceptibility()
        ],
    }
    return ExperimentResult(experiment_id="fig10", table=table, series=series)
