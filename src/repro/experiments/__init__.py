"""Experiment drivers: one module per table and figure of the paper.

Every driver exposes ``run(seed=..., time_scale=...)`` returning an
:class:`~repro.experiments.config.ExperimentResult` whose ``table`` is
the regenerated artifact and whose ``series`` dict carries the raw
numbers for programmatic checks.  ``repro-experiment <id>`` (the
console script in :mod:`repro.experiments.registry`) prints any of
them.
"""

from .config import ExperimentResult, PAPER, shared_campaign
from .registry import EXPERIMENTS, run_experiment, main

__all__ = [
    "ExperimentResult",
    "PAPER",
    "shared_campaign",
    "EXPERIMENTS",
    "run_experiment",
    "main",
]
