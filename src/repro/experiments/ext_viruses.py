"""Extension experiment: virus vs benchmark Vmin characterization.

Benchmarks find the safe Vmin in hours of repeated runs; the
micro-virus battery ([51]) finds a conservative Vmin in seconds by
maximizing voltage droop.  This experiment runs both against the same
pfail physics and tabulates the trade: characterization effort vs the
millivolts of guardband the viruses leave on the table.
"""

from __future__ import annotations

from ..core.report import Table
from ..harness.vmin import PFAIL_MODELS, VminCharacterizer
from ..harness.viruses import (
    battery_safe_vmin_mv,
    characterize_with_viruses,
    make_viruses,
)
from ..workloads.profiles import mean_runtime_s
from .config import ExperimentResult


def run(
    seed: int = 2023,
    time_scale: float = 1.0,
    benchmark_runs: int = 300,
    virus_runs: int = 60,
) -> ExperimentResult:
    """Characterize both ways at both frequencies; compare cost & result."""
    table = Table(
        title="Extension: virus vs benchmark Vmin characterization",
        header=[
            "Frequency (MHz)",
            "Method",
            "Safe Vmin (mV)",
            "Runs/voltage",
            "Est. effort (s/voltage)",
        ],
    )
    series = {}
    for freq, model in sorted(PFAIL_MODELS.items(), reverse=True):
        bench_result = VminCharacterizer(model, benchmark_runs).characterize(
            seed=seed
        )
        virus_results = characterize_with_viruses(
            model, runs_per_voltage=virus_runs, seed=seed
        )
        virus_vmin = battery_safe_vmin_mv(virus_results)
        bench_effort = benchmark_runs * mean_runtime_s()
        virus_effort = virus_runs * max(
            v.signature.runtime_s for v in make_viruses()
        )
        table.add_row(
            freq, "benchmarks", bench_result.safe_vmin_mv,
            benchmark_runs, bench_effort,
        )
        table.add_row(
            freq, "virus battery", virus_vmin, virus_runs, virus_effort,
        )
        series[freq] = {
            "benchmark_vmin": bench_result.safe_vmin_mv,
            "virus_vmin": virus_vmin,
            "margin_cost_mv": virus_vmin - bench_result.safe_vmin_mv,
            "speedup": bench_effort / virus_effort,
        }
    notes = (
        "the virus battery trades ~10-15 mV of recoverable guardband "
        "for a ~50x faster characterization -- the [51] trade, "
        "quantified on this platform's pfail curves"
    )
    return ExperimentResult(
        experiment_id="ext-viruses", table=table, series=series, notes=notes
    )
