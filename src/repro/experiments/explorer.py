"""Explorer: the codec x voltage x workload design-space sweep.

Not a paper artifact -- the paper fixes parity/SECDED (Table 1) -- but
the design-space extension ROADMAP item 2 calls for: every registered
codec is exercised against the calibrated MBU cluster model at each
operating point, and the per-cell FIT estimates (Garwood intervals,
scaled to NYC flux) are reduced to a FIT-vs-area-vs-energy Pareto
front per (point, workload) slice.

The in-process run here uses a deliberately small strike budget so the
experiment renders in seconds; ``repro-campaign explore`` runs the
same cells through the scheduler broker at scale, with checkpointed
shards and ``--resume``.
"""

from __future__ import annotations

from ..codecs import SweepSpec, assemble_pareto, run_cell, sweep_cells
from ..core.report import Table
from .config import DEFAULT_SEED, ExperimentResult

#: Strike budget of the in-process experiment: enough for stable
#: orderings, small enough to render interactively.
EXPERIMENT_STRIKES = 1500


def run(
    seed: int = DEFAULT_SEED, time_scale: float = 1.0
) -> ExperimentResult:
    """Run a compact sweep in-process and tabulate the Pareto front.

    ``time_scale`` scales the per-cell strike budget the way campaign
    time scales scale beam minutes (floored so every cell keeps enough
    events for its split-half gates).
    """
    strikes = max(int(EXPERIMENT_STRIKES * min(time_scale, 1.0)), 50)
    spec = SweepSpec(strikes=strikes, seed=seed)
    payloads = [run_cell(cell) for cell in sweep_cells(spec)]
    document = assemble_pareto(spec, payloads)
    table = Table(
        title="Codec design-space Pareto cells "
        f"({strikes} strikes/cell, FIT at NYC flux)",
        header=[
            "Codec",
            "PMD mV",
            "SoC mV",
            "Workload",
            "FIT total",
            "FIT 95% CI",
            "Silent frac",
            "Area gates",
            "Energy pJ",
            "Front",
        ],
    )
    for cell in document["cells"]:
        fit = cell["fit_total"]
        table.add_row(
            cell["codec"],
            cell["pmd_mv"],
            cell["soc_mv"],
            cell["workload"],
            fit["value"],
            f"[{fit['lower']:.3g}, {fit['upper']:.3g}]",
            cell["silent_fraction"]["value"],
            cell["cost"]["area_gates"],
            cell["cost"]["energy_pj"],
            "*" if cell["on_front"] else "",
        )
    front = sorted({c["codec"] for c in document["pareto"]})
    return ExperimentResult(
        experiment_id="explorer",
        table=table,
        series={
            "pareto": document["pareto"],
            "cells": document["cells"],
            "gates": document["gates"],
            "ok": document["ok"],
        },
        notes=(
            "Design-space extension (not a paper artifact). Codecs on "
            f"at least one front: {', '.join(front)}. SILENT cells come "
            "from real syndrome aliasing; FIT scales the calibrated L3 "
            "rate by each workload's detection efficiency. Run "
            "'repro-campaign explore' for broker-scheduled sweeps."
        ),
    )
