"""Figure 13: SDC FIT split at 790 mV / 900 MHz.

The same notification split as Fig. 12, for the deep-undervolt
low-frequency session -- confirming the behaviour persists across
clock frequencies.
"""

from __future__ import annotations

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 13 SDC FIT split from the 900 MHz session."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    label = next(
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 900
    )
    fits = analysis.sdc_fit_by_notification(label)

    table = Table(
        title="Figure 13: SDC FIT w/ and w/o notification (790 mV @ 900 MHz)",
        header=["SDC FIT w/o notification", "SDC FIT w/ corrected notification"],
    )
    table.add_row(
        fits["without_notification"].fit, fits["with_notification"].fit
    )
    series = {
        "sdc_fit": {
            "without": fits["without_notification"].fit,
            "with": fits["with_notification"].fit,
        }
    }
    notes = (
        "session 4 flew only 165 minutes (13 events in the paper), so "
        "this split carries the campaign's largest statistical uncertainty"
    )
    return ExperimentResult(
        experiment_id="fig13", table=table, series=series, notes=notes
    )
