"""Figure 7: upsets per minute per cache level at 790 mV / 900 MHz.

The deep-undervolt session exercises the voltage-domain split: the PMD
arrays (TLB/L1/L2) at 790 mV upset markedly more than at 920 mV, while
the L3 -- in the SoC domain, still at its 950 mV nominal -- stays flat
or drops (Section 4.3's key explanation).
"""

from __future__ import annotations

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)
from .fig6 import LEVEL_ORDER


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 7 per-level bars from the 900 MHz session."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    label = next(
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 900
    )
    rates = analysis.level_upset_rates(label)

    table = Table(
        title="Figure 7: Upsets per minute per cache level (790 mV @ 900 MHz)",
        header=["Level", "Severity", "Upsets/min"],
    )
    series_rates = {}
    for level, severity in LEVEL_ORDER:
        rate = rates.get(f"{level}/{severity}", 0.0)
        series_rates[(level, severity)] = rate
        table.add_row(level, severity, rate)

    series = {"rates": series_rates, "session": label}
    notes = (
        "PMD arrays (TLB/L1/L2) are at 790 mV; the L3 sits in the SoC "
        "domain at its 950 mV nominal, hence its rate does not rise"
    )
    return ExperimentResult(
        experiment_id="fig7", table=table, series=series, notes=notes
    )
