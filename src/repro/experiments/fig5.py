"""Figure 5: cache upsets per minute, per benchmark and voltage (2.4 GHz).

Uses the shared campaign's three 2.4 GHz sessions and breaks each
session's upsets down by the benchmark that was running, plus the
consolidated per-voltage totals (the red bars of Fig. 5).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from ..workloads.suite import SUITE_NAMES
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)

#: Fig. 5's benchmark display order.
DISPLAY_ORDER: List[str] = ["CG", "LU", "FT", "EP", "MG", "IS"]


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 5 bar data from the 2.4 GHz sessions."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    sessions_24ghz = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]

    table = Table(
        title="Figure 5: Cache memory upsets per minute (2.4 GHz)",
        header=["Benchmark"]
        + [
            f"{campaign.session(label).plan.point.pmd_mv} mV"
            for label in sessions_24ghz
        ],
    )
    rates: Dict[str, List[float]] = {}
    per_session_bench = {
        label: analysis.benchmark_upset_rates(label)
        for label in sessions_24ghz
    }
    for bench in DISPLAY_ORDER:
        row = [
            per_session_bench[label][bench].per_minute
            if bench in per_session_bench[label]
            else 0.0
            for label in sessions_24ghz
        ]
        rates[bench] = row
        table.add_row(bench, *row)
    totals = [
        analysis.upset_rate(label).per_minute for label in sessions_24ghz
    ]
    rates["Total"] = totals
    table.add_row("Total", *totals)

    nominal_total = totals[0] if totals else 0.0
    vmin_total = totals[-1] if totals else 0.0
    series = {
        "rates": rates,
        "voltages_mv": [
            campaign.session(label).plan.point.pmd_mv
            for label in sessions_24ghz
        ],
        "max_benchmark_increase_pct": max(
            (
                (rates[b][-1] / rates[b][0] - 1.0) * 100.0
                for b in SUITE_NAMES
                if rates.get(b) and rates[b][0] > 0
            ),
            default=0.0,
        ),
    }
    return ExperimentResult(experiment_id="fig5", table=table, series=series)
