"""Table 2: the four neutron beam sessions.

Regenerates every row of Table 2 -- voltages, durations, fluences, NYC
equivalence, failure and upset counts/rates, memory SER -- from a
simulated campaign flown with the paper's session plans.
"""

from __future__ import annotations

from ..core.analysis import CampaignAnalysis
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Fly (or reuse) the campaign and regenerate Table 2."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    table = analysis.table2()
    series = {
        "upset_rates": [
            analysis.upset_rate(label).per_minute
            for label in campaign.labels()
        ],
        "failure_rates": [
            campaign.session(label).failure_rate_per_min
            for label in campaign.labels()
        ],
        "ser_fit_per_mbit": [
            analysis.memory_ser(label) for label in campaign.labels()
        ],
        "fluences": [
            campaign.session(label).fluence.fluence_per_cm2
            for label in campaign.labels()
        ],
    }
    notes = (
        f"sessions flown at time_scale={time_scale}; fluences and event "
        "counts scale proportionally, rates and SER are scale-invariant"
    )
    return ExperimentResult(
        experiment_id="table2", table=table, series=series, notes=notes
    )
