"""Figure 8: failure-category percentages per voltage (2.4 GHz).

The end-to-end software-layer result: as voltage drops at fixed
frequency, crash percentages shrink and the SDC share explodes
(Observation #4: ~3x higher SDC probability at Vmin).
"""

from __future__ import annotations

from typing import Dict, List

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from ..injection.events import OutcomeKind
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)

#: Fig. 8's category display order.
CATEGORY_ORDER = [OutcomeKind.APP_CRASH, OutcomeKind.SYS_CRASH, OutcomeKind.SDC]


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 8 percentage panels from the 2.4 GHz sessions."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    labels = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]

    table = Table(
        title="Figure 8: Abnormal behaviour percentages (2.4 GHz)",
        header=["PMD Voltage (mV)"] + [k.value for k in CATEGORY_ORDER],
    )
    mixes: Dict[int, Dict[str, float]] = {}
    for label in labels:
        voltage = campaign.session(label).plan.point.pmd_mv
        mix = analysis.failure_mix(label)
        mixes[voltage] = {k.value: mix[k] for k in CATEGORY_ORDER}
        table.add_row(voltage, *(mix[k] for k in CATEGORY_ORDER))

    voltages: List[int] = sorted(mixes, reverse=True)
    sdc_ratio = (
        mixes[voltages[-1]]["SDC"] / mixes[voltages[0]]["SDC"]
        if mixes[voltages[0]]["SDC"] > 0
        else float("inf")
    )
    series = {"mixes_pct": mixes, "sdc_share_increase_x": sdc_ratio}
    return ExperimentResult(experiment_id="fig8", table=table, series=series)
