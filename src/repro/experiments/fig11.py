"""Figure 11: total FIT of the chip per failure category and voltage.

FIT rates (NYC sea level) of AppCrash / SysCrash / SDC plus the total,
for each 2.4 GHz session.  The headline numbers: SDC FIT rises ~16x
between nominal and Vmin; the total rises several-fold.
"""

from __future__ import annotations

from typing import Dict

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from ..injection.events import OutcomeKind
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)

_CATEGORIES = [OutcomeKind.APP_CRASH, OutcomeKind.SYS_CRASH, OutcomeKind.SDC]


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 11 FIT bars from the 2.4 GHz sessions."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    labels = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]

    table = Table(
        title="Figure 11: Total FIT rate of the CPU chip (2.4 GHz)",
        header=["PMD Voltage (mV)"]
        + [k.value for k in _CATEGORIES]
        + ["Total FIT"],
    )
    fit: Dict[int, Dict[str, float]] = {}
    for label in labels:
        voltage = campaign.session(label).plan.point.pmd_mv
        row = {
            k.value: analysis.category_fit(label, k).fit for k in _CATEGORIES
        }
        row["Total"] = analysis.total_fit(label).fit
        fit[voltage] = row
        table.add_row(
            voltage, *(row[k.value] for k in _CATEGORIES), row["Total"]
        )

    nominal_label, vmin_label = labels[0], labels[-1]
    series = {
        "fit": fit,
        "sdc_increase_x": analysis.sdc_fit_increase(vmin_label, nominal_label),
        "total_increase_x": analysis.total_fit_increase(
            vmin_label, nominal_label
        ),
    }
    notes = (
        "the paper's quoted 920 mV total (54.83) exceeds the sum of its "
        "category bars (44.94); this reproduction reports the category sum "
        "-- see EXPERIMENTS.md"
    )
    return ExperimentResult(
        experiment_id="fig11", table=table, series=series, notes=notes
    )
