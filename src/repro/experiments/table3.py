"""Table 3: the voltage levels used in the experiments.

A configuration table: the four pinned operating points (frequency,
PMD voltage, SoC voltage) -- checked against the platform's regulator
grid by actually applying each point to a chip model.
"""

from __future__ import annotations

from ..core.report import Table
from ..soc.dvfs import TABLE3_OPERATING_POINTS
from ..soc.xgene2 import XGene2
from .config import ExperimentResult


def run(seed: int = 0, time_scale: float = 1.0) -> ExperimentResult:
    """Render Table 3, validating each point against the hardware model."""
    chip = XGene2()
    table = Table(
        title="Table 3: Voltage levels used in our experiments",
        header=["Setting", "Frequency (MHz)", "PMD Voltage (mV)", "SoC Voltage (mV)"],
    )
    for point in TABLE3_OPERATING_POINTS:
        chip.apply_operating_point(point)  # raises if unreachable
        applied = chip.operating_point()
        table.add_row(
            point.label, applied.freq_mhz, applied.pmd_mv, applied.soc_mv
        )
    series = {
        "points": [
            (p.label, p.freq_mhz, p.pmd_mv, p.soc_mv)
            for p in TABLE3_OPERATING_POINTS
        ]
    }
    return ExperimentResult(experiment_id="table3", table=table, series=series)
