"""Figure 4: probability of failure vs voltage, per frequency.

Runs the offline undervolting characterization at both studied
frequencies and tabulates the pfail(V) curves from nominal down to
complete failure, identifying the safe Vmin of each frequency.
"""

from __future__ import annotations

from ..core.report import Table
from ..harness.vmin import PFAIL_MODELS, VminCharacterizer
from .config import DEFAULT_SEED, ExperimentResult


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = 1.0,
    runs_per_voltage: int = 300,
) -> ExperimentResult:
    """Characterize pfail(V) at 2.4 GHz and 900 MHz (Fig. 4's two panels)."""
    results = {}
    for freq, model in sorted(PFAIL_MODELS.items(), reverse=True):
        characterizer = VminCharacterizer(model, runs_per_voltage)
        results[freq] = characterizer.characterize(seed=seed)

    table = Table(
        title="Figure 4: Probability of Failure vs voltage",
        header=["Frequency (MHz)", "Voltage (mV)", "pfail (%)"],
    )
    for freq, result in results.items():
        for voltage in sorted(result.pfail_curve, reverse=True):
            table.add_row(freq, voltage, 100.0 * result.pfail_curve[voltage])

    series = {
        "safe_vmin_mv": {f: r.safe_vmin_mv for f, r in results.items()},
        "curves": {f: dict(r.pfail_curve) for f, r in results.items()},
        "guardbands_mv": {f: r.guardband_mv() for f, r in results.items()},
    }
    notes = (
        "safe Vmin = lowest voltage with zero failures over "
        f"{runs_per_voltage} runs; guardband measured from the 980 mV "
        "PMD nominal"
    )
    return ExperimentResult(
        experiment_id="fig4", table=table, series=series, notes=notes
    )
