"""Figure 6: upsets per minute per cache level (2.4 GHz).

Breaks the 2.4 GHz sessions' upsets down by cache level and EDAC
severity.  The paper's two observations should both be visible: larger
arrays upset more (L3 > L2 > L1 > TLB), and lower voltage raises every
level's rate; uncorrected errors appear only in the non-interleaved L3.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)

#: Fig. 6's bar order: (level, severity) pairs.
LEVEL_ORDER: List[Tuple[str, str]] = [
    ("TLBs", "CE"),
    ("L1 Cache", "CE"),
    ("L2 Cache", "CE"),
    ("L3 Cache", "CE"),
    ("L3 Cache", "UE"),
]


def _collect(
    analysis: CampaignAnalysis, labels: List[str]
) -> Dict[Tuple[str, str], List[float]]:
    out: Dict[Tuple[str, str], List[float]] = {key: [] for key in LEVEL_ORDER}
    for label in labels:
        rates = analysis.level_upset_rates(label)
        for level, severity in LEVEL_ORDER:
            out[(level, severity)].append(
                rates.get(f"{level}/{severity}", 0.0)
            )
    return out


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 6 per-level bars from the 2.4 GHz sessions."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    labels = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]
    voltages = [
        campaign.session(label).plan.point.pmd_mv for label in labels
    ]
    rates = _collect(analysis, labels)

    table = Table(
        title="Figure 6: Upsets per minute per cache level (2.4 GHz)",
        header=["Level", "Severity"] + [f"{v} mV" for v in voltages],
    )
    for (level, severity), row in rates.items():
        table.add_row(level, severity, *row)

    series = {"rates": rates, "voltages_mv": voltages}
    return ExperimentResult(experiment_id="fig6", table=table, series=series)
