"""Ablation studies of the design choices behind the reproduction.

Each ablation isolates one mechanism the paper's results rest on and
shows what breaks without it:

* ``interleave`` -- column interleaving is why L1/L2 never report
  uncorrected errors: strike identical arrays with and without it.
* ``ecc`` -- swap the L3's SECDED for parity-only protection and watch
  every multi-bit (and, on a write-back array, every detected) error
  become unrecoverable.
* ``slope`` -- sensitivity of the chip-level upset rate to the
  per-level voltage-slope calibration.
* ``scrub`` -- accumulated-DUE rate vs patrol-scrub interval at two
  voltages (the anti-accumulation argument of Section 3.3, quantified).
* ``checkpoint`` -- the introduction's open question: net undervolting
  savings once checkpoint/restart overhead is charged, across radiation
  environments.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..core.report import Table
from ..engine import ExecutionContext
from ..harness.availability import CheckpointModel, undervolting_verdict
from ..injection.calibration import LevelRateModel
from ..soc.geometry import CacheLevel
from ..sram.array import ArrayGeometry, SramArray
from ..sram.mbu import MbuModel
from ..sram.protection import DecodeStatus, ParityCodec, SecdedCodec
from ..sram.scrubbing import model_from_level_rate
from .config import ExperimentResult


def _strike_array(
    array: SramArray,
    strikes: int,
    rng: np.random.Generator,
    undervolt: float = 0.0,
) -> Dict[str, int]:
    """Apply *strikes* MBU-bearing strikes; count outcomes by status."""
    mbu = MbuModel()
    outcomes = {"corrected": 0, "uncorrected": 0, "silent": 0, "clean": 0}
    for _ in range(strikes):
        word = int(rng.integers(0, array.geometry.words))
        cluster = mbu.sample_cluster(rng, undervolt)
        affected = array.strike(word, cluster, mbu, rng)
        for target, _bits in affected:
            result, _record = array.access(target)
            if result.status is DecodeStatus.CORRECTED:
                outcomes["corrected"] += 1
            elif result.status is DecodeStatus.DETECTED_UNCORRECTABLE:
                outcomes["uncorrected"] += 1
            elif result.status is DecodeStatus.SILENT:
                outcomes["silent"] += 1
            else:
                outcomes["clean"] += 1
    return outcomes


def run_interleave(
    seed: int = 2023,
    time_scale: float = 1.0,
    strikes: int = 30_000,
    context: Optional[ExecutionContext] = None,
) -> ExperimentResult:
    """Ablate column interleaving on an L2-like SECDED array."""
    context = context or ExecutionContext(seed=seed, time_scale=time_scale)
    streams = context.streams
    table = Table(
        title="Ablation: column interleaving on a SECDED array",
        header=["Interleave", "Corrected", "Uncorrected", "Silent"],
    )
    series: Dict[int, Dict[str, int]] = {}
    for interleave in (1, 4):
        array = SramArray(
            geometry=ArrayGeometry(
                name=f"l2.x{interleave}",
                words=32768,
                data_bits=64,
                interleave=interleave,
            ),
            codec=SecdedCodec(64),
            domain="pmd",
        )
        outcomes = _strike_array(
            array, strikes, streams.child("interleave", factor=interleave),
            undervolt=0.06,
        )
        series[interleave] = outcomes
        table.add_row(
            interleave,
            outcomes["corrected"],
            outcomes["uncorrected"],
            outcomes["silent"],
        )
    notes = (
        "interleaved arrays spread MBU clusters into single-bit word "
        "errors SECDED corrects; without interleaving the same strikes "
        "produce uncorrected (and occasionally miscorrected) words"
    )
    return ExperimentResult(
        experiment_id="ablation-interleave",
        table=table,
        series={"outcomes": series},
        notes=notes,
    )


def run_ecc(
    seed: int = 2023,
    time_scale: float = 1.0,
    strikes: int = 30_000,
    context: Optional[ExecutionContext] = None,
) -> ExperimentResult:
    """Ablate the L3's SECDED: what parity-only protection would do."""
    context = context or ExecutionContext(seed=seed, time_scale=time_scale)
    streams = context.streams
    table = Table(
        title="Ablation: SECDED vs parity on the (write-back) L3",
        header=["Protection", "Recovered", "Unrecoverable", "Silent"],
    )
    series: Dict[str, Dict[str, int]] = {}
    for name, codec in (("SECDED", SecdedCodec(64)), ("parity", ParityCodec(64))):
        array = SramArray(
            geometry=ArrayGeometry(
                name=f"l3.{name}", words=131072, data_bits=64, interleave=1
            ),
            codec=codec,
            domain="soc",
        )
        if name == "parity":
            # A write-back L3 holds dirty lines: a detected parity error
            # cannot be refetched, so detection = data loss.
            array.codec.refetch_on_detect = False
        outcomes = _strike_array(
            array, strikes, streams.child("ecc", codec=name)
        )
        recovered = outcomes["corrected"] + outcomes["clean"]
        unrecoverable = outcomes["uncorrected"]
        series[name] = outcomes
        table.add_row(name, recovered, unrecoverable, outcomes["silent"])
    notes = (
        "on a write-back array parity can only *detect*: every single-bit "
        "upset SECDED would have corrected becomes unrecoverable, and "
        "even-bit flips pass silently"
    )
    return ExperimentResult(
        experiment_id="ablation-ecc",
        table=table,
        series={"outcomes": series},
        notes=notes,
    )


def run_slope(seed: int = 2023, time_scale: float = 1.0) -> ExperimentResult:
    """Sensitivity of chip-level rates to the voltage-slope calibration."""
    table = Table(
        title="Ablation: voltage-slope sensitivity of the total upset rate",
        header=["Slope scale", "980 mV", "930 mV", "920 mV", "790 mV @900MHz"],
    )
    series: Dict[float, list] = {}
    base_slopes = dict(LevelRateModel().slopes)
    for scale in (0.5, 1.0, 1.5):
        model = LevelRateModel(
            slopes={level: k * scale for level, k in base_slopes.items()}
        )
        rates = [
            model.total_rate_per_min(980, 950),
            model.total_rate_per_min(930, 925),
            model.total_rate_per_min(920, 920),
            model.total_rate_per_min(790, 950),
        ]
        series[scale] = rates
        table.add_row(scale, *rates)
    notes = (
        "the nominal point is slope-invariant by construction; halving "
        "or 1.5x-ing the fitted slopes moves the undervolted rates by a "
        "few percent -- the Fig. 9 trend survives any plausible fit"
    )
    return ExperimentResult(
        experiment_id="ablation-slope",
        table=table,
        series={"rates": series},
        notes=notes,
    )


def run_scrub(seed: int = 2023, time_scale: float = 1.0) -> ExperimentResult:
    """Accumulated-DUE rate vs scrub interval, nominal vs deep undervolt."""
    rate_model = LevelRateModel()
    table = Table(
        title="Ablation: patrol-scrub interval vs accumulated DUEs (L3)",
        header=["Scrub interval (s)", "DUE/s @ SoC 950 mV", "DUE/s @ SoC 920 mV"],
    )
    intervals = [1.0, 10.0, 100.0, 1000.0, 10000.0]
    curves: Dict[int, list] = {950: [], 920: []}
    for soc_mv in (950, 920):
        l3_rate = rate_model.rate_per_min(CacheLevel.L3, True, 980, soc_mv)
        scrub = model_from_level_rate(
            words=131072 * 8, level_rate_per_min=l3_rate
        )
        curves[soc_mv] = [
            scrub.accumulated_due_rate_per_s(t) for t in intervals
        ]
    for i, t in enumerate(intervals):
        table.add_row(t, curves[950][i], curves[920][i])
    notes = (
        "accumulation grows linearly in the scrub interval and "
        "quadratically in the upset rate, so undervolting tightens the "
        "required scrub interval by the square of its rate increase"
    )
    return ExperimentResult(
        experiment_id="ablation-scrub",
        table=table,
        series={"intervals": intervals, "curves": curves},
        notes=notes,
    )


def run_checkpoint(seed: int = 2023, time_scale: float = 1.0) -> ExperimentResult:
    """Net undervolting savings vs radiation environment, recovery included."""
    checkpointing = CheckpointModel(checkpoint_cost_s=30.0, restart_cost_s=120.0)
    nominal_crash_fit = 1.49 + 4.29  # Fig. 11 at 980 mV
    vmin_crash_fit = 0.96 + 2.55  # Fig. 11 at 920 mV
    table = Table(
        title="Ablation: undervolting verdict across radiation environments",
        header=[
            "Environment (x NYC)",
            "Raw savings (%)",
            "Net savings (%)",
            "Pays off",
        ],
    )
    environments = [1.0, 3e2, 1e5, 1e7]
    verdicts = []
    for env in environments:
        verdict = undervolting_verdict(
            nominal_power_w=20.40,
            nominal_crash_fit=nominal_crash_fit,
            undervolted_power_w=18.15,
            undervolted_crash_fit=vmin_crash_fit,
            checkpointing=checkpointing,
            environment_factor=env,
        )
        verdicts.append(verdict)
        table.add_row(
            env,
            verdict.raw_savings_fraction * 100.0,
            verdict.net_savings_fraction * 100.0,
            "yes" if verdict.pays_off else "no",
        )
    notes = (
        "with the paper's measured crash rates (which FALL with "
        "undervolt at fixed clock), recovery overhead never negates the "
        "savings -- answering the introduction's open question for this "
        "chip; a chip whose crash rate rose instead would flip the "
        "verdict at high flux"
    )
    return ExperimentResult(
        experiment_id="ablation-checkpoint",
        table=table,
        series={
            "environments": environments,
            "net_savings": [v.net_savings_fraction for v in verdicts],
            "raw_savings": [v.raw_savings_fraction for v in verdicts],
        },
        notes=notes,
    )
