"""Extension experiment: per-benchmark masking via concrete injection.

The study infers workload masking indirectly (the dynamic SER sits at
~14 % of the static reference); this experiment measures it *directly*
per benchmark by flipping real bits in each kernel's live data and
classifying the outcome against the golden output -- producing the
per-benchmark AVF table that design implication #3 expects
fault-injection studies to supply.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..core.report import Table
from ..injection.direct import DirectInjector
from ..injection.events import OutcomeKind
from ..rng import RngStreams
from ..workloads.suite import SUITE_NAMES, make_workload
from .config import ExperimentResult


def run(
    seed: int = 2023,
    time_scale: float = 1.0,
    injections: int = 80,
    kernel_scale: float = 0.4,
) -> ExperimentResult:
    """Direct-injection masking/AVF study over the six benchmarks."""
    streams = RngStreams(seed)
    table = Table(
        title="Extension: per-benchmark masking via direct bit flips",
        header=[
            "Benchmark",
            "Injections",
            "Masked (%)",
            "SDC (%)",
            "Crash (%)",
            "AVF",
        ],
    )
    series: Dict[str, Dict[str, float]] = {}
    for name in SUITE_NAMES:
        workload = make_workload(name, scale=kernel_scale, seed=seed)
        injector = DirectInjector(workload)
        rng = streams.child("masking", benchmark=name)
        counts = injector.campaign(injections, rng)
        total = sum(counts.values())
        masked = counts[OutcomeKind.MASKED] / total
        sdc = counts[OutcomeKind.SDC] / total
        crash = counts.get(OutcomeKind.APP_CRASH, 0) / total
        avf = sdc + crash
        series[name] = {
            "masked": masked, "sdc": sdc, "crash": crash, "avf": avf,
        }
        table.add_row(
            name, total, 100 * masked, 100 * sdc, 100 * crash, avf
        )
    mean_masked = float(np.mean([s["masked"] for s in series.values()]))
    series["suite_mean_masked"] = mean_masked
    notes = (
        "these AVFs cover faults in the kernels' *live data*; the "
        "campaign-level masking (~86% vs the static SER reference) is "
        "larger because the beam also hits dead and never-read memory"
    )
    return ExperimentResult(
        experiment_id="ext-masking", table=table, series=series, notes=notes
    )
