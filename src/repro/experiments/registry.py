"""Experiment registry and the ``repro-experiment`` console script."""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..telemetry import Telemetry, console_summary
from . import (
    ablations,
    explorer,
    ext_masking,
    ext_viruses,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    table2,
    table3,
)
from .config import DEFAULT_SEED, DEFAULT_TIME_SCALE, ExperimentResult

#: Every reproducible artifact, by id.
EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {
    "table2": table2.run,
    "table3": table3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "ablation-interleave": ablations.run_interleave,
    "ablation-ecc": ablations.run_ecc,
    "ablation-slope": ablations.run_slope,
    "ablation-scrub": ablations.run_scrub,
    "ablation-checkpoint": ablations.run_checkpoint,
    "ext-masking": ext_masking.run,
    "ext-viruses": ext_viruses.run,
    "explorer": explorer.run,
}


def run_experiment(
    experiment_id: str,
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
    telemetry: Optional[Telemetry] = None,
) -> ExperimentResult:
    """Run one experiment by id.

    ``workers`` reaches the drivers whose campaigns fan out through the
    :mod:`repro.engine` executors; drivers without a ``workers``
    parameter (analytic figures, ablations) simply ignore it.
    ``telemetry`` wraps the driver in an ``experiment`` span and counts
    ``experiments.run`` per artifact regenerated.
    """
    if experiment_id not in EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        )
    runner = EXPERIMENTS[experiment_id]
    kwargs = {"seed": seed, "time_scale": time_scale}
    if "workers" in inspect.signature(runner).parameters:
        kwargs["workers"] = workers
    if telemetry is None:
        return runner(**kwargs)
    with telemetry.span("experiment", id=experiment_id):
        result = runner(**kwargs)
    telemetry.count("experiments.run", id=experiment_id)
    return result


def main(argv=None) -> int:
    """CLI: ``repro-experiment fig11 [--seed N] [--time-scale X] [--csv]``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table or figure of the MICRO'23 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="artifact id, or 'all'",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=DEFAULT_TIME_SCALE,
        help="fraction of each session's beam time to fly (default 0.2)",
    )
    parser.add_argument(
        "--csv", action="store_true", help="emit CSV instead of ASCII tables"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="campaign sessions to fly concurrently (0/1 = serial)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="time each experiment and print a telemetry summary",
    )
    args = parser.parse_args(argv)

    telemetry = Telemetry() if args.telemetry else None
    ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for experiment_id in ids:
        result = run_experiment(
            experiment_id,
            seed=args.seed,
            time_scale=args.time_scale,
            workers=args.workers,
            telemetry=telemetry,
        )
        print(result.table.to_csv() if args.csv else result.render())
        print()
    if telemetry is not None:
        print(console_summary(metrics=telemetry.metrics))
        print()
        print(telemetry.tracer.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
