"""Figure 12: SDC FIT with vs without hardware error notification (2.4 GHz).

Splits each 2.4 GHz session's SDCs by whether a corrected-error
notification accompanied the output mismatch.  The dominant population
is the un-notified one -- SDCs come from unprotected logic, not from
the ECC-covered SRAM (design implication #4) -- and its FIT grows
steeply toward Vmin.
"""

from __future__ import annotations

from typing import Dict

from ..core.analysis import CampaignAnalysis
from ..core.report import Table
from .config import (
    DEFAULT_SEED,
    DEFAULT_TIME_SCALE,
    ExperimentResult,
    shared_campaign,
)


def run(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> ExperimentResult:
    """Regenerate the Fig. 12 SDC FIT split from the 2.4 GHz sessions."""
    campaign = shared_campaign(seed, time_scale, workers=workers)
    analysis = CampaignAnalysis(campaign)
    labels = [
        label
        for label in campaign.labels()
        if campaign.session(label).plan.point.freq_mhz == 2400
    ]

    table = Table(
        title="Figure 12: SDC FIT w/ and w/o hardware notification (2.4 GHz)",
        header=[
            "PMD Voltage (mV)",
            "SDC FIT w/o notification",
            "SDC FIT w/ corrected notification",
        ],
    )
    split: Dict[int, Dict[str, float]] = {}
    for label in labels:
        voltage = campaign.session(label).plan.point.pmd_mv
        fits = analysis.sdc_fit_by_notification(label)
        split[voltage] = {
            "without": fits["without_notification"].fit,
            "with": fits["with_notification"].fit,
        }
        table.add_row(
            voltage, split[voltage]["without"], split[voltage]["with"]
        )

    series = {"sdc_fit": split}
    return ExperimentResult(experiment_id="fig12", table=table, series=series)
