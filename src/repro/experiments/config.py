"""Shared experiment configuration and the paper's reference numbers.

:data:`PAPER` collects every number the paper reports for the
reproduced tables and figures, so benches and EXPERIMENTS.md compare
measured-vs-paper from a single source of truth.

:func:`shared_campaign` runs (and caches) one Table 2 campaign per
(seed, time_scale) so that the several figure drivers that consume
session data do not re-fly the beam for each figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..core.report import Table
from ..engine import resolve_executor
from ..harness.campaign import Campaign, CampaignResult

#: Default time scale for experiment drivers: full sessions take
#: ~25 beam-hours each; 0.2 keeps hundreds of events per session while
#: regenerating every figure in seconds.
DEFAULT_TIME_SCALE = 0.2

#: Default root seed of the reproduction campaign.
DEFAULT_SEED = 2023


@dataclass
class ExperimentResult:
    """Output of one experiment driver.

    Attributes
    ----------
    experiment_id:
        Paper artifact id, e.g. ``"fig11"``.
    table:
        The regenerated table (printable via ``.render()``).
    series:
        Raw named data series for programmatic assertions.
    notes:
        Caveats of the reproduction for this artifact.
    """

    experiment_id: str
    table: Table
    series: Dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """Render the table plus any notes."""
        text = self.table.render()
        if self.notes:
            text += f"\n\nNotes: {self.notes}"
        return text


#: Flown-campaign cache.  ``workers`` is deliberately NOT part of the
#: key: the engine guarantees serial and parallel runs are
#: bit-identical, so a parallel rerun of an already-flown (seed,
#: time_scale) pair is a hit.
_CAMPAIGN_CACHE: Dict[Tuple[int, float], CampaignResult] = {}
_CAMPAIGN_CACHE_MAX = 4


def shared_campaign(
    seed: int = DEFAULT_SEED,
    time_scale: float = DEFAULT_TIME_SCALE,
    workers: int = 0,
) -> CampaignResult:
    """Run (once) and cache the four-session Table 2 campaign.

    ``workers`` selects the executor the sessions fan out through
    (0/1 = serial); it does not affect the flown result.
    """
    key = (int(seed), float(time_scale))
    if key not in _CAMPAIGN_CACHE:
        if len(_CAMPAIGN_CACHE) >= _CAMPAIGN_CACHE_MAX:
            _CAMPAIGN_CACHE.pop(next(iter(_CAMPAIGN_CACHE)))
        _CAMPAIGN_CACHE[key] = Campaign(
            seed=seed,
            time_scale=time_scale,
            executor=resolve_executor(workers),
        ).run()
    return _CAMPAIGN_CACHE[key]


#: Paper-reported values, keyed by artifact id.  These are the targets
#: the reproduction is compared against in EXPERIMENTS.md and asserted
#: (by *shape*, not absolute value) in benchmarks/.
PAPER: Dict[str, Dict[str, object]] = {
    "table2": {
        "voltages_mv": [980, 930, 920, 790],
        "durations_min": [1651, 1618, 453, 165],
        "fluences": [1.49e11, 1.46e11, 4.08e10, 1.48e10],
        "nyc_years": [1.30e6, 1.28e6, 3.58e5, 1.30e5],
        "failures": [95, 97, 141, 13],
        "failure_rates": [5.75e-2, 5.99e-2, 3.11e-1, 7.87e-2],
        "upsets": [1669, 1743, 506, 195],
        "upset_rates": [1.011, 1.077, 1.117, 1.182],
        "ser_fit_per_mbit": [2.08, 2.22, 2.30, 2.45],
    },
    "table3": {
        "rows": [
            ("Nominal", 2400, 980, 950),
            ("Safe", 2400, 930, 925),
            ("Vmin", 2400, 920, 920),
            ("Vmin@900MHz", 900, 790, 950),
        ],
    },
    "fig4": {
        "safe_vmin_mv": {2400: 920, 900: 790},
        "full_fail_mv": {2400: 900, 900: 780},
    },
    "fig5": {
        "rates": {
            "CG": [0.87, 0.84, 0.58],
            "LU": [1.15, 1.09, 1.03],
            "FT": [1.11, 1.21, 1.37],
            "EP": [1.03, 1.22, 1.17],
            "MG": [0.94, 1.02, 1.32],
            "IS": [1.03, 1.11, 1.28],
            "Total": [1.01, 1.08, 1.12],
        },
        "voltages_mv": [980, 930, 920],
        "max_increase_pct": 40.4,
    },
    "fig6": {
        "voltages_mv": [980, 930, 920],
        "rates": {
            ("TLBs", "CE"): [0.016, 0.011, 0.009],
            ("L1 Cache", "CE"): [0.028, 0.037, 0.026],
            ("L2 Cache", "CE"): [0.157, 0.178, 0.194],
            ("L3 Cache", "CE"): [0.765, 0.809, 0.841],
            ("L3 Cache", "UE"): [0.038, 0.041, 0.035],
        },
    },
    "fig7": {
        "rates": {
            ("TLBs", "CE"): 0.03,
            ("L1 Cache", "CE"): 0.07,
            ("L2 Cache", "CE"): 0.29,
            ("L3 Cache", "CE"): 0.83,
            ("L3 Cache", "UE"): 0.04,
        },
    },
    "fig8": {
        "voltages_mv": [980, 930, 920],
        "mixes_pct": {
            980: {"AppCrash": 17.9, "SysCrash": 51.6, "SDC": 30.5},
            930: {"AppCrash": 7.2, "SysCrash": 37.1, "SDC": 55.7},
            920: {"AppCrash": 2.1, "SysCrash": 5.7, "SDC": 92.2},
        },
    },
    "fig9": {
        "settings": [(2400, 980), (2400, 930), (2400, 920), (900, 790)],
        "power_watts": [20.40, 18.63, 18.15, 10.59],
        "upsets_per_min": [1.01, 1.08, 1.12, 1.18],
    },
    "fig10": {
        "settings": [(2400, 930), (2400, 920), (900, 790)],
        "power_savings_pct": [8.7, 11.0, 48.1],
        "susceptibility_increase_pct": [6.9, 10.9, 16.8],
    },
    "fig11": {
        "voltages_mv": [980, 930, 920],
        "fit": {
            980: {"AppCrash": 1.49, "SysCrash": 4.29, "SDC": 2.54, "Total": 8.31},
            930: {"AppCrash": 0.62, "SysCrash": 3.21, "SDC": 4.82, "Total": 8.66},
            920: {"AppCrash": 0.96, "SysCrash": 2.55, "SDC": 41.43, "Total": 54.83},
        },
        "sdc_increase_x": 16.3,
        "total_increase_x": 6.6,
    },
    "fig12": {
        "voltages_mv": [980, 930, 920],
        "sdc_fit": {
            980: {"without": 1.84, "with": 0.70},
            930: {"without": 3.84, "with": 0.98},
            920: {"without": 39.2, "with": 2.23},
        },
    },
    "fig13": {
        "sdc_fit": {"without": 4.39, "with": 0.88},
    },
}
