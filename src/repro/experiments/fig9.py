"""Figure 9: power consumption vs cache-upset rate across settings.

The two-knob trade-off: each Table 3 operating point's average power
(bars) against its consolidated upset rate (line).  Built from the
calibrated power and rate models -- the same models the Monte-Carlo
sessions draw from -- so the figure is deterministic.
"""

from __future__ import annotations

from ..core.report import Table
from ..core.tradeoff import build_tradeoff_series
from .config import ExperimentResult


def run(seed: int = 0, time_scale: float = 1.0) -> ExperimentResult:
    """Regenerate the Fig. 9 series over the Table 3 operating points."""
    series_obj = build_tradeoff_series()
    table = Table(
        title="Figure 9: Power vs soft-error susceptibility trade-off",
        header=[
            "Setting",
            "Frequency (MHz)",
            "PMD Voltage (mV)",
            "Power (W)",
            "Upsets/min",
        ],
    )
    for p in series_obj.points:
        table.add_row(
            p.point.label,
            p.point.freq_mhz,
            p.point.pmd_mv,
            p.power_watts,
            p.upsets_per_min,
        )
    series = {
        "power_watts": [p.power_watts for p in series_obj.points],
        "upsets_per_min": [p.upsets_per_min for p in series_obj.points],
        "settings": [
            (p.point.freq_mhz, p.point.pmd_mv) for p in series_obj.points
        ],
    }
    return ExperimentResult(experiment_id="fig9", table=table, series=series)
