"""repro: voltage-scaled soft-error susceptibility of a multicore server CPU.

A full reproduction of *"Impact of Voltage Scaling on Soft Errors
Susceptibility of Multicore Server CPUs"* (MICRO 2023) as a Python
library.  The irradiated hardware is replaced by calibrated simulation
substrates (see DESIGN.md); the analysis pipeline, experiment harness
and every table/figure generator are faithful to the paper.

Quickstart::

    from repro import Campaign, CampaignAnalysis

    campaign = Campaign(seed=2023, time_scale=0.05).run()
    analysis = CampaignAnalysis(campaign)
    print(analysis.table2().render())

Subpackages
-----------
``repro.core``
    Cross-section / FIT / SER analysis with confidence intervals and
    the power-vs-susceptibility trade-off analytics.
``repro.soc``
    The X-Gene 2 chip model: caches, TLBs, voltage domains, DVFS,
    EDAC, power, SLIMpro.
``repro.sram``
    SRAM soft-error physics: Qcrit, cross-sections, MBUs, parity and
    SECDED codecs, process variation.
``repro.beam``
    The TRIUMF TNF neutron beam: flux, spectrum, positioning,
    dosimetry, fluence.
``repro.workloads``
    Six NPB-style kernels with golden-output verification.
``repro.injection``
    Beam-driven Monte-Carlo injection, outcome propagation, AVF tools,
    and concrete bit-flip injection into live kernels.
``repro.harness``
    Vmin characterization, the Control-PC, beam sessions, campaigns.
``repro.engine``
    The execution layer: execution contexts, serial/parallel executors.
``repro.telemetry``
    Observability: metrics, span tracing, run manifests, exporters.
``repro.resilient``
    Fault tolerance: checkpoint/resume journal, supervised execution,
    deterministic chaos injection.
``repro.codecs``
    Pluggable ECC design space: codec registry, DEC-TED/SEC-DAEC/BCH,
    vectorized decoding, area/energy costs, the Pareto explorer sweep.
``repro.experiments``
    One driver per paper table and figure.
"""

from .codecs import (
    SweepSpec,
    assemble_pareto,
    get_codec,
    list_codecs,
    register_codec,
)
from .constants import NYC_FLUX_PER_CM2_HOUR, TNF_HALO_FLUX_PER_CM2_S
from .engine import (
    ExecutionContext,
    Executor,
    ParallelExecutor,
    SerialExecutor,
    resolve_executor,
)
from .core import (
    CampaignAnalysis,
    FitEstimate,
    Table,
    TradeoffSeries,
    build_tradeoff_series,
    dynamic_cross_section,
    fit_rate,
    ser_fit_per_mbit,
)
from .harness import (
    BeamSession,
    Campaign,
    CampaignResult,
    SessionPlan,
    SessionResult,
    TABLE2_SESSION_PLANS,
    VminCharacterizer,
)
from .injection import BeamInjector, DirectInjector, OutcomeKind, OutcomeModel
from .resilient import (
    ChaosSpec,
    ResilientCampaign,
    SupervisedExecutor,
    SupervisionPolicy,
)
from .rng import RngStreams
from .telemetry import (
    MetricsRegistry,
    RunManifest,
    Telemetry,
    Tracer,
    console_summary,
)
from .soc import OperatingPoint, PowerModel, XGene2
from .validate import (
    ConformanceReport,
    DifferentialRunner,
    canonical_campaign_json,
    default_registry,
    run_suites,
)
from .workloads import SUITE_NAMES, make_suite, make_workload

__version__ = "1.0.0"

__all__ = [
    "NYC_FLUX_PER_CM2_HOUR",
    "TNF_HALO_FLUX_PER_CM2_S",
    "CampaignAnalysis",
    "FitEstimate",
    "Table",
    "TradeoffSeries",
    "build_tradeoff_series",
    "dynamic_cross_section",
    "fit_rate",
    "ser_fit_per_mbit",
    "ExecutionContext",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "resolve_executor",
    "BeamSession",
    "Campaign",
    "CampaignResult",
    "SessionPlan",
    "SessionResult",
    "TABLE2_SESSION_PLANS",
    "VminCharacterizer",
    "BeamInjector",
    "DirectInjector",
    "OutcomeKind",
    "OutcomeModel",
    "ChaosSpec",
    "ResilientCampaign",
    "SupervisedExecutor",
    "SupervisionPolicy",
    "RngStreams",
    "MetricsRegistry",
    "RunManifest",
    "Telemetry",
    "Tracer",
    "console_summary",
    "OperatingPoint",
    "PowerModel",
    "XGene2",
    "SUITE_NAMES",
    "make_suite",
    "make_workload",
    "ConformanceReport",
    "DifferentialRunner",
    "canonical_campaign_json",
    "default_registry",
    "run_suites",
    "SweepSpec",
    "assemble_pareto",
    "get_codec",
    "list_codecs",
    "register_codec",
    "__version__",
]
