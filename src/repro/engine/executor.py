"""Executors: the one run loop every batch workload fans out through.

A batch is a list of :class:`WorkUnit`\\ s -- picklable ``(fn, args,
kwargs)`` triples labeled with a stable key.  Executors return results
in submission order regardless of completion order, which is what makes
:class:`ParallelExecutor` output bit-identical to
:class:`SerialExecutor` output: every unit carries its own derived
seed, and the merge never depends on scheduling.

:class:`ParallelExecutor` is backed by a persistent
:class:`~repro.engine.pool.WorkerPool`: the process pool spawns lazily
on the first batch and stays warm across ``map()`` calls, units travel
in deterministic chunks, and large arrays ride shared memory.  Pool
*infrastructure* failures (no ``fork``, missing semaphores,
unpicklable payloads, workers dying faster than the respawn budget)
fall back to in-process serial execution; an exception raised by a
unit function itself is re-raised to the caller -- it is the unit's
genuine result, not a pool problem.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError, PoolUnavailable
from ..telemetry import NULL_TELEMETRY, Telemetry
from .pool import WarmupSpec, WorkerPool


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit of work.

    Attributes
    ----------
    key:
        Stable label used for logging and deterministic merging.
    fn:
        A picklable callable -- must be a module-level function for the
        process-pool path.
    args / kwargs:
        Arguments passed to ``fn``.  Everything must be picklable for
        parallel execution; derived integer seeds (not generators)
        should ride here.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        """Execute the unit in the calling process."""
        return self.fn(*self.args, **self.kwargs)


class Executor:
    """Interface: run a batch of work units, results in submission order."""

    #: Human-readable executor label (used in logbooks and benches).
    name: str = "executor"

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        """Run every unit; return their results in submission order.

        ``telemetry`` receives an ``executor.map`` span, a
        ``engine.units`` count per unit, and per-unit duration
        observations.  Unit *counts* are identical across executors for
        the same batch; only the timings differ.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources, if any (no-op for in-process)."""

    def _log(self, logbook, started: float, kind: str, message: str) -> None:
        if logbook is not None:
            logbook.record(time.monotonic() - started, kind, message)


class SerialExecutor(Executor):
    """Runs units one after another in the calling process."""

    name = "serial"

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        started = time.monotonic()
        results: List[Any] = []
        with tele.span("executor.map", executor=self.name, units=len(units)):
            for unit in units:
                self._log(
                    logbook, started, "engine", f"run {unit.key} (serial)"
                )
                unit_started = time.perf_counter()
                results.append(unit.run())
                tele.observe(
                    "engine.unit_seconds", time.perf_counter() - unit_started
                )
                self._log(logbook, started, "engine", f"done {unit.key}")
            # One bulk increment on success keeps counts exact even if
            # a unit raised mid-batch.
            tele.count("engine.units", len(units))
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fans units out over a persistent warm pool, merging in
    submission order.

    The underlying :class:`~repro.engine.pool.WorkerPool` spawns
    lazily on the first multi-unit batch and is reused by every later
    ``map()`` call -- broker drain batches, service jobs and explorer
    cells all ride the same warm workers.  Call :meth:`close` (or use
    the executor as a context manager) to release the processes.

    Parameters
    ----------
    workers:
        Maximum number of worker processes.
    fallback:
        When True (default), degrade to serial execution when the pool
        *infrastructure* fails -- cannot spawn, payload unpicklable,
        workers dying beyond the respawn budget; when False, raise
        :class:`~repro.errors.EngineError` instead.  An exception
        raised by a unit function is never swallowed into fallback: it
        propagates to the caller either way.
    chunk:
        Units per dispatch chunk; ``None`` (default) sizes chunks
        automatically per batch.
    warmup:
        Optional :class:`~repro.engine.pool.WarmupSpec` pre-building
        per-worker state (codec tables, injector modules) at spawn.
    shm_min_bytes:
        Shared-memory threshold for large arrays; ``None`` disables
        shm transport.
    """

    name = "parallel"

    def __init__(
        self,
        workers: int = 2,
        fallback: bool = True,
        chunk: Optional[int] = None,
        warmup: Optional[WarmupSpec] = None,
        shm_min_bytes: Optional[int] = None,
    ) -> None:
        if workers < 1:
            raise EngineError("need at least one worker")
        self.workers = int(workers)
        self.fallback = fallback
        pool_kwargs: Dict[str, Any] = {}
        if shm_min_bytes is not None:
            pool_kwargs["shm_min_bytes"] = shm_min_bytes
        self.pool = WorkerPool(
            workers=self.workers, warmup=warmup, chunk=chunk, **pool_kwargs
        )

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        units = list(units)
        if len(units) <= 1 or self.workers == 1:
            return SerialExecutor().map(
                units, logbook=logbook, telemetry=telemetry
            )
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        started = time.monotonic()
        try:
            with tele.span(
                "executor.map",
                executor=self.name,
                units=len(units),
                workers=self.workers,
            ):
                for unit in units:
                    self._log(
                        logbook, started, "engine",
                        f"dispatch {unit.key} (parallel x{self.workers})",
                    )
                results = self.pool.map_chunks(
                    units,
                    telemetry=tele,
                    log=lambda message: self._log(
                        logbook, started, "engine", message
                    ),
                )
                # Counted only after every chunk resolved: a dead pool
                # falls back to serial, which does its own count.
                tele.count("engine.units", len(units))
                return results
        except PoolUnavailable as exc:
            # Infrastructure only: no fork/spawn support, missing POSIX
            # semaphores, unpicklable payloads, respawn budget burned.
            # A unit's own exception propagates above instead.
            if not self.fallback:
                raise EngineError(
                    f"parallel execution failed ({exc!r}) and fallback "
                    f"is disabled"
                ) from exc
            self._log(
                logbook, started, "engine",
                f"process pool unavailable ({exc}); falling back to serial",
            )
            tele.count("engine.pool_fallbacks")
            return SerialExecutor().map(
                units, logbook=logbook, telemetry=telemetry
            )

    def close(self) -> None:
        """Release the worker processes (the pool respawns if reused)."""
        self.pool.close()

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


def resolve_executor(
    workers: Optional[int],
    warmup: Optional[WarmupSpec] = None,
    chunk: Optional[int] = None,
) -> Executor:
    """Map a CLI-style ``--workers`` value onto an executor.

    ``None``, 0 or 1 mean serial; anything greater is a parallel pool
    of that many workers.  ``warmup``/``chunk`` configure the parallel
    executor's persistent pool and are ignored for serial.
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers, warmup=warmup, chunk=chunk)
