"""Executors: the one run loop every batch workload fans out through.

A batch is a list of :class:`WorkUnit`\\ s -- picklable ``(fn, args,
kwargs)`` triples labeled with a stable key.  Executors return results
in submission order regardless of completion order, which is what makes
:class:`ParallelExecutor` output bit-identical to
:class:`SerialExecutor` output: every unit carries its own derived
seed, and the merge never depends on scheduling.

:class:`ParallelExecutor` is backed by
:class:`concurrent.futures.ProcessPoolExecutor`.  Spawning workers can
fail in restricted environments (no ``fork``, missing semaphores,
unpicklable payloads); in that case it logs the reason and falls back
to in-process serial execution rather than failing the run.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import EngineError
from ..telemetry import NULL_TELEMETRY, Telemetry


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable unit of work.

    Attributes
    ----------
    key:
        Stable label used for logging and deterministic merging.
    fn:
        A picklable callable -- must be a module-level function for the
        process-pool path.
    args / kwargs:
        Arguments passed to ``fn``.  Everything must be picklable for
        parallel execution; derived integer seeds (not generators)
        should ride here.
    """

    key: str
    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        """Execute the unit in the calling process."""
        return self.fn(*self.args, **self.kwargs)


class Executor:
    """Interface: run a batch of work units, results in submission order."""

    #: Human-readable executor label (used in logbooks and benches).
    name: str = "executor"

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        """Run every unit; return their results in submission order.

        ``telemetry`` receives an ``executor.map`` span, a
        ``engine.units`` count per unit, and per-unit duration
        observations.  Unit *counts* are identical across executors for
        the same batch; only the timings differ.
        """
        raise NotImplementedError

    def _log(self, logbook, started: float, kind: str, message: str) -> None:
        if logbook is not None:
            logbook.record(time.monotonic() - started, kind, message)


class SerialExecutor(Executor):
    """Runs units one after another in the calling process."""

    name = "serial"

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        started = time.monotonic()
        results: List[Any] = []
        with tele.span("executor.map", executor=self.name, units=len(units)):
            for unit in units:
                self._log(
                    logbook, started, "engine", f"run {unit.key} (serial)"
                )
                unit_started = time.perf_counter()
                results.append(unit.run())
                tele.observe(
                    "engine.unit_seconds", time.perf_counter() - unit_started
                )
                self._log(logbook, started, "engine", f"done {unit.key}")
            # One bulk increment on success keeps counts exact even if
            # a unit raised mid-batch.
            tele.count("engine.units", len(units))
        return results

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ParallelExecutor(Executor):
    """Fans units out over a process pool, merging in submission order.

    Parameters
    ----------
    workers:
        Maximum number of worker processes.
    fallback:
        When True (default), degrade to serial execution if the pool
        cannot be spawned or breaks mid-flight; when False, raise
        :class:`~repro.errors.EngineError` instead.
    """

    name = "parallel"

    def __init__(self, workers: int = 2, fallback: bool = True) -> None:
        if workers < 1:
            raise EngineError("need at least one worker")
        self.workers = int(workers)
        self.fallback = fallback

    def map(
        self,
        units: Sequence[WorkUnit],
        logbook=None,
        telemetry: Optional[Telemetry] = None,
    ) -> List[Any]:
        units = list(units)
        if len(units) <= 1 or self.workers == 1:
            return SerialExecutor().map(
                units, logbook=logbook, telemetry=telemetry
            )
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        started = time.monotonic()
        try:
            with tele.span(
                "executor.map",
                executor=self.name,
                units=len(units),
                workers=self.workers,
            ), ProcessPoolExecutor(
                max_workers=min(self.workers, len(units))
            ) as pool:
                futures = []
                for unit in units:
                    self._log(
                        logbook, started, "engine",
                        f"dispatch {unit.key} (parallel x{self.workers})",
                    )
                    futures.append(
                        pool.submit(unit.fn, *unit.args, **unit.kwargs)
                    )
                # Collect strictly in submission order: scheduling can
                # finish units out of order, the merge must not.
                results = []
                collect_started = time.perf_counter()
                for unit, future in zip(units, futures):
                    results.append(future.result())
                    # Completion latency since dispatch, not CPU time:
                    # the unit ran on another process.
                    tele.observe(
                        "engine.unit_seconds",
                        time.perf_counter() - collect_started,
                    )
                    self._log(logbook, started, "engine", f"done {unit.key}")
                # Counted only after every future resolved: a broken
                # pool falls back to serial, which does its own count.
                tele.count("engine.units", len(units))
                return results
        except (OSError, ValueError, RuntimeError, BrokenProcessPool,
                ImportError, AttributeError, TypeError,
                pickle.PicklingError) as exc:
            # Covers: no fork/spawn support, missing POSIX semaphores,
            # unpicklable payloads, and workers dying at import time.
            if not self.fallback:
                raise EngineError(
                    f"parallel execution failed ({exc!r}) and fallback "
                    f"is disabled"
                ) from exc
            self._log(
                logbook, started, "engine",
                f"process pool unavailable ({exc.__class__.__name__}); "
                f"falling back to serial",
            )
            tele.count("engine.pool_fallbacks")
            return SerialExecutor().map(
                units, logbook=logbook, telemetry=telemetry
            )

    def __repr__(self) -> str:
        return f"ParallelExecutor(workers={self.workers})"


def resolve_executor(workers: Optional[int]) -> Executor:
    """Map a CLI-style ``--workers`` value onto an executor.

    ``None``, 0 or 1 mean serial; anything greater is a parallel pool
    of that many workers.
    """
    if workers is None or workers <= 1:
        return SerialExecutor()
    return ParallelExecutor(workers)
