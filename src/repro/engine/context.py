"""Execution context: the seed/time-scale/flux bundle shared by all runners.

Before the engine existed, every runner (campaign, ensemble, vmin,
microarch FI) accepted its own loose ``seed``/``time_scale`` pair and
derived streams its own way.  :class:`ExecutionContext` is the single
carrier for that state: it is immutable, picklable (so it can ride
inside a :class:`~repro.engine.executor.WorkUnit` to another process),
and derives child seeds/streams with the same stable hashing used by
:class:`~repro.rng.RngStreams`, so the same ``(seed, name, qualifiers)``
triple always yields the same stream no matter which process asks.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional, Protocol, runtime_checkable

import numpy as np

from ..errors import EngineError
from ..rng import RngStreams
from ..telemetry import Telemetry


@runtime_checkable
class Logbook(Protocol):
    """Structural interface of a logbook sink.

    The concrete :class:`repro.harness.logbook.Logbook` lives in the
    harness layer, and importing it here would create a cycle (harness
    imports the engine); this protocol gives type checkers the real
    ``record`` signature without the import.
    """

    def record(
        self,
        time_s: float,
        kind: str,
        message: str,
        benchmark: Optional[str] = None,
    ) -> object:
        """Append one timestamped entry."""
        ...


@dataclass(frozen=True, eq=False)
class ExecutionContext:
    """Immutable bundle of everything a deterministic run depends on.

    Attributes
    ----------
    seed:
        Root seed; every stochastic draw of the run derives from it.
    time_scale:
        Fraction of nominal beam/run time (1.0 = full length).
    flux_per_cm2_s:
        Optional campaign-wide beam-flux override; ``None`` keeps each
        plan's own flux.
    logbook:
        Optional :class:`~repro.harness.logbook.Logbook` the executor
        records dispatch/completion events into.  Excluded from
        pickling concerns by living only on the submitting side.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` sink runners
        record metrics and spans into.  Like the logbook, it lives only
        on the submitting side; work units ship registry *snapshots*
        back instead.
    """

    seed: int = 2023
    time_scale: float = 1.0
    flux_per_cm2_s: Optional[float] = None
    logbook: Optional[Logbook] = None
    telemetry: Optional[Telemetry] = None

    def __post_init__(self) -> None:
        if self.time_scale <= 0:
            raise EngineError("time scale must be positive")
        if self.flux_per_cm2_s is not None and self.flux_per_cm2_s < 0:
            raise EngineError("flux override must be nonnegative")
        object.__setattr__(self, "seed", int(self.seed))

    @property
    def streams(self) -> RngStreams:
        """A root stream factory for this context's seed."""
        return RngStreams(self.seed)

    def child(self, name: str, **qualifiers: object) -> np.random.Generator:
        """A named child generator (see :meth:`RngStreams.child`)."""
        return self.streams.child(name, **qualifiers)

    def derive_seed(self, name: str, **qualifiers: object) -> int:
        """A stable derived integer seed for a named work unit.

        Work units crossing a process boundary carry a plain integer
        seed rather than a generator, so the receiving process can
        rebuild identical streams.  The derivation hashes the same
        ``(seed, name, qualifiers)`` key as :meth:`child`, so distinct
        units get independent seeds and repeated calls agree.
        """
        key = (self.seed, name) + tuple(
            sorted((k, repr(v)) for k, v in qualifiers.items())
        )
        digest = hashlib.md5(repr(key).encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def with_seed(self, seed: int) -> "ExecutionContext":
        """A copy of this context under a different root seed."""
        return replace(self, seed=int(seed))

    def without_logbook(self) -> "ExecutionContext":
        """A picklable copy safe to ship to worker processes.

        Strips both submitting-side sinks (logbook and telemetry).
        """
        if self.logbook is None and self.telemetry is None:
            return self
        return replace(self, logbook=None, telemetry=None)

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(seed={self.seed}, "
            f"time_scale={self.time_scale}, "
            f"flux_per_cm2_s={self.flux_per_cm2_s})"
        )
