"""Persistent warm worker pools with chunked dispatch and shm transport.

Spawning a :class:`~concurrent.futures.ProcessPoolExecutor` costs on
the order of 100 ms, and every cold worker re-imports repro and
rebuilds codec syndrome tables (BCH t=3 carries ~117k entries) and
injector rate caches from scratch.  Paying that per ``map()`` call is
invisible for one four-session campaign and ruinous for a service loop
draining thousands of small leased batches.  :class:`WorkerPool` makes
the pool a long-lived resource instead:

* **warm reuse** -- the pool is spawned lazily on first use and kept
  alive across ``map()`` calls, broker drain batches, service jobs and
  explorer cells; a worker ``initializer`` pre-builds expensive
  per-process state once (:class:`WarmupSpec`: codec bundles via the
  registry, injector modules) instead of per unit;
* **chunked dispatch** -- units go out in deterministic chunks of K:
  one pickle and one IPC round trip per chunk instead of per unit.
  Results are merged strictly in submission order, so chunking changes
  *when* work runs, never *what* the caller sees -- serial == parallel
  byte-identity is untouched for every chunk size;
* **shared-memory transport** -- large contiguous numpy arrays inside
  a chunk payload or result travel through
  :mod:`multiprocessing.shared_memory` views instead of pickle copies,
  with a transparent pickle fallback when shared memory is unavailable;
* **lifecycle** -- health-checked reuse, explicit :meth:`~WorkerPool.
  close`, and chaos-compatible kill/respawn: a worker killed mid-chunk
  breaks the pool, the pool respawns (bounded budget) and re-dispatches
  the unfinished chunks, and the submission-order merge is preserved.

Failure taxonomy (the satellite contract): an exception raised *by a
unit function* is shipped back per-unit and re-raised in the parent --
never swallowed into a serial fallback.  Only infrastructure failures
(payload not picklable, spawn failure, pool broken beyond its respawn
budget) raise :class:`~repro.errors.PoolUnavailable`, which is what
executors translate into their fallback/degradation policies.

Telemetry rides in the ``engine.pool.*`` namespace (spawns, reuses,
respawns, chunk pickle bytes/seconds, shm bytes, warm-cache hits),
which the determinism comparisons already exclude: pool bookkeeping
depends on scheduling, the physics does not.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import PoolUnavailable
from ..telemetry import NULL_TELEMETRY, Telemetry

#: Arrays at or above this many bytes ride in shared memory (when the
#: platform provides it); smaller ones are cheaper to pickle inline.
DEFAULT_SHM_MIN_BYTES = 64 * 1024

#: How many chunks a pool breakage may force back out before the pool
#: declares itself unavailable.
DEFAULT_MAX_RESPAWNS = 2

#: Upper bound for the automatic chunk size: beyond this, larger
#: chunks only grow pickle payloads without reducing round trips much.
_MAX_AUTO_CHUNK = 32


@dataclass(frozen=True)
class WarmupSpec:
    """What a worker process pre-builds at spawn time.

    Picklable and frozen: it travels to every worker exactly once, via
    the pool initializer.

    Attributes
    ----------
    codecs:
        Registry names whose scalar + vectorized bundles (H matrices,
        syndrome tables) are built eagerly via
        :func:`repro.codecs.get_codec`.
    injector:
        Import the injection stack and construct its default rate
        models, so the first unit does not pay those imports.
    modules:
        Extra module paths to import (e.g. ``repro.harness.campaign``
        pulls the whole campaign dependency tree in one line).
    """

    codecs: Tuple[str, ...] = ()
    injector: bool = False
    modules: Tuple[str, ...] = ()


#: Warm-up for campaign-shaped units (`_fly_session` and friends).
CAMPAIGN_WARMUP = WarmupSpec(injector=True, modules=("repro.harness.campaign",))


def warm_process(spec: WarmupSpec) -> None:
    """Pre-build *spec*'s per-process state in the calling process."""
    import importlib

    for module in spec.modules:
        importlib.import_module(module)
    if spec.injector:
        from ..injection.calibration import LevelRateModel, OutcomeMixModel

        LevelRateModel()
        OutcomeMixModel()
    if spec.codecs:
        from ..codecs import get_codec

        for name in spec.codecs:
            bundle = get_codec(name)
            bundle.codec
            bundle.vectorized


# -- worker-side state --------------------------------------------------------------

#: Per-process chunk bookkeeping; ``warmed`` means the initializer ran.
_WORKER_STATE: Dict[str, Any] = {"warmed": False, "chunks": 0}


def _initialize_worker(spec: WarmupSpec) -> None:
    warm_process(spec)
    _WORKER_STATE["warmed"] = True


# -- shared-memory transport --------------------------------------------------------

#: Flipped to True after the first shm failure so one broken platform
#: does not pay a failed syscall per array (tests also force it).
_SHM_BROKEN = False


@dataclass(frozen=True)
class _ShmRef:
    """Pickled stand-in for an ndarray parked in a shm segment."""

    name: str
    shape: Tuple[int, ...]
    dtype: str


class _ChunkTransportError(Exception):
    """Worker-side encode/decode failure: infrastructure, not a unit."""


def _shm_module():
    from multiprocessing import shared_memory

    return shared_memory


def _untrack(shm) -> None:
    """Drop the creator's resource-tracker registration for *shm*.

    Ownership of a transport segment passes to the receiver: its
    attach registers with its own tracker and its unlink unregisters.
    Without this, the creator's tracker would warn at exit about --
    and try to re-unlink -- segments consumed long ago (CPython < 3.13
    registers on create and cannot be told the hand-off happened).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(
            getattr(shm, "_name", shm.name), "shared_memory"
        )
    except Exception:  # pragma: no cover - tracker absent or exotic
        pass


def _extract_arrays(obj, min_bytes: int, created: List[str]):
    """Rewrite builtin containers, parking big ndarrays in shm.

    Walks tuples/lists/dicts only -- arrays buried inside arbitrary
    objects pickle normally, which is always correct, just slower.
    Returns the rewritten tree; segment names created along the way are
    appended to *created* (the caller owns unlink-on-error).
    """
    global _SHM_BROKEN
    import numpy as np

    if isinstance(obj, np.ndarray) and obj.nbytes >= min_bytes:
        if _SHM_BROKEN:
            return obj
        array = np.ascontiguousarray(obj)
        try:
            shm = _shm_module().SharedMemory(create=True, size=array.nbytes)
        except (ImportError, OSError, ValueError):
            _SHM_BROKEN = True
            return obj
        try:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf
            )
            view[...] = array
            created.append(shm.name)
            _untrack(shm)
            return _ShmRef(
                name=shm.name,
                shape=tuple(array.shape),
                dtype=array.dtype.str,
            )
        finally:
            shm.close()
    if isinstance(obj, tuple):
        return tuple(
            _extract_arrays(item, min_bytes, created) for item in obj
        )
    if isinstance(obj, list):
        return [_extract_arrays(item, min_bytes, created) for item in obj]
    if isinstance(obj, dict):
        return {
            key: _extract_arrays(value, min_bytes, created)
            for key, value in obj.items()
        }
    return obj


def _restore_arrays(obj):
    """Inverse of :func:`_extract_arrays`: attach, copy out, unlink.

    The receiver owns the segment's lifetime: once the array is copied
    into this process the segment is unlinked, so a consumed payload
    cannot be decoded twice (senders re-encode on re-dispatch).
    """
    import numpy as np

    if isinstance(obj, _ShmRef):
        shm = _shm_module().SharedMemory(name=obj.name)
        try:
            view = np.ndarray(
                obj.shape, dtype=np.dtype(obj.dtype), buffer=shm.buf
            )
            return view.copy()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - racing cleanup
                pass
    if isinstance(obj, tuple):
        return tuple(_restore_arrays(item) for item in obj)
    if isinstance(obj, list):
        return [_restore_arrays(item) for item in obj]
    if isinstance(obj, dict):
        return {key: _restore_arrays(value) for key, value in obj.items()}
    return obj


def _unlink_segments(names: Sequence[str]) -> None:
    """Best-effort unlink of sender-created segments (error paths)."""
    for name in names:
        try:
            shm = _shm_module().SharedMemory(name=name)
        except (FileNotFoundError, ImportError, OSError):
            continue  # already consumed by the receiver
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - racing cleanup
            pass


def _encode(obj, min_bytes: Optional[int]) -> Tuple[bytes, List[str]]:
    """Pickle *obj*, parking large arrays in shm when enabled."""
    created: List[str] = []
    if min_bytes is not None:
        obj = _extract_arrays(obj, min_bytes, created)
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL), created
    except Exception:
        _unlink_segments(created)
        raise


def _decode(data: bytes):
    return _restore_arrays(pickle.loads(data))


# -- the chunk protocol -------------------------------------------------------------


def _run_chunk(payload: bytes) -> Tuple[bytes, dict]:
    """Worker-side chunk loop: decode, run each unit, encode outcomes.

    Unit exceptions are *outcomes*, shipped back per-unit, so the
    parent can re-raise the genuine error in submission order.  Only
    transport trouble (an unpicklable result, a torn shm segment)
    raises -- as :class:`_ChunkTransportError`, which the parent treats
    as pool infrastructure failing, exactly like a broken pool.
    """
    try:
        chunk = _decode(payload)
    except Exception as exc:
        raise _ChunkTransportError(
            f"chunk payload decode failed: {exc!r}"
        ) from None
    warm = _WORKER_STATE["warmed"] or _WORKER_STATE["chunks"] > 0
    _WORKER_STATE["chunks"] += 1
    outcomes: List[Tuple[bool, Any]] = []
    durations: List[float] = []
    for fn, args, kwargs in chunk["calls"]:
        unit_started = time.perf_counter()
        try:
            outcomes.append((True, fn(*args, **kwargs)))
        except Exception as exc:
            outcomes.append((False, exc))
        durations.append(time.perf_counter() - unit_started)
    encode_started = time.perf_counter()
    try:
        data, _ = _encode(outcomes, chunk["shm_min_bytes"])
    except Exception as exc:
        raise _ChunkTransportError(
            f"chunk result encode failed: {exc!r}"
        ) from None
    meta = {
        "warm": warm,
        "unit_seconds": durations,
        "encode_seconds": time.perf_counter() - encode_started,
        "result_bytes": len(data),
    }
    return data, meta


def auto_chunk(units: int, workers: int) -> int:
    """Deterministic default chunk size for *units* over *workers*.

    Aim for a few chunks per worker (so stragglers even out) without
    ever degenerating to one unit per IPC round trip on big batches.
    """
    if units <= 0:
        return 1
    per_worker = -(-units // max(workers, 1))  # ceil
    return max(1, min(_MAX_AUTO_CHUNK, -(-per_worker // 4)))


class WorkerPool:
    """A reusable, warm, chunk-dispatching process pool.

    Parameters
    ----------
    workers:
        Worker process count (the pool spawns them lazily on demand).
    warmup:
        Optional :class:`WarmupSpec` run in every worker at spawn.
    chunk:
        Fixed chunk size for :meth:`map_chunks`; ``None`` picks
        :func:`auto_chunk` per batch.
    shm_min_bytes:
        Shared-memory threshold; ``None`` disables shm transport
        entirely (everything pickles inline).
    max_respawns:
        Pool breakages tolerated per :meth:`map_chunks` call before
        raising :class:`~repro.errors.PoolUnavailable`.
    """

    def __init__(
        self,
        workers: int,
        warmup: Optional[WarmupSpec] = None,
        chunk: Optional[int] = None,
        shm_min_bytes: Optional[int] = DEFAULT_SHM_MIN_BYTES,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
    ) -> None:
        if workers < 1:
            raise PoolUnavailable("a worker pool needs at least one worker")
        if chunk is not None and chunk < 1:
            raise PoolUnavailable("chunk size must be positive")
        self.workers = int(workers)
        self.warmup = warmup or WarmupSpec()
        self.chunk = chunk
        self.shm_min_bytes = shm_min_bytes
        self.max_respawns = int(max_respawns)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._broken = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def live(self) -> bool:
        """True while a healthy pool instance exists."""
        return self._pool is not None and not self._broken

    def ensure(self, telemetry: Optional[Telemetry] = None) -> ProcessPoolExecutor:
        """The live pool, spawning (or respawning) when needed.

        Raises whatever the platform raises when process pools cannot
        exist at all (no fork/spawn, missing semaphores); callers map
        that onto their fallback policy.
        """
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.live:
            tele.count("engine.pool.reuses")
            return self._pool
        respawn = self._pool is not None
        if respawn:
            self._discard(cancel=True)
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_initialize_worker,
            initargs=(self.warmup,),
        )
        self._broken = False
        tele.count("engine.pool.respawns" if respawn else "engine.pool.spawns")
        return self._pool

    def mark_broken(self) -> None:
        """Record that the pool's processes are gone (health check)."""
        self._broken = True

    def kill_workers(self, telemetry: Optional[Telemetry] = None) -> None:
        """Power-cycle: kill every worker now, pool respawns on next use.

        ``shutdown(cancel_futures=True)`` only cancels *pending*
        futures -- a hung unit keeps executing in its worker, and since
        ``concurrent.futures`` joins workers at interpreter exit, one
        genuinely hung unit could hang the process on exit.  Killing
        the snapshotted workers is the supervised executor's timeout
        semantics, kept here so every owner of a pool gets it.
        """
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        self._broken = False
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in processes:
            try:
                proc.kill()
            except (OSError, ValueError, AttributeError):
                pass  # already dead / exotic platform
        for proc in processes:
            try:
                proc.join(timeout=5.0)
            except (OSError, ValueError, AssertionError):
                pass
        tele.count("engine.pool.kills")

    def close(self, cancel: bool = False) -> None:
        """Shut the pool down; the next use spawns a fresh one."""
        self._discard(cancel=cancel)

    def _discard(self, cancel: bool) -> None:
        pool, self._pool = self._pool, None
        self._broken = False
        if pool is not None:
            pool.shutdown(wait=not cancel, cancel_futures=cancel)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- per-unit dispatch (supervised path) -------------------------------------

    def submit(self, fn, /, *args, **kwargs):
        """One unit, one future -- for callers that need per-unit
        timeouts and retry budgets (the supervised executor)."""
        return self.ensure().submit(fn, *args, **kwargs)

    # -- chunked dispatch --------------------------------------------------------

    def map_chunks(
        self,
        units: Sequence,
        telemetry: Optional[Telemetry] = None,
        log=None,
    ) -> List[Any]:
        """Run :class:`~repro.engine.WorkUnit`-shaped units; results in
        submission order.

        Raises the first failing unit's own exception (submission
        order), or :class:`~repro.errors.PoolUnavailable` when the pool
        infrastructure itself is the problem.
        """
        tele = telemetry if telemetry is not None else NULL_TELEMETRY
        units = list(units)
        if not units:
            return []
        size = self.chunk or auto_chunk(len(units), self.workers)
        chunks = [units[i : i + size] for i in range(0, len(units), size)]
        outcomes: List[Optional[List[Tuple[bool, Any]]]] = [None] * len(chunks)
        metas: List[Optional[dict]] = [None] * len(chunks)
        respawns_left = self.max_respawns
        while any(done is None for done in outcomes):
            try:
                pool = self.ensure(tele)
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                raise PoolUnavailable(
                    f"cannot spawn worker processes: {exc!r}"
                ) from exc
            pending = [i for i, done in enumerate(outcomes) if done is None]
            futures: Dict[int, Any] = {}
            segments: Dict[int, List[str]] = {}
            try:
                for index in pending:
                    payload, names = self._encode_chunk(chunks[index], tele)
                    segments[index] = names
                    futures[index] = pool.submit(_run_chunk, payload)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                # The payload itself cannot travel (lambdas, open
                # handles): deterministic, no point respawning.
                for names in segments.values():
                    _unlink_segments(names)
                self._drain_quietly(futures.values())
                raise PoolUnavailable(
                    f"chunk payload not picklable: {exc!r}"
                ) from exc
            except (BrokenProcessPool, RuntimeError):
                # RuntimeError: submit on a pool shut down under us --
                # same remedy as a breakage, respawn within budget.
                self.mark_broken()
                for names in segments.values():
                    _unlink_segments(names)
                respawns_left = self._budget(respawns_left)
                continue
            try:
                for index in pending:
                    data, meta = futures[index].result()
                    outcomes[index] = self._decode_result(data)
                    metas[index] = meta
                    self._observe_chunk(meta, tele)
            except BrokenProcessPool:
                self.mark_broken()
                for index in pending:
                    if outcomes[index] is None:
                        _unlink_segments(segments[index])
                respawns_left = self._budget(respawns_left)
                continue
            except Exception as exc:
                # Unit exceptions travel *inside* outcomes, so anything
                # raised at this layer -- a transport error shipped by
                # the worker, an import dying in the result path -- is
                # infrastructure.  Deterministic: do not respawn.
                self._drain_quietly(
                    futures[i] for i in pending if outcomes[i] is None
                )
                raise PoolUnavailable(
                    f"chunk transport failed: {exc}"
                ) from exc
        return self._merge(units, outcomes, metas, tele, log)

    def _budget(self, respawns_left: int) -> int:
        if respawns_left <= 0:
            self.close(cancel=True)
            raise PoolUnavailable(
                f"worker pool broke more than {self.max_respawns} time(s) "
                f"in one batch"
            )
        return respawns_left - 1

    def _encode_chunk(self, chunk, tele: Telemetry) -> Tuple[bytes, List[str]]:
        encode_started = time.perf_counter()
        payload, names = _encode(
            {
                "calls": [
                    (unit.fn, unit.args, unit.kwargs) for unit in chunk
                ],
                "shm_min_bytes": self.shm_min_bytes,
            },
            self.shm_min_bytes,
        )
        tele.observe(
            "engine.pool.pickle_seconds",
            time.perf_counter() - encode_started,
        )
        tele.count("engine.pool.pickle_bytes", n=len(payload))
        tele.count("engine.pool.chunks")
        if names:
            tele.count("engine.pool.shm_segments", n=len(names))
        return payload, names

    @staticmethod
    def _decode_result(data: bytes) -> List[Tuple[bool, Any]]:
        try:
            return _decode(data)
        except Exception as exc:
            raise _ChunkTransportError(
                f"chunk result decode failed: {exc!r}"
            ) from None

    @staticmethod
    def _observe_chunk(meta: dict, tele: Telemetry) -> None:
        tele.count(
            "engine.pool.warm_hits" if meta["warm"]
            else "engine.pool.cold_chunks"
        )
        tele.count("engine.pool.pickle_bytes", n=meta["result_bytes"])
        tele.observe("engine.pool.pickle_seconds", meta["encode_seconds"])

    @staticmethod
    def _drain_quietly(futures) -> None:
        """Consume leftover futures so their shm results are reclaimed."""
        for future in futures:
            try:
                data, _ = future.result()
                _decode(data)
            except Exception:
                pass

    @staticmethod
    def _merge(units, outcomes, metas, tele: Telemetry, log) -> List[Any]:
        """Flatten chunk outcomes back into submission order.

        Per-unit ``engine.unit_seconds`` observations use the worker's
        own measured run time -- genuine per-unit latency, not the
        cumulative collect-loop time the pre-pool executor reported.
        A failed unit's own exception is re-raised at its submission
        position; by this point every chunk has settled, so nothing is
        left in flight and the pool stays healthy for the next batch.
        """
        results: List[Any] = []
        index = 0
        for chunk_outcomes, meta in zip(outcomes, metas):
            for (ok, value), duration in zip(
                chunk_outcomes, meta["unit_seconds"]
            ):
                unit = units[index]
                index += 1
                if not ok:
                    raise value
                tele.observe("engine.unit_seconds", duration)
                results.append(value)
                if log is not None:
                    log(f"done {unit.key}")
        return results

    def __repr__(self) -> str:
        return (
            f"WorkerPool(workers={self.workers}, chunk={self.chunk}, "
            f"live={self.live})"
        )
