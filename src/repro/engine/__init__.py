"""Unified execution layer: contexts, work units and executors.

Every batch-shaped workload in the reproduction -- the four-session
campaign, multi-seed ensembles, vmin characterization sweeps,
microarchitectural FI batches -- used to carry its own ad-hoc run loop
and its own seed/time-scale plumbing.  This package centralizes both:

* :class:`ExecutionContext` bundles the root seed, the time scale, an
  optional campaign-wide flux override and an optional logbook sink,
  and hands out deterministic derived seeds/streams.
* :class:`WorkUnit` is one picklable unit of work (a top-level function
  plus arguments), labeled with a stable key.
* :class:`SerialExecutor` runs units in order in-process;
  :class:`ParallelExecutor` fans them out over a process pool and
  merges results in submission order, so parallel output is
  bit-identical to serial output for the same seed.  If worker
  processes cannot be spawned it degrades gracefully to serial.
"""

from .context import ExecutionContext
from .executor import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WorkUnit,
    resolve_executor,
)
from .pool import CAMPAIGN_WARMUP, WarmupSpec, WorkerPool, warm_process

__all__ = [
    "CAMPAIGN_WARMUP",
    "ExecutionContext",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "WarmupSpec",
    "WorkUnit",
    "WorkerPool",
    "resolve_executor",
    "warm_process",
]
