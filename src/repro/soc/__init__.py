"""Structural model of the X-Gene 2 server microprocessor.

Models the platform exactly as described in Section 3.1 / Table 1 of the
paper: 8 Armv8 cores in 4 dual-core pairs, private parity-protected L1
caches and TLBs, SECDED-protected per-pair L2 and shared 8 MB L3,
independently regulated PMD and SoC voltage domains, per-pair frequency
control, a SLIMpro-style management processor, an EDAC event log, and a
calibrated power model.
"""

from .cache_sim import (
    CacheConfig,
    CacheHierarchy,
    HierarchyReport,
    SetAssociativeCache,
)
from .dram import DramConfig, RefreshPowerModel, RetentionModel
from .regulator import (
    LoadProfile,
    PowerDeliveryNetwork,
    droop_penalty_mv,
    guardband_consumed_mv,
)
from .geometry import CacheLevel, StructureSpec, xgene2_structures
from .domains import VoltageDomain, DomainName
from .thermal import ThermalModel
from .dvfs import DvfsController, OperatingPoint
from .edac import EdacLog, EdacRecord, EdacSeverity
from .power import PowerModel
from .slimpro import SlimPro
from .xgene2 import XGene2

__all__ = [
    "CacheConfig",
    "CacheHierarchy",
    "HierarchyReport",
    "SetAssociativeCache",
    "DramConfig",
    "RefreshPowerModel",
    "RetentionModel",
    "ThermalModel",
    "LoadProfile",
    "PowerDeliveryNetwork",
    "droop_penalty_mv",
    "guardband_consumed_mv",
    "CacheLevel",
    "StructureSpec",
    "xgene2_structures",
    "VoltageDomain",
    "DomainName",
    "DvfsController",
    "OperatingPoint",
    "EdacLog",
    "EdacRecord",
    "EdacSeverity",
    "PowerModel",
    "SlimPro",
    "XGene2",
]
