"""DRAM retention/refresh model for the SoC domain.

The X-Gene 2's SoC domain carries four DDR3-1866 controllers, and the
SLIMpro explicitly exposes the DRAM *refresh rate* as a management knob
(Section 3.1) -- because refresh is the memory-side analogue of the
voltage guardband: JEDEC's 64 ms interval is as pessimistic for typical
cells as the nominal voltage is for typical chips.  Stretching refresh
saves power but exposes the weak-cell retention tail; this module
quantifies that trade with the standard lognormal retention-time model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DramConfig:
    """One DDR3 channel of the platform.

    Attributes
    ----------
    capacity_bytes:
        Channel capacity.
    data_rate_mtps:
        Transfer rate (DDR3-1866 -> 1866 MT/s).
    refresh_interval_ms:
        tREFW, the rolling window within which every row is refreshed
        (JEDEC: 64 ms below 85 degC).
    """

    capacity_bytes: int = 8 * 1024 ** 3
    data_rate_mtps: int = 1866
    refresh_interval_ms: float = 64.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0 or self.data_rate_mtps <= 0:
            raise ConfigurationError("capacity and data rate must be positive")
        if self.refresh_interval_ms <= 0:
            raise ConfigurationError("refresh interval must be positive")


@dataclass(frozen=True)
class RetentionModel:
    """Lognormal cell retention-time distribution.

    Attributes
    ----------
    median_retention_s:
        Median cell retention time at the reference temperature
        (seconds; tens of seconds is typical for DDR3 at 45 degC).
    sigma_log:
        Lognormal shape parameter (the weak-cell tail width).
    temperature_halving_c:
        Retention halves for every this-many degC of temperature rise
        (the classic ~10 degC rule).
    reference_temp_c:
        Temperature the median is quoted at.
    """

    median_retention_s: float = 30.0
    sigma_log: float = 1.1
    temperature_halving_c: float = 10.0
    reference_temp_c: float = 45.0

    def __post_init__(self) -> None:
        if self.median_retention_s <= 0 or self.sigma_log <= 0:
            raise ConfigurationError("retention parameters must be positive")
        if self.temperature_halving_c <= 0:
            raise ConfigurationError("halving constant must be positive")

    def median_at(self, temperature_c: float) -> float:
        """Median retention at a die temperature (Arrhenius-like halving)."""
        delta = temperature_c - self.reference_temp_c
        return self.median_retention_s * 2.0 ** (
            -delta / self.temperature_halving_c
        )

    def cell_failure_probability(
        self, refresh_interval_s: float, temperature_c: float = 45.0
    ) -> float:
        """P(one cell's retention time < the refresh interval)."""
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        median = self.median_at(temperature_c)
        z = math.log(refresh_interval_s / median) / self.sigma_log
        return float(stats.norm.cdf(z))

    def expected_failing_cells(
        self,
        bits: int,
        refresh_interval_s: float,
        temperature_c: float = 45.0,
    ) -> float:
        """Expected weak cells over *bits* at a refresh interval."""
        if bits <= 0:
            raise ConfigurationError("bit count must be positive")
        return bits * self.cell_failure_probability(
            refresh_interval_s, temperature_c
        )

    def max_refresh_interval_s(
        self,
        bits: int,
        temperature_c: float = 45.0,
        expected_failures_budget: float = 0.1,
    ) -> float:
        """Longest refresh interval within a weak-cell budget."""
        if expected_failures_budget <= 0:
            raise ConfigurationError("failure budget must be positive")
        target_p = expected_failures_budget / bits
        if target_p >= 1.0:
            return float("inf")
        z = stats.norm.ppf(target_p)
        return float(
            self.median_at(temperature_c) * math.exp(z * self.sigma_log)
        )


@dataclass(frozen=True)
class RefreshPowerModel:
    """Refresh energy accounting for one channel.

    Attributes
    ----------
    energy_per_refresh_j:
        Energy of refreshing the whole device once (all rows).
    """

    energy_per_refresh_j: float = 0.012

    def __post_init__(self) -> None:
        if self.energy_per_refresh_j <= 0:
            raise ConfigurationError("refresh energy must be positive")

    def refresh_power_w(self, refresh_interval_s: float) -> float:
        """Average refresh power at an interval."""
        if refresh_interval_s <= 0:
            raise ConfigurationError("refresh interval must be positive")
        return self.energy_per_refresh_j / refresh_interval_s

    def savings_w(
        self, baseline_interval_s: float, stretched_interval_s: float
    ) -> float:
        """Power saved by stretching the refresh interval."""
        return self.refresh_power_w(baseline_interval_s) - self.refresh_power_w(
            stretched_interval_s
        )
