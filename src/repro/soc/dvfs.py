"""Voltage / frequency control (the paper's two experiment knobs).

Frequency is controlled *per dual-core pair* between 300 MHz and
2.4 GHz in 300 MHz steps; voltage is controlled per domain (see
:mod:`repro.soc.domains`).  The study keeps DVFS disabled and pins
explicit (voltage, frequency) operating points -- Table 3:

======== ============ ============ =============
setting  frequency    PMD voltage  SoC voltage
======== ============ ============ =============
Nominal  2.4 GHz      980 mV       950 mV
Safe     2.4 GHz      930 mV       925 mV
Vmin     2.4 GHz      920 mV       920 mV
Vmin     900 MHz      790 mV       950 mV
======== ============ ============ =============
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import constants
from ..errors import FrequencyError
from .domains import DomainName, VoltageDomain


@dataclass(frozen=True)
class OperatingPoint:
    """One pinned (frequency, PMD voltage, SoC voltage) setting.

    Attributes
    ----------
    label:
        The paper's name for the setting ("Nominal", "Safe", "Vmin", ...).
    freq_mhz:
        Clock frequency of all pairs, MHz.
    pmd_mv / soc_mv:
        Domain voltages in millivolts.
    """

    label: str
    freq_mhz: int
    pmd_mv: int
    soc_mv: int

    def __str__(self) -> str:
        return (
            f"{self.label}: {self.freq_mhz} MHz, PMD {self.pmd_mv} mV, "
            f"SoC {self.soc_mv} mV"
        )


#: The exact experimental matrix of Table 3.
TABLE3_OPERATING_POINTS: List[OperatingPoint] = [
    OperatingPoint("Nominal", 2400, 980, 950),
    OperatingPoint("Safe", 2400, 930, 925),
    OperatingPoint("Vmin", 2400, 920, 920),
    OperatingPoint("Vmin@900MHz", 900, 790, 950),
]


class DvfsController:
    """Programs pair frequencies and domain voltages.

    DVFS (automatic scaling) stays disabled, matching the experiments;
    this class only applies explicit operating points and validates them
    against the hardware's reachable grid.
    """

    def __init__(
        self,
        pmd: VoltageDomain,
        soc: VoltageDomain,
        freq_min_mhz: int = None,
        freq_max_mhz: int = None,
        freq_step_mhz: int = None,
        num_pairs: int = None,
    ) -> None:
        self._pmd = pmd
        self._soc = soc
        self.freq_min_mhz = (
            constants.FREQ_MIN_MHZ if freq_min_mhz is None else int(freq_min_mhz)
        )
        self.freq_max_mhz = (
            constants.FREQ_MAX_MHZ if freq_max_mhz is None else int(freq_max_mhz)
        )
        self.freq_step_mhz = (
            constants.FREQ_STEP_MHZ
            if freq_step_mhz is None
            else int(freq_step_mhz)
        )
        if not 0 < self.freq_min_mhz <= self.freq_max_mhz:
            raise FrequencyError("frequency range must be positive and ordered")
        if self.freq_step_mhz <= 0:
            raise FrequencyError("frequency step must be positive")
        pairs = constants.NUM_PAIRS if num_pairs is None else int(num_pairs)
        if pairs < 1:
            raise FrequencyError("need at least one core pair")
        self._pair_freq_mhz: Dict[int, int] = {
            pair: self.freq_max_mhz for pair in range(pairs)
        }

    # -- frequency --------------------------------------------------------------

    def set_pair_frequency(self, pair: int, mhz: int) -> None:
        """Set the clock of one dual-core pair."""
        if pair not in self._pair_freq_mhz:
            raise FrequencyError(f"no such core pair: {pair}")
        self._validate_frequency(mhz)
        self._pair_freq_mhz[pair] = int(mhz)

    def set_all_frequencies(self, mhz: int) -> None:
        """Set every pair to the same clock (the experiments' usage)."""
        self._validate_frequency(mhz)
        for pair in self._pair_freq_mhz:
            self._pair_freq_mhz[pair] = int(mhz)

    def pair_frequency(self, pair: int) -> int:
        """Current clock of one pair (MHz)."""
        if pair not in self._pair_freq_mhz:
            raise FrequencyError(f"no such core pair: {pair}")
        return self._pair_freq_mhz[pair]

    @property
    def uniform_frequency_mhz(self) -> int:
        """The common clock when all pairs agree (the experiments' case)."""
        freqs = set(self._pair_freq_mhz.values())
        if len(freqs) != 1:
            raise FrequencyError("pairs run at different frequencies")
        return next(iter(freqs))

    def _validate_frequency(self, mhz: int) -> None:
        if not self.freq_min_mhz <= mhz <= self.freq_max_mhz:
            raise FrequencyError(
                f"{mhz} MHz outside [{self.freq_min_mhz}, "
                f"{self.freq_max_mhz}] MHz"
            )
        if mhz % self.freq_step_mhz:
            raise FrequencyError(
                f"{mhz} MHz not on the {self.freq_step_mhz} MHz grid"
            )

    # -- operating points ---------------------------------------------------------

    def apply(self, point: OperatingPoint) -> None:
        """Pin the chip to one operating point (voltages + frequency)."""
        self.set_all_frequencies(point.freq_mhz)
        self._pmd.set_voltage(point.pmd_mv)
        self._soc.set_voltage(point.soc_mv)

    def current_point(self, label: str = "current") -> OperatingPoint:
        """Snapshot the chip's present setting as an operating point."""
        return OperatingPoint(
            label=label,
            freq_mhz=self.uniform_frequency_mhz,
            pmd_mv=self._pmd.voltage_mv,
            soc_mv=self._soc.voltage_mv,
        )

    def domain_voltage_mv(self, domain: str) -> int:
        """Voltage of the named domain ("pmd" / "soc"), in millivolts."""
        if domain == DomainName.PMD.value:
            return self._pmd.voltage_mv
        if domain == DomainName.SOC.value:
            return self._soc.voltage_mv
        raise FrequencyError(f"unknown domain {domain!r}")
