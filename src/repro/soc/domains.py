"""Voltage domains of the X-Gene 2.

The chip exposes three independently regulated domains (Section 3.1 /
Figure 1): the Processor Module Domain (PMD -- the four dual-core pairs
and their L1/L2 arrays), the SoC domain (L3 cache and DRAM controllers),
and the standby domain.  The PMD regulator starts at 980 mV and the SoC
regulator at 950 mV, both stepping in 5 mV increments; voltages can only
be scaled *downwards* from nominal.
"""

from __future__ import annotations

import enum
from .. import constants
from ..errors import VoltageError


class DomainName(enum.Enum):
    """The three voltage domains of the chip."""

    PMD = "pmd"
    SOC = "soc"
    STANDBY = "standby"


class VoltageDomain:
    """One independently regulated supply-voltage domain.

    Parameters
    ----------
    name:
        Which domain this is.
    nominal_mv:
        Nominal (maximum) voltage of the domain in millivolts.
    step_mv:
        Regulator granularity (5 mV on the platform).
    floor_mv:
        Lowest voltage the regulator can produce.  The hardware allows
        going far below any *safe* voltage -- safety is established by
        characterization, not by the regulator.
    """

    def __init__(
        self,
        name: DomainName,
        nominal_mv: int,
        step_mv: int = constants.VOLTAGE_STEP_MV,
        floor_mv: int = 500,
    ) -> None:
        if nominal_mv <= 0 or step_mv <= 0:
            raise VoltageError("nominal voltage and step must be positive")
        if floor_mv > nominal_mv:
            raise VoltageError("floor cannot exceed nominal voltage")
        self.name = name
        self.nominal_mv = int(nominal_mv)
        self.step_mv = int(step_mv)
        self.floor_mv = int(floor_mv)
        self._voltage_mv = int(nominal_mv)

    @property
    def voltage_mv(self) -> int:
        """The currently programmed voltage in millivolts."""
        return self._voltage_mv

    @property
    def undervolt_mv(self) -> int:
        """How far below nominal the domain currently sits (mV)."""
        return self.nominal_mv - self._voltage_mv

    @property
    def undervolt_fraction(self) -> float:
        """Relative undervolt (V_nom - V)/V_nom."""
        return self.undervolt_mv / self.nominal_mv

    def set_voltage(self, millivolts: int) -> None:
        """Program the regulator to *millivolts*.

        Raises
        ------
        VoltageError
            If the request is above nominal, below the regulator floor,
            or not on the 5 mV grid.
        """
        mv = int(millivolts)
        if mv > self.nominal_mv:
            raise VoltageError(
                f"{self.name.value}: {mv} mV above nominal "
                f"{self.nominal_mv} mV (scaling is downwards only)"
            )
        if mv < self.floor_mv:
            raise VoltageError(
                f"{self.name.value}: {mv} mV below regulator floor "
                f"{self.floor_mv} mV"
            )
        if (self.nominal_mv - mv) % self.step_mv:
            raise VoltageError(
                f"{self.name.value}: {mv} mV not reachable with "
                f"{self.step_mv} mV steps from {self.nominal_mv} mV"
            )
        self._voltage_mv = mv

    def reset(self) -> None:
        """Return the domain to its nominal voltage."""
        self._voltage_mv = self.nominal_mv

    def __repr__(self) -> str:
        return (
            f"VoltageDomain({self.name.value!r}, {self._voltage_mv} mV "
            f"of nominal {self.nominal_mv} mV)"
        )


def make_pmd_domain(
    nominal_mv: int = None, floor_mv: int = 500
) -> VoltageDomain:
    """The Processor Module Domain (980 mV nominal on the measured part).

    Technology-node chips pass their own nominal and regulator floor;
    the default arguments reproduce the paper's regulator exactly.
    """
    nominal = constants.PMD_NOMINAL_MV if nominal_mv is None else nominal_mv
    return VoltageDomain(DomainName.PMD, nominal, floor_mv=floor_mv)


def make_soc_domain(
    nominal_mv: int = None, floor_mv: int = 500
) -> VoltageDomain:
    """The SoC domain (950 mV nominal on the measured part)."""
    nominal = constants.SOC_NOMINAL_MV if nominal_mv is None else nominal_mv
    return VoltageDomain(DomainName.SOC, nominal, floor_mv=floor_mv)


def make_standby_domain(nominal_mv: int = 950) -> VoltageDomain:
    """The standby power domain (not scaled in the study)."""
    return VoltageDomain(DomainName.STANDBY, nominal_mv)
