"""SLIMpro management-processor facade.

The X-Gene 2 carries a Scalable Lightweight Intelligent Management
processor that talks to system sensors over I2C, programs supply
voltages and the DRAM refresh rate, and gathers health reports --
including the cache soft-error events the study relies on (Section
3.1).  This facade is the single point through which the test harness
touches the chip, mirroring how the real experiments drove the board
through SLIMpro drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ConfigurationError
from .dvfs import DvfsController, OperatingPoint
from .edac import EdacLog, EdacRecord
from .power import PowerModel


@dataclass(frozen=True)
class SensorReading:
    """One environmental sample from the board sensors.

    The experiments verified 40-45 degC die temperature at the beam room
    and confirmed safe-Vmin stability up to 50 degC (Section 3.4).
    """

    temperature_c: float
    power_watts: float


class SlimPro:
    """Management access to voltage, frequency, sensors and health data."""

    #: Die temperature band observed during the irradiation (Section 3.4).
    BEAM_ROOM_TEMP_RANGE_C = (40.0, 45.0)

    def __init__(
        self,
        dvfs: DvfsController,
        power_model: PowerModel,
        edac_log: EdacLog,
    ) -> None:
        self._dvfs = dvfs
        self._power = power_model
        self._edac = edac_log
        self._health_cursor = 0

    # -- voltage / frequency --------------------------------------------------

    def apply_operating_point(self, point: OperatingPoint) -> None:
        """Program an explicit (frequency, voltages) setting."""
        self._dvfs.apply(point)

    def operating_point(self) -> OperatingPoint:
        """Snapshot the chip's present setting."""
        return self._dvfs.current_point()

    # -- sensors ---------------------------------------------------------------

    def read_sensors(self, activity: float = 1.0) -> SensorReading:
        """Sample temperature and power at the current operating point."""
        point = self._dvfs.current_point()
        watts = self._power.total_watts(
            point.pmd_mv, point.soc_mv, point.freq_mhz, activity=activity
        )
        lo, hi = self.BEAM_ROOM_TEMP_RANGE_C
        # Temperature tracks dissipated power within the observed band.
        full_power = self._power.total_watts(980, 950, 2400)
        frac = min(watts / full_power, 1.0)
        return SensorReading(
            temperature_c=lo + (hi - lo) * frac, power_watts=watts
        )

    # -- health reports ----------------------------------------------------------

    def poll_health(self) -> List[EdacRecord]:
        """Return EDAC records logged since the previous poll."""
        fresh = self._edac.records[self._health_cursor:]
        self._health_cursor = len(self._edac)
        return fresh

    def reset_health_cursor(self) -> None:
        """Forget the poll position (e.g. after a reboot clears the log)."""
        if self._health_cursor < 0:
            raise ConfigurationError("corrupt health cursor")
        self._health_cursor = 0
